"""Double review, inter-rater agreement, and the Figure 1 aggregation.

Each selected article was labeled by two reviewers along three
categories — reporting average/median, reporting variability, and
no/poor specification — with Cohen's Kappa quantifying agreement
(0.95, 0.81, 0.85 in the paper; >0.8 is near-perfect agreement).  The
paper plots "the lower scores, i.e., ones that are more favorable to
the articles".

:class:`Reviewer` models a labeler as ground truth plus a per-category
error rate chosen to land the kappas in the paper's range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.stats.kappa import cohens_kappa
from repro.survey.corpus import Article

__all__ = ["Reviewer", "ReviewOutcome", "run_double_review",
           "Figure1Summary", "aggregate_figure1"]

#: The three Figure 1a categories, keyed by Article attribute.
CATEGORIES: tuple[str, ...] = (
    "reports_center",
    "reports_variability",
    "underspecified",
)

#: Per-category labelling error rates calibrated to the paper's kappa
#: scores (0.95 / 0.81 / 0.85) on the 44-article selection with the
#: default reviewer seeds.
DEFAULT_ERROR_RATES: dict[str, float] = {
    "reports_center": 0.010,
    "reports_variability": 0.040,
    "underspecified": 0.015,
}


@dataclass
class Reviewer:
    """A labeler: ground truth observed through an error channel."""

    name: str
    seed: int
    error_rates: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_ERROR_RATES)
    )

    def label(self, articles: Sequence[Article]) -> dict[str, list[bool]]:
        """Label every article in every category."""
        rng = np.random.default_rng(self.seed)
        labels: dict[str, list[bool]] = {}
        for category in CATEGORIES:
            rate = self.error_rates[category]
            truth = [bool(getattr(a, category)) for a in articles]
            flips = rng.uniform(size=len(truth)) < rate
            labels[category] = [
                (not t) if flip else t for t, flip in zip(truth, flips)
            ]
        return labels


@dataclass
class ReviewOutcome:
    """Both reviewers' labels plus agreement statistics."""

    labels_a: dict[str, list[bool]]
    labels_b: dict[str, list[bool]]
    kappa: dict[str, float]

    def consensus(self, category: str) -> list[bool]:
        """The paper's favorable resolution: the *lower* count wins.

        For positive practices (reporting a center / variability) the
        higher count is favorable; for the negative category
        (under-specification) the lower count is favorable.
        """
        a = self.labels_a[category]
        b = self.labels_b[category]
        count_a, count_b = sum(a), sum(b)
        if category == "underspecified":
            return a if count_a <= count_b else b
        return a if count_a >= count_b else b


def run_double_review(
    articles: Sequence[Article],
    reviewer_a: Reviewer | None = None,
    reviewer_b: Reviewer | None = None,
) -> ReviewOutcome:
    """Label the selection with two reviewers and compute kappas."""
    if reviewer_a is None:
        reviewer_a = Reviewer(name="reviewer-a", seed=7)
    if reviewer_b is None:
        reviewer_b = Reviewer(name="reviewer-b", seed=13)
    labels_a = reviewer_a.label(articles)
    labels_b = reviewer_b.label(articles)
    kappa = {
        category: cohens_kappa(labels_a[category], labels_b[category])
        for category in CATEGORIES
    }
    return ReviewOutcome(labels_a=labels_a, labels_b=labels_b, kappa=kappa)


@dataclass(frozen=True)
class Figure1Summary:
    """The numbers behind Figure 1."""

    n_articles: int
    #: Figure 1a bar heights, as percentages of the selection.
    pct_reporting_center: float
    pct_reporting_variability: float
    pct_underspecified: float
    #: Of the center-reporting articles, the share also reporting
    #: variability (the paper's "only 37 %").
    variability_share_of_center: float
    #: Figure 1b: repetition count -> percentage of articles.
    repetition_histogram_pct: dict[int, float]
    #: Share of well-specified articles using <= 15 repetitions
    #: (the paper's 76 %).
    low_repetition_share: float
    kappa: dict[str, float]


def aggregate_figure1(
    articles: Sequence[Article], outcome: ReviewOutcome
) -> Figure1Summary:
    """Aggregate consensus labels into the Figure 1 quantities."""
    n = len(articles)
    if n == 0:
        raise ValueError("no articles to aggregate")
    center = outcome.consensus("reports_center")
    variability = outcome.consensus("reports_variability")
    underspecified = outcome.consensus("underspecified")

    n_center = sum(center)
    n_var = sum(variability)
    n_under = sum(underspecified)

    histogram: dict[int, int] = {}
    n_well = 0
    n_low = 0
    for article, under in zip(articles, underspecified):
        if under or article.repetitions is None:
            continue
        n_well += 1
        histogram[article.repetitions] = histogram.get(article.repetitions, 0) + 1
        if article.repetitions <= 15:
            n_low += 1

    return Figure1Summary(
        n_articles=n,
        pct_reporting_center=100.0 * n_center / n,
        pct_reporting_variability=100.0 * n_var / n,
        pct_underspecified=100.0 * n_under / n,
        variability_share_of_center=(n_var / n_center if n_center else 0.0),
        repetition_histogram_pct={
            reps: 100.0 * count / n for reps, count in sorted(histogram.items())
        },
        low_repetition_share=(n_low / n_well if n_well else 0.0),
        kappa=dict(outcome.kappa),
    )
