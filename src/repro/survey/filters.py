"""Survey filters: the Table 2 funnel.

Stage 1 is automatic: keyword/string matching on title, abstract and
keywords.  Stage 2 is manual: keep only articles whose experiments ran
on a public cloud (the synthetic corpus carries that judgment as
ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.survey.corpus import SURVEY_KEYWORDS, Article

__all__ = ["keyword_filter", "manual_cloud_filter", "survey_funnel", "SurveyFunnel"]


def keyword_filter(
    articles: Iterable[Article],
    keywords: Sequence[str] = SURVEY_KEYWORDS,
) -> list[Article]:
    """Automatic filter: any keyword appears in the searchable text."""
    lowered = [k.lower() for k in keywords]
    return [
        article
        for article in articles
        if any(keyword in article.text() for keyword in lowered)
    ]


def manual_cloud_filter(articles: Iterable[Article]) -> list[Article]:
    """Manual filter: keep articles with public-cloud experiments."""
    return [article for article in articles if article.uses_cloud]


@dataclass(frozen=True)
class SurveyFunnel:
    """Counts at each survey stage (the Table 2 row)."""

    total: int
    keyword_matched: int
    cloud_experiments: int
    citations: int
    per_venue: dict[str, int]

    def as_row(self) -> dict:
        """Table 2 as a plain dict."""
        return {
            "articles_total": self.total,
            "filtered_by_keywords": self.keyword_matched,
            "filtered_for_cloud": self.cloud_experiments,
            "per_venue": dict(self.per_venue),
            "citations": self.citations,
        }


def survey_funnel(articles: Sequence[Article]) -> SurveyFunnel:
    """Run both filter stages and summarize the funnel."""
    matched = keyword_filter(articles)
    cloud = manual_cloud_filter(matched)
    per_venue: dict[str, int] = {}
    for article in cloud:
        per_venue[article.venue] = per_venue.get(article.venue, 0) + 1
    return SurveyFunnel(
        total=len(articles),
        keyword_matched=len(matched),
        cloud_experiments=len(cloud),
        citations=sum(a.cited_by for a in cloud),
        per_venue=per_venue,
    )
