"""Article records and the synthetic survey corpus.

The real survey's raw corpus (titles/abstracts of 1,867 systems
papers) is not redistributable, so :func:`generate_corpus` builds a
synthetic corpus with **exactly** the funnel and marginals the paper
reports (Tables 1-2, Figure 1):

* 1,867 articles across NSDI/OSDI/SOSP/SC, 2008-2018;
* 138 match the keyword query on title/abstract/keywords;
* 44 of those ran experiments on a public cloud
  (15 NSDI, 7 OSDI, 7 SOSP, 15 SC), cited 11,203 times in total;
* of the 44: >60 % are under-specified, a subset report averages or
  medians, 37 % of *those* also report variability, and the
  repetition counts of the well-specified articles follow Figure 1b.

Ground-truth labels ride along on each article; the review stage
models human labelling error on top of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "Article",
    "SURVEY_VENUES",
    "SURVEY_YEARS",
    "SURVEY_KEYWORDS",
    "generate_corpus",
]

#: Venues surveyed (Table 1).
SURVEY_VENUES: tuple[str, ...] = ("NSDI", "OSDI", "SOSP", "SC")

#: Publication-year range surveyed (Table 1).
SURVEY_YEARS: tuple[int, int] = (2008, 2018)

#: Keyword query (Table 1).
SURVEY_KEYWORDS: tuple[str, ...] = (
    "big data",
    "streaming",
    "hadoop",
    "mapreduce",
    "spark",
    "data storage",
    "graph processing",
    "data analytics",
)

#: Cloud-experiment counts per venue for the 44 selected articles
#: (Table 2).
CLOUD_ARTICLES_PER_VENUE: dict[str, int] = {
    "NSDI": 15,
    "OSDI": 7,
    "SOSP": 7,
    "SC": 15,
}

#: Total citations of the 44 selected articles (Table 2).
TOTAL_CITATIONS = 11_203

#: Figure 1b: repetition counts and the number of the 44 articles
#: reporting each (heights read off the histogram; they sum to the
#: 17 well-specified articles, so under-specification stays at
#: 27/44 = 61 % while 13/17 = 76 % use <= 15 repetitions).
REPETITION_HISTOGRAM: dict[int, int] = {3: 5, 5: 3, 9: 1, 10: 3, 15: 1, 20: 2, 100: 2}

#: Figure 1a marginals for the 44 cloud articles.
N_UNDERSPECIFIED = 27  # ~61 % "no or poor specification"
N_REPORTING_CENTER = 19  # report average or median
N_REPORTING_VARIABILITY = 7  # ~37 % of the 19


@dataclass
class Article:
    """One surveyed article with ground-truth labels."""

    article_id: int
    venue: str
    year: int
    title: str
    abstract: str
    keywords: tuple[str, ...]
    cited_by: int
    #: Ground truth: did the evaluation run on a public cloud?
    uses_cloud: bool
    #: Ground truth for the Figure 1a categories.
    reports_center: bool
    reports_variability: bool
    underspecified: bool
    #: Number of repetitions reported, when any.
    repetitions: Optional[int] = None

    @property
    def well_specified(self) -> bool:
        """An article that states what it measured and how often."""
        return not self.underspecified

    def text(self) -> str:
        """Searchable text for the keyword filter."""
        return " ".join([self.title, self.abstract, *self.keywords]).lower()


_FILLER_TOPICS = (
    "kernel bypass networking",
    "distributed consensus",
    "file system durability",
    "virtual memory management",
    "RDMA transport design",
    "GPU scheduling",
    "fault injection testing",
    "energy-aware computing",
    "serverless cold starts",
    "congestion control",
)

_MATCHING_TOPICS = SURVEY_KEYWORDS


def _citation_split(total: int, n: int, rng: np.random.Generator) -> list[int]:
    """Integer citation counts with a heavy-tailed shape summing to total."""
    weights = rng.pareto(1.5, size=n) + 1.0
    raw = weights / weights.sum() * total
    counts = np.floor(raw).astype(int)
    deficit = total - int(counts.sum())
    for i in np.argsort(-raw + counts)[:deficit]:
        counts[i] += 1
    return counts.tolist()


def generate_corpus(seed: int = 0) -> list[Article]:
    """Build the synthetic 1,867-article corpus.

    Deterministic for a given seed; the funnel counts are exact by
    construction, randomness only shapes titles, years, and citation
    spreads.
    """
    rng = np.random.default_rng(seed)
    articles: list[Article] = []
    article_id = 0

    def add(
        venue: str,
        matches_keywords: bool,
        uses_cloud: bool,
        reports_center: bool = False,
        reports_variability: bool = False,
        underspecified: bool = True,
        repetitions: Optional[int] = None,
        cited_by: int = 0,
    ) -> None:
        nonlocal article_id
        year = int(rng.integers(SURVEY_YEARS[0], SURVEY_YEARS[1] + 1))
        if matches_keywords:
            topic = str(rng.choice(_MATCHING_TOPICS))
            title = f"A system for {topic} at scale"
            keywords = (topic,)
        else:
            topic = str(rng.choice(_FILLER_TOPICS))
            title = f"Rethinking {topic}"
            keywords = (topic,)
        abstract = f"We present work on {topic} evaluated extensively."
        articles.append(
            Article(
                article_id=article_id,
                venue=venue,
                year=year,
                title=title,
                abstract=abstract,
                keywords=keywords,
                cited_by=cited_by,
                uses_cloud=uses_cloud,
                reports_center=reports_center,
                reports_variability=reports_variability,
                underspecified=underspecified,
                repetitions=repetitions,
            )
        )
        article_id += 1

    # --- the 44 cloud articles, with exact Figure 1 label marginals ---
    labels: list[dict] = []
    reps = [r for r, count in REPETITION_HISTOGRAM.items() for _ in range(count)]
    n_well = len(reps)  # 17 well-specified articles
    # Well-specified articles report a center; the first
    # N_REPORTING_VARIABILITY of them also report variability.
    for i, r in enumerate(reps):
        labels.append(
            dict(
                reports_center=True,
                reports_variability=i < N_REPORTING_VARIABILITY,
                underspecified=False,
                repetitions=r,
            )
        )
    # Center-reporting but otherwise under-specified articles.
    for _ in range(N_REPORTING_CENTER - n_well):
        labels.append(
            dict(
                reports_center=True,
                reports_variability=False,
                underspecified=True,
                repetitions=None,
            )
        )
    # Fully under-specified articles.
    while len(labels) < sum(CLOUD_ARTICLES_PER_VENUE.values()):
        labels.append(
            dict(
                reports_center=False,
                reports_variability=False,
                underspecified=True,
                repetitions=None,
            )
        )
    rng.shuffle(labels)

    citations = _citation_split(TOTAL_CITATIONS, len(labels), rng)
    label_iter = iter(zip(labels, citations))
    for venue, count in CLOUD_ARTICLES_PER_VENUE.items():
        for _ in range(count):
            label, cites = next(label_iter)
            add(venue, matches_keywords=True, uses_cloud=True,
                cited_by=cites, **label)

    # --- 94 keyword-matching articles without cloud experiments ---
    n_keyword_only = 138 - sum(CLOUD_ARTICLES_PER_VENUE.values())
    for i in range(n_keyword_only):
        venue = SURVEY_VENUES[i % len(SURVEY_VENUES)]
        add(venue, matches_keywords=True, uses_cloud=False,
            cited_by=int(rng.integers(0, 300)))

    # --- filler to reach 1,867 total ---
    while len(articles) < 1_867:
        venue = SURVEY_VENUES[len(articles) % len(SURVEY_VENUES)]
        add(venue, matches_keywords=False, uses_cloud=False,
            cited_by=int(rng.integers(0, 300)))

    rng.shuffle(articles)
    return articles
