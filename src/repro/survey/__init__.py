"""The literature-survey pipeline of Section 2.

The paper surveyed 1,867 articles from NSDI, OSDI, SOSP and SC
(2008-2018), keyword-filtered them to 138, manually selected the 44
with public-cloud experiments (cited 11,203 times), and double-labeled
each for reporting practices.  This package reproduces the pipeline:

* :mod:`repro.survey.corpus` — article records and a synthetic corpus
  generator matching the survey's funnel and marginals;
* :mod:`repro.survey.filters` — the keyword and manual-cloud filters
  (Table 2's funnel);
* :mod:`repro.survey.review` — two-reviewer labelling with Cohen's
  Kappa agreement, and the Figure 1 aggregations.
"""

from repro.survey.corpus import (
    Article,
    SURVEY_KEYWORDS,
    SURVEY_VENUES,
    SURVEY_YEARS,
    generate_corpus,
)
from repro.survey.filters import keyword_filter, manual_cloud_filter, survey_funnel
from repro.survey.review import (
    Figure1Summary,
    ReviewOutcome,
    Reviewer,
    aggregate_figure1,
    run_double_review,
)

__all__ = [
    "Article",
    "SURVEY_KEYWORDS",
    "SURVEY_VENUES",
    "SURVEY_YEARS",
    "generate_corpus",
    "keyword_filter",
    "manual_cloud_filter",
    "survey_funnel",
    "Reviewer",
    "ReviewOutcome",
    "run_double_review",
    "Figure1Summary",
    "aggregate_figure1",
]
