"""Stochastic link models: noisy neighbours and emulated distributions.

Two models live here:

* :class:`UniformQuantileSamplingModel` reproduces the paper's Section
  2.1 emulation methodology exactly: every ``interval_s`` seconds the
  link ceiling is redrawn by uniformly sampling a quantile-specified
  bandwidth distribution (the Ballani A-H clouds, sampled every 5 s or
  50 s).
* :class:`Ar1QuantileModel` is the generative model for HPCCloud-style
  contention (F3.2): a latent AR(1) process is mapped through the
  distribution's quantile function, yielding a series with the desired
  marginal distribution *and* sample-to-sample correlation — private
  clouds have fewer tenants, so congestion episodes persist rather than
  averaging out ("less statistical multiplexing to smooth out
  variation").
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as _scipy_stats

from repro.netmodel.base import LinkModel
from repro.netmodel.distributions import QuantileDistribution

__all__ = ["UniformQuantileSamplingModel", "Ar1QuantileModel"]


class _ResamplingModel(LinkModel):
    """Shared clockwork for models that redraw their ceiling periodically.

    When a :class:`~repro.netmodel.fleet.ResamplingFleet` adopts the
    model, the interval clockwork (``elapsed``/``current``) moves into
    the fleet's flat arrays and this handle reads/writes through; the
    RNG stays on the model so each node keeps its own per-seed draw
    sequence bit-exactly.  Long advances redraw through
    :meth:`_draw_batch`, which subclasses override to pull every
    crossed-boundary draw in one RNG call (sequence-identical to the
    scalar one-draw-per-boundary loop, which remains the reference).
    """

    def __init__(self, interval_s: float, seed: int) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self._interval = float(interval_s)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._fleet = None
        self._fleet_index = -1
        self._elapsed_local = 0.0
        self._current_local = 0.0

    @property
    def _elapsed_in_interval(self) -> float:
        if self._fleet is None:
            return self._elapsed_local
        return float(self._fleet._elapsed[self._fleet_index])

    @_elapsed_in_interval.setter
    def _elapsed_in_interval(self, value: float) -> None:
        if self._fleet is None:
            self._elapsed_local = value
        else:
            self._fleet._elapsed[self._fleet_index] = value

    @property
    def _current(self) -> float:
        if self._fleet is None:
            return self._current_local
        return float(self._fleet._current[self._fleet_index])

    @_current.setter
    def _current(self, value: float) -> None:
        if self._fleet is None:
            self._current_local = value
        else:
            self._fleet._current[self._fleet_index] = value

    def _draw(self) -> float:
        raise NotImplementedError

    def _draw_batch(self, k: int) -> float:
        """Value after ``k`` consecutive redraws (``k >= 1``).

        Reference fallback: ``k`` scalar :meth:`_draw` calls.  Subclasses
        override with one batched RNG call that consumes the exact same
        stream, so a fleet advance crossing many resample boundaries
        costs one RNG dispatch instead of ``k``.
        """
        value = self._current
        for _ in range(k):
            value = self._draw()
        return value

    def _restart(self) -> None:
        """Reset subclass state before the first draw."""

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._elapsed_in_interval = 0.0
        self._restart()
        self._current = self._draw()

    def limit(self) -> float:
        return self._current

    def horizon(self, send_rate_gbps: float) -> float:
        return max(self._interval - self._elapsed_in_interval, 0.0)

    def advance(self, dt: float, send_rate_gbps: float) -> None:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        self._elapsed_in_interval += dt
        # Tolerate callers that overshoot the horizon slightly; redraw
        # once per crossed boundary so long idles stay O(intervals).
        while self._elapsed_in_interval >= self._interval - 1e-12:
            self._elapsed_in_interval -= self._interval
            self._current = self._draw()


class UniformQuantileSamplingModel(_ResamplingModel):
    """Ceiling redrawn uniformly from a quantile distribution.

    This is the paper's emulation of the Ballani clouds: "we uniformly
    sample bandwidth values from these distributions every
    x in {5, 50} seconds".
    """

    def __init__(
        self,
        distribution: QuantileDistribution,
        interval_s: float = 5.0,
        seed: int = 0,
    ) -> None:
        self.distribution = distribution
        super().__init__(interval_s=interval_s, seed=seed)
        self.reset()

    def _draw(self) -> float:
        return max(float(self.distribution.sample(self._rng)), 1e-6)

    def _draw_batch(self, k: int) -> float:
        # One uniform call for all k draws; element i of a size-k
        # ``Generator.uniform`` equals the i-th scalar call bit for bit
        # (each value is one transformed next_double), so the RNG ends
        # in the same state and the kept (last) value is identical.
        if k <= 0:
            return self._current
        values = self.distribution.sample(self._rng, size=k)
        return max(float(values[-1]), 1e-6)


class Ar1QuantileModel(_ResamplingModel):
    """Autocorrelated ceiling with an arbitrary marginal distribution.

    A latent AR(1) process ``z_t = phi * z_{t-1} + sqrt(1-phi^2) * e_t``
    (stationary N(0,1)) is pushed through the normal CDF to a uniform
    probability and then through the target quantile function.  ``phi``
    controls how long congestion episodes persist; ``phi = 0`` recovers
    :class:`UniformQuantileSamplingModel` with Gaussian-copula sampling.
    """

    def __init__(
        self,
        distribution: QuantileDistribution,
        interval_s: float = 10.0,
        phi: float = 0.7,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= phi < 1.0:
            raise ValueError(f"phi must be in [0, 1), got {phi}")
        self.distribution = distribution
        self.phi = float(phi)
        self._z = 0.0
        super().__init__(interval_s=interval_s, seed=seed)
        self.reset()

    def _restart(self) -> None:
        self._z = float(self._rng.standard_normal())

    def _draw(self) -> float:
        innovation = math.sqrt(1.0 - self.phi**2) * float(
            self._rng.standard_normal()
        )
        self._z = self.phi * self._z + innovation
        u = float(_scipy_stats.norm.cdf(self._z))
        return max(float(self.distribution.quantile(u)), 1e-6)

    def _draw_batch(self, k: int) -> float:
        # One normal call for all k innovations (ziggurat fills arrays
        # from the same bitstream as repeated scalar calls), then the
        # cheap AR(1) recurrence in Python.  Only the surviving draw is
        # pushed through the (scipy-costly) CDF/quantile transform —
        # intermediate ceilings are discarded by the caller anyway.
        if k <= 0:
            return self._current
        innovations = self._rng.standard_normal(size=k)
        scale = math.sqrt(1.0 - self.phi**2)
        z = self._z
        for e in innovations.tolist():
            z = self.phi * z + scale * e
        self._z = z
        u = float(_scipy_stats.norm.cdf(z))
        return max(float(self.distribution.quantile(u)), 1e-6)
