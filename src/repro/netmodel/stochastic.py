"""Stochastic link models: noisy neighbours and emulated distributions.

Two models live here:

* :class:`UniformQuantileSamplingModel` reproduces the paper's Section
  2.1 emulation methodology exactly: every ``interval_s`` seconds the
  link ceiling is redrawn by uniformly sampling a quantile-specified
  bandwidth distribution (the Ballani A-H clouds, sampled every 5 s or
  50 s).
* :class:`Ar1QuantileModel` is the generative model for HPCCloud-style
  contention (F3.2): a latent AR(1) process is mapped through the
  distribution's quantile function, yielding a series with the desired
  marginal distribution *and* sample-to-sample correlation — private
  clouds have fewer tenants, so congestion episodes persist rather than
  averaging out ("less statistical multiplexing to smooth out
  variation").
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as _scipy_stats

from repro.netmodel.base import LinkModel
from repro.netmodel.distributions import QuantileDistribution

__all__ = ["UniformQuantileSamplingModel", "Ar1QuantileModel"]


class _ResamplingModel(LinkModel):
    """Shared clockwork for models that redraw their ceiling periodically."""

    def __init__(self, interval_s: float, seed: int) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self._interval = float(interval_s)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._elapsed_in_interval = 0.0
        self._current = 0.0

    def _draw(self) -> float:
        raise NotImplementedError

    def _restart(self) -> None:
        """Reset subclass state before the first draw."""

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._elapsed_in_interval = 0.0
        self._restart()
        self._current = self._draw()

    def limit(self) -> float:
        return self._current

    def horizon(self, send_rate_gbps: float) -> float:
        return max(self._interval - self._elapsed_in_interval, 0.0)

    def advance(self, dt: float, send_rate_gbps: float) -> None:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        self._elapsed_in_interval += dt
        # Tolerate callers that overshoot the horizon slightly; redraw
        # once per crossed boundary so long idles stay O(intervals).
        while self._elapsed_in_interval >= self._interval - 1e-12:
            self._elapsed_in_interval -= self._interval
            self._current = self._draw()


class UniformQuantileSamplingModel(_ResamplingModel):
    """Ceiling redrawn uniformly from a quantile distribution.

    This is the paper's emulation of the Ballani clouds: "we uniformly
    sample bandwidth values from these distributions every
    x in {5, 50} seconds".
    """

    def __init__(
        self,
        distribution: QuantileDistribution,
        interval_s: float = 5.0,
        seed: int = 0,
    ) -> None:
        self.distribution = distribution
        super().__init__(interval_s=interval_s, seed=seed)
        self.reset()

    def _draw(self) -> float:
        return max(float(self.distribution.sample(self._rng)), 1e-6)


class Ar1QuantileModel(_ResamplingModel):
    """Autocorrelated ceiling with an arbitrary marginal distribution.

    A latent AR(1) process ``z_t = phi * z_{t-1} + sqrt(1-phi^2) * e_t``
    (stationary N(0,1)) is pushed through the normal CDF to a uniform
    probability and then through the target quantile function.  ``phi``
    controls how long congestion episodes persist; ``phi = 0`` recovers
    :class:`UniformQuantileSamplingModel` with Gaussian-copula sampling.
    """

    def __init__(
        self,
        distribution: QuantileDistribution,
        interval_s: float = 10.0,
        phi: float = 0.7,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= phi < 1.0:
            raise ValueError(f"phi must be in [0, 1), got {phi}")
        self.distribution = distribution
        self.phi = float(phi)
        self._z = 0.0
        super().__init__(interval_s=interval_s, seed=seed)
        self.reset()

    def _restart(self) -> None:
        self._z = float(self._rng.standard_normal())

    def _draw(self) -> float:
        innovation = math.sqrt(1.0 - self.phi**2) * float(
            self._rng.standard_normal()
        )
        self._z = self.phi * self._z + innovation
        u = float(_scipy_stats.norm.cdf(self._z))
        return max(float(self.distribution.quantile(u)), 1e-6)
