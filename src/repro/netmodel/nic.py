"""Virtual NIC implementation differences and the write()-size effect.

Section 3.3 ("Virtual NIC Implementations") finds that EC2 and GCE made
different choices with the same goal — fewer, larger packets on the
virtual NIC:

* **EC2** advertises a 9000-byte jumbo-frame MTU; a single "packet"
  tops out at 9 KB regardless of the application's write size.
* **GCE** advertises a 1500-byte MTU but enables TCP Segmentation
  Offloading, accepting "packets" as large as 64 KB from the driver.

In practice the packet handed to the virtual NIC equals the
application's ``write()`` size up to that cap, so on GCE large writes
produce huge packets whose perceived transmission time inflates the
application-observed RTT and whose bursts overflow the driver queue,
causing the hundreds of thousands of retransmissions in Figure 9.
Limiting writes to 9 KB on GCE gave near-zero retransmissions and a
~2.3 ms mean RTT; the 128 KB default gave latencies up to 10 ms.

:class:`VirtualNic` turns a :class:`NicBehavior` parameter set into the
latency / bandwidth / retransmission curves of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import BITS_PER_BYTE

__all__ = ["NicBehavior", "WriteSizeEffect", "VirtualNic"]


@dataclass(frozen=True)
class NicBehavior:
    """Implementation parameters of one provider's virtual NIC."""

    name: str
    #: Advertised MTU in bytes (9000 on EC2, 1500 on GCE).
    mtu_bytes: int
    #: Maximum segment the driver accepts when TSO is enabled;
    #: ``None`` means packets are capped at the MTU.
    tso_max_bytes: int | None
    #: Propagation + virtualization base RTT in milliseconds.
    base_rtt_ms: float
    #: Rate at which a packet's bits are clocked onto the (virtual)
    #: wire for latency-perception purposes, in Gbps.
    serialization_gbps: float
    #: Queueing inflation applied per packet-serialization time; models
    #: the shared queue in the bottom half of the driver ("all streams
    #: are affected when one stream sends large packets").
    queue_factor: float
    #: Largest packet the driver can burst without loss; beyond this,
    #: retransmissions climb steeply.
    safe_burst_bytes: int
    #: Floor retransmission probability per segment.
    base_retrans_rate: float
    #: Retransmission probability per segment at the worst case
    #: (packet == tso_max); interpolated in between.
    max_retrans_rate: float
    #: Fixed per-write() software overhead (syscall + virtio descriptor
    #: handling) in microseconds; dominates throughput for tiny writes.
    per_write_overhead_us: float
    #: Line rate used in the bandwidth-vs-write-size curve, in Gbps.
    line_rate_gbps: float

    def packet_bytes(self, write_size_bytes: int) -> int:
        """Size of the "packet" handed to the virtual NIC for a write."""
        if write_size_bytes <= 0:
            raise ValueError("write size must be positive")
        cap = self.tso_max_bytes if self.tso_max_bytes is not None else self.mtu_bytes
        return min(write_size_bytes, cap)


#: EC2 c5-family NIC: jumbo frames, no giant TSO packets, fast path.
EC2_NIC = NicBehavior(
    name="ec2-ena",
    mtu_bytes=9_000,
    tso_max_bytes=None,
    base_rtt_ms=0.12,
    serialization_gbps=10.0,
    queue_factor=8.0,
    safe_burst_bytes=9_000,
    base_retrans_rate=1e-6,
    max_retrans_rate=5e-5,
    per_write_overhead_us=1.2,
    line_rate_gbps=10.0,
)

#: GCE virtio NIC: 1500-byte MTU with TSO up to 64 KB.
GCE_NIC = NicBehavior(
    name="gce-virtio",
    mtu_bytes=1_500,
    tso_max_bytes=65_536,
    base_rtt_ms=1.8,
    serialization_gbps=1.6,
    queue_factor=14.0,
    safe_burst_bytes=16_384,
    base_retrans_rate=5e-5,
    max_retrans_rate=0.02,
    per_write_overhead_us=1.6,
    line_rate_gbps=8.0,
)


@dataclass(frozen=True)
class WriteSizeEffect:
    """What an application observes for one write() size (Figure 12)."""

    write_size_bytes: int
    packet_bytes: int
    mean_rtt_ms: float
    p99_rtt_ms: float
    retransmission_rate: float
    achieved_gbps: float


class VirtualNic:
    """Behavioural model of one virtual NIC implementation."""

    def __init__(self, behavior: NicBehavior) -> None:
        self.behavior = behavior

    def perceived_rtt_ms(self, write_size_bytes: int) -> float:
        """Deterministic mean application-observed RTT for a write size.

        RTT = base + serialization of the oversized "packet" + queueing
        delay proportional to it (the shared driver queue).
        """
        b = self.behavior
        packet = b.packet_bytes(write_size_bytes)
        serialization_ms = (
            packet * BITS_PER_BYTE / (b.serialization_gbps * 1e9) * 1e3
        )
        return b.base_rtt_ms + serialization_ms * (1.0 + b.queue_factor)

    def retransmission_rate(self, write_size_bytes: int) -> float:
        """Per-segment retransmission probability for a write size."""
        b = self.behavior
        packet = b.packet_bytes(write_size_bytes)
        if packet <= b.safe_burst_bytes:
            return b.base_retrans_rate
        cap = b.tso_max_bytes if b.tso_max_bytes is not None else b.mtu_bytes
        span = max(cap - b.safe_burst_bytes, 1)
        frac = min((packet - b.safe_burst_bytes) / span, 1.0)
        return b.base_retrans_rate + frac * (b.max_retrans_rate - b.base_retrans_rate)

    def achieved_gbps(self, write_size_bytes: int) -> float:
        """Throughput for a write size: overhead-limited for tiny writes.

        Each write costs its wire time plus a fixed software overhead;
        retransmitted segments consume goodput.
        """
        b = self.behavior
        wire_s = write_size_bytes * BITS_PER_BYTE / (b.line_rate_gbps * 1e9)
        overhead_s = b.per_write_overhead_us * 1e-6
        goodput = write_size_bytes * BITS_PER_BYTE / (wire_s + overhead_s) / 1e9
        return goodput * (1.0 - self.retransmission_rate(write_size_bytes))

    def write_size_effect(
        self,
        write_size_bytes: int,
        rng: np.random.Generator | None = None,
        n_samples: int = 2_000,
    ) -> WriteSizeEffect:
        """Full Figure-12 datapoint for one write size.

        RTT samples add lognormal jitter around the deterministic mean
        so the p99 is meaningful; pass a seeded ``rng`` for determinism
        (defaults to seed 0).
        """
        if rng is None:
            rng = np.random.default_rng(0)
        mean_rtt = self.perceived_rtt_ms(write_size_bytes)
        jitter = rng.lognormal(mean=0.0, sigma=0.35, size=n_samples)
        samples = mean_rtt * jitter
        return WriteSizeEffect(
            write_size_bytes=write_size_bytes,
            packet_bytes=self.behavior.packet_bytes(write_size_bytes),
            mean_rtt_ms=float(np.mean(samples)),
            p99_rtt_ms=float(np.percentile(samples, 99)),
            retransmission_rate=self.retransmission_rate(write_size_bytes),
            achieved_gbps=self.achieved_gbps(write_size_bytes),
        )

    def sweep(
        self,
        write_sizes_bytes: list[int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[WriteSizeEffect]:
        """Evaluate a write-size sweep (Figure 12's horizontal axis)."""
        if write_sizes_bytes is None:
            write_sizes_bytes = [
                1_024, 2_048, 4_096, 9_000, 16_384, 32_768, 65_536, 131_072, 262_144
            ]
        if rng is None:
            rng = np.random.default_rng(0)
        return [self.write_size_effect(size, rng=rng) for size in write_sizes_bytes]
