"""Round-trip-time models for EC2 and GCE virtual networks.

Section 3.2 measures the application-observed TCP RTT from 10-second
iperf streams (50 million datapoints):

* **Amazon EC2** shows sub-millisecond latency under typical conditions
  (Figure 7, top), but when the token-bucket shaper engages, latency
  rises by *two orders of magnitude* — evidence of large queues in the
  virtual device driver (Figure 7, bottom).
* **Google Cloud** sits at milliseconds with an upper limit around
  10 ms and more sample-to-sample spread (Figure 8).

Both models generate per-packet RTT samples; the throttled flag on
:class:`Ec2LatencyModel` selects the queue-buildup regime.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["LatencyModel", "Ec2LatencyModel", "GceLatencyModel"]


class LatencyModel(ABC):
    """Generator of per-packet RTT samples (milliseconds)."""

    @abstractmethod
    def sample_rtts_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` RTT samples in milliseconds."""

    def mean_rtt_ms(self, rng: np.random.Generator, n: int = 10_000) -> float:
        """Monte-Carlo mean RTT, for calibration checks."""
        return float(np.mean(self.sample_rtts_ms(n, rng)))


class Ec2LatencyModel(LatencyModel):
    """EC2 RTTs: sub-millisecond normally, tens of ms when throttled.

    The normal regime is lognormal around ~0.15 ms with occasional
    excursions toward 2 ms (matching Figure 7 top-left).  The throttled
    regime adds a gamma-distributed queueing delay with a mean around
    ~12 ms — the hundred-fold increase the paper observed when the
    token bucket empties and the virtual device driver queue fills.
    """

    def __init__(
        self,
        throttled: bool = False,
        base_median_ms: float = 0.15,
        base_sigma: float = 0.55,
        queue_mean_ms: float = 12.0,
        queue_shape: float = 4.0,
    ) -> None:
        if base_median_ms <= 0 or queue_mean_ms <= 0:
            raise ValueError("latency parameters must be positive")
        self.throttled = throttled
        self.base_median_ms = float(base_median_ms)
        self.base_sigma = float(base_sigma)
        self.queue_mean_ms = float(queue_mean_ms)
        self.queue_shape = float(queue_shape)

    def sample_rtts_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        base = rng.lognormal(
            mean=np.log(self.base_median_ms), sigma=self.base_sigma, size=n
        )
        if not self.throttled:
            return np.clip(base, 0.01, 2.5)
        queue = rng.gamma(
            shape=self.queue_shape,
            scale=self.queue_mean_ms / self.queue_shape,
            size=n,
        )
        return np.clip(base + queue, 0.01, 25.0)


class GceLatencyModel(LatencyModel):
    """GCE RTTs: millisecond-scale, capped around 10 ms.

    Lognormal around ~2.3 ms (the mean the paper measured with 9 KB
    writes) with a hard ceiling of ``cap_ms`` — the paper observed an
    upper limit of 10 ms.  ``median_ms`` can be raised to model the
    large-write regime of Figure 12 (see :mod:`repro.netmodel.nic`).
    """

    def __init__(
        self,
        median_ms: float = 2.0,
        sigma: float = 0.5,
        cap_ms: float = 10.0,
    ) -> None:
        if median_ms <= 0 or cap_ms <= 0:
            raise ValueError("latency parameters must be positive")
        if median_ms >= cap_ms:
            raise ValueError("median must sit below the cap")
        self.median_ms = float(median_ms)
        self.sigma = float(sigma)
        self.cap_ms = float(cap_ms)

    def sample_rtts_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        base = rng.lognormal(mean=np.log(self.median_ms), sigma=self.sigma, size=n)
        return np.clip(base, 0.1, self.cap_ms)
