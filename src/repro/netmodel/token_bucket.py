"""The token-bucket traffic shaper Amazon EC2 applies per VM.

Section 3.3 reverse-engineers the mechanism: each VM starts with a
budget of tokens that may be spent at a high rate (10 Gbps on
c5.xlarge); after roughly ten minutes of continuous transfer the budget
empties and the VM is capped at a low rate (1 Gbps).  Tokens replenish
at ~1 Gbit/s, so transmitting at the capped rate keeps the bucket from
refilling — only *resting* the network refills it, taking several
minutes.  Figure 11 shows the constants scale with instance size and
are not even consistent across incarnations of the same type.

The model here is the exact fluid version of that algorithm, with an
optional hysteresis threshold: once empty, the bucket must refill past
``resume_threshold_gbit`` before the high rate resumes.  With a small
threshold and a replenish rate slightly above the capped rate, the
model oscillates between high and low rates in short bursts — the
behaviour of the straggler node in Figure 18.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.netmodel.base import LinkModel

__all__ = ["TokenBucketParams", "TokenBucketModel"]

#: Budgets below this are treated as empty (1e-9 Gbit = 1 bit).
#: Without a floor, floating-point residue makes the drain asymptotic:
#: the analytic horizon shrinks toward zero without the state ever
#: flipping, stalling fluid simulations.
_EMPTY_EPS_GBIT = 1e-9


@dataclass(frozen=True)
class TokenBucketParams:
    """Constants of one token-bucket incarnation.

    All rates in Gbps, budget quantities in Gbit.
    """

    peak_gbps: float
    capped_gbps: float
    replenish_gbps: float
    capacity_gbit: float
    #: Budget the VM starts with; defaults to a full bucket ("fresh VM").
    initial_budget_gbit: float | None = None
    #: Budget that must accumulate after depletion before the peak rate
    #: resumes.  Small values produce the short high/low oscillations of
    #: Figure 18.
    resume_threshold_gbit: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_gbps <= 0 or self.capped_gbps <= 0:
            raise ValueError("rates must be positive")
        if self.capped_gbps > self.peak_gbps:
            raise ValueError("capped rate cannot exceed peak rate")
        if self.replenish_gbps < 0:
            raise ValueError("replenish rate cannot be negative")
        if self.capacity_gbit <= 0:
            raise ValueError("capacity must be positive")
        if self.initial_budget_gbit is not None and self.initial_budget_gbit < 0:
            raise ValueError("initial budget cannot be negative")
        if self.resume_threshold_gbit < 0:
            raise ValueError("resume threshold cannot be negative")

    @property
    def time_to_empty_s(self) -> float:
        """Seconds of full-speed transfer a fresh bucket sustains.

        This is the quantity on Figure 11's left axis: budget drains at
        ``peak - replenish`` while transmitting at the peak rate.
        """
        drain = self.peak_gbps - self.replenish_gbps
        if drain <= 0:
            return math.inf
        start = (
            self.capacity_gbit
            if self.initial_budget_gbit is None
            else self.initial_budget_gbit
        )
        return start / drain

    def with_budget(self, budget_gbit: float) -> "TokenBucketParams":
        """Copy of these parameters with a different starting budget."""
        return replace(self, initial_budget_gbit=budget_gbit)


class TokenBucketModel(LinkModel):
    """Fluid token bucket with peak/capped rates and hysteresis.

    State machine:

    * **high** — budget above zero (or above the resume threshold after
      a depletion): ceiling is ``peak_gbps``; budget drains at
      ``send_rate - replenish`` (and refills when idle).
    * **low** — budget depleted: ceiling is ``capped_gbps``; budget
      grows at ``replenish - send_rate`` and the high state resumes
      only once it exceeds ``resume_threshold_gbit``.

    When a :class:`~repro.netmodel.fleet.TokenBucketFleet` adopts the
    model, the authoritative ``budget``/``throttled`` state moves into
    the fleet's struct-of-arrays storage and this handle reads/writes
    through (the same pattern :class:`~repro.simulator.fabric.Flow`
    uses), so scalar calls like :meth:`set_budget` stay consistent with
    batched fleet advances.
    """

    def __init__(self, params: TokenBucketParams) -> None:
        self.params = params
        self._fleet = None
        self._fleet_index = -1
        self._budget_local = 0.0
        self._throttled_local = False
        self.reset()

    @property
    def _budget(self) -> float:
        if self._fleet is None:
            return self._budget_local
        return float(self._fleet._budget[self._fleet_index])

    @_budget.setter
    def _budget(self, value: float) -> None:
        if self._fleet is None:
            self._budget_local = value
        else:
            self._fleet._budget[self._fleet_index] = value

    @property
    def _throttled(self) -> bool:
        if self._fleet is None:
            return self._throttled_local
        return bool(self._fleet._throttled[self._fleet_index])

    @_throttled.setter
    def _throttled(self, value: bool) -> None:
        if self._fleet is None:
            self._throttled_local = value
        else:
            # Via the fleet so its cached flip threshold stays coherent.
            self._fleet._set_throttled(self._fleet_index, value)

    def reset(self) -> None:
        start = self.params.initial_budget_gbit
        if start is None:
            start = self.params.capacity_gbit
        self._budget = min(start, self.params.capacity_gbit)
        self._throttled = self._budget <= 0.0

    @property
    def budget_gbit(self) -> float:
        """Tokens currently in the bucket (Gbit)."""
        return self._budget

    @property
    def throttled(self) -> bool:
        """True while the VM is held at the capped rate."""
        return self._throttled

    def set_budget(self, budget_gbit: float) -> None:
        """Force the budget, as the paper does when resetting experiments.

        Figure 19's protocol resets the bucket to a chosen budget at the
        start of each repetition; this is the hook for that.
        """
        if budget_gbit < 0:
            raise ValueError("budget cannot be negative")
        self._budget = min(budget_gbit, self.params.capacity_gbit)
        if self._budget <= 0.0:
            self._throttled = True
        elif self._budget > self.params.resume_threshold_gbit:
            self._throttled = False

    def limit(self) -> float:
        if self._throttled:
            return self.params.capped_gbps
        return self.params.peak_gbps

    def _net_fill_rate(self, send_rate_gbps: float) -> float:
        """Budget change rate (Gbit/s) while sending at ``send_rate_gbps``."""
        return self.params.replenish_gbps - send_rate_gbps

    def horizon(self, send_rate_gbps: float) -> float:
        params = self.params
        fill = params.replenish_gbps - send_rate_gbps
        if self._throttled:
            # Ceiling changes when the budget climbs past the resume
            # threshold.
            if fill <= 0:
                return math.inf
            gap = params.resume_threshold_gbit - self._budget
            if gap <= _EMPTY_EPS_GBIT:
                return 0.0
            return gap / fill
        # High state: ceiling changes when the budget empties.
        if fill >= 0:
            return math.inf
        if self._budget <= _EMPTY_EPS_GBIT:
            return 0.0
        return self._budget / -fill

    def advance(self, dt: float, send_rate_gbps: float) -> None:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if send_rate_gbps < 0:
            raise ValueError("send rate cannot be negative")
        params = self.params
        budget = self._budget + (params.replenish_gbps - send_rate_gbps) * dt
        if budget < 0.0:
            budget = 0.0
        elif budget > params.capacity_gbit:
            budget = params.capacity_gbit
        if budget <= _EMPTY_EPS_GBIT:
            budget = 0.0
        self._budget = budget
        if self._throttled:
            if budget >= params.resume_threshold_gbit - _EMPTY_EPS_GBIT:
                self._throttled = False
        elif budget <= 0.0:
            self._throttled = True

    def rest(self, duration_s: float) -> None:
        """Analytic idle refill: one closed-form step, no sub-stepping.

        With zero offered traffic the net fill rate is ``replenish``
        regardless of the throttled state, so :meth:`advance` is exact
        over the whole interval even when it spans the resume-threshold
        transition — the generic horizon-stepping fallback (which
        busy-loops when the reported horizon is tiny) is unnecessary.
        """
        self.advance(duration_s, 0.0)

    def time_to_full_s(self, from_budget: float | None = None) -> float:
        """Rest time needed to completely refill the bucket."""
        if self.params.replenish_gbps == 0:
            return math.inf
        budget = self._budget if from_budget is None else from_budget
        return (self.params.capacity_gbit - budget) / self.params.replenish_gbps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "low" if self._throttled else "high"
        return (
            f"TokenBucketModel(budget={self._budget:.1f}/"
            f"{self.params.capacity_gbit:.0f} Gbit, state={state})"
        )
