"""Google Cloud's per-core bandwidth QoS model.

GCE guarantees a per-core amount of egress bandwidth (2 Gbps/core in
the paper's measurements: 1-core -> 2 Gbps ... 8-core -> 16 Gbps), and
the measured bandwidth "falls close to the QoS reported by the
provider".  The distinguishing behaviour (Figure 5) is that *access
pattern* drives variability: long-running streams are stable and fast,
while short bursts after idle periods show a long lower tail — the
paper attributes this to Andromeda routing idle flows through dedicated
gateways, so a resumed stream takes time to be reprogrammed onto the
fast path.

The model tracks stream age and idle time: while a stream is younger
than ``ramp_s`` (after an idle gap of at least ``idle_reset_s``), its
efficiency is drawn from a long-tailed "cold" distribution; once warm,
from a tight "warm" distribution near 1.  The ceiling is
``cores * per_core_gbps * efficiency``, redrawn every ``interval_s``.
"""

from __future__ import annotations

import numpy as np

from repro.netmodel.base import LinkModel
from repro.netmodel.distributions import QuantileDistribution

__all__ = ["PerCoreQosModel"]

#: Efficiency of a warmed-up flow: tight, near the advertised QoS.
DEFAULT_WARM_EFFICIENCY = QuantileDistribution(
    probs=(0.01, 0.25, 0.50, 0.75, 0.99),
    values=(0.85, 0.93, 0.95, 0.97, 0.99),
)

#: Efficiency of a cold (just-resumed) flow: long lower tail.
DEFAULT_COLD_EFFICIENCY = QuantileDistribution(
    probs=(0.01, 0.25, 0.50, 0.75, 0.99),
    values=(0.25, 0.60, 0.80, 0.92, 0.98),
)


class PerCoreQosModel(LinkModel):
    """Per-core QoS ceiling with access-pattern-dependent variability.

    When a :class:`~repro.netmodel.fleet.PerCoreQosFleet` adopts the
    model, the stream-age/idle-gap/interval clockwork and the current
    efficiency draw move into the fleet's struct-of-arrays storage and
    this handle reads/writes through (the same pattern
    :class:`~repro.netmodel.token_bucket.TokenBucketModel` uses), so
    scalar pokes (``reset``, state snapshots) stay coherent with
    batched fleet advances.  The seeded generator stays on the model —
    per-node draw sequences are identical either way.
    """

    def __init__(
        self,
        cores: int,
        per_core_gbps: float = 2.0,
        warm_efficiency: QuantileDistribution = DEFAULT_WARM_EFFICIENCY,
        cold_efficiency: QuantileDistribution = DEFAULT_COLD_EFFICIENCY,
        ramp_s: float = 4.0,
        idle_reset_s: float = 15.0,
        interval_s: float = 2.5,
        seed: int = 0,
    ) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if per_core_gbps <= 0:
            raise ValueError("per-core rate must be positive")
        if ramp_s < 0 or idle_reset_s < 0:
            raise ValueError("ramp and idle-reset durations cannot be negative")
        if interval_s <= 0:
            raise ValueError("resample interval must be positive")
        self.cores = int(cores)
        self.per_core_gbps = float(per_core_gbps)
        self.qos_gbps = self.cores * self.per_core_gbps
        self.warm_efficiency = warm_efficiency
        self.cold_efficiency = cold_efficiency
        self.ramp_s = float(ramp_s)
        self.idle_reset_s = float(idle_reset_s)
        self.interval_s = float(interval_s)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._fleet = None
        self._fleet_index = -1
        self._age_local = 0.0
        self._idle_local = 0.0
        self._elapsed_local = 0.0
        self._eff_local = 1.0
        self.reset()

    @property
    def _stream_age(self) -> float:
        if self._fleet is None:
            return self._age_local
        return float(self._fleet._age[self._fleet_index])

    @_stream_age.setter
    def _stream_age(self, value: float) -> None:
        if self._fleet is None:
            self._age_local = value
        else:
            self._fleet._age[self._fleet_index] = value

    @property
    def _idle_time(self) -> float:
        if self._fleet is None:
            return self._idle_local
        return float(self._fleet._idle[self._fleet_index])

    @_idle_time.setter
    def _idle_time(self, value: float) -> None:
        if self._fleet is None:
            self._idle_local = value
        else:
            self._fleet._idle[self._fleet_index] = value

    @property
    def _elapsed_in_interval(self) -> float:
        if self._fleet is None:
            return self._elapsed_local
        return float(self._fleet._elapsed[self._fleet_index])

    @_elapsed_in_interval.setter
    def _elapsed_in_interval(self, value: float) -> None:
        if self._fleet is None:
            self._elapsed_local = value
        else:
            self._fleet._elapsed[self._fleet_index] = value

    @property
    def _efficiency(self) -> float:
        if self._fleet is None:
            return self._eff_local
        return float(self._fleet._eff[self._fleet_index])

    @_efficiency.setter
    def _efficiency(self, value: float) -> None:
        if self._fleet is None:
            self._eff_local = value
        else:
            self._fleet._eff[self._fleet_index] = value

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        # A fresh VM pair starts cold: the first flow must be programmed.
        self._stream_age = 0.0
        self._idle_time = self.idle_reset_s
        self._elapsed_in_interval = 0.0
        self._efficiency = self._draw_efficiency()

    @property
    def is_warm(self) -> bool:
        """True when the active stream has outlived the ramp period."""
        return self._stream_age >= self.ramp_s

    def _draw_efficiency(self) -> float:
        dist = self.warm_efficiency if self.is_warm else self.cold_efficiency
        return float(dist.sample(self._rng))

    def _draw_efficiency_batch(self, k: int) -> float:
        """Take ``k`` consecutive draws in one RNG call; return the last.

        Bit-identical to ``k`` scalar :meth:`_draw_efficiency` calls
        while the warm/cold state holds fixed (``Generator.uniform``
        consumes exactly one double per element, scalar or batched) —
        the property the fleet's interval-crossing loop relies on,
        mirroring ``_ResamplingModel._draw_batch``.
        """
        dist = self.warm_efficiency if self.is_warm else self.cold_efficiency
        return float(dist.sample(self._rng, size=k)[-1])

    def limit(self) -> float:
        return self.qos_gbps * self._efficiency

    def horizon(self, send_rate_gbps: float) -> float:
        return max(self.interval_s - self._elapsed_in_interval, 0.0)

    def advance(self, dt: float, send_rate_gbps: float) -> None:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        sending = send_rate_gbps > 1e-9
        if sending:
            if self._idle_time >= self.idle_reset_s:
                # The flow went cold during the idle gap: restart its age
                # AND redraw the efficiency from the cold distribution.
                # Without the redraw a resumed burst keeps the stale warm
                # draw until the next interval boundary, so bursts
                # shorter than ``interval_s`` never sample the cold tail
                # Figure 5 measures.
                self._stream_age = 0.0
                self._efficiency = self._draw_efficiency()
            self._stream_age += dt
            self._idle_time = 0.0
        else:
            self._idle_time += dt
        self._elapsed_in_interval += dt
        while self._elapsed_in_interval >= self.interval_s - 1e-12:
            self._elapsed_in_interval -= self.interval_s
            self._efficiency = self._draw_efficiency()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "warm" if self.is_warm else "cold"
        return (
            f"PerCoreQosModel({self.cores} cores, qos={self.qos_gbps:.0f} Gbps, "
            f"{state}, eff={self._efficiency:.2f})"
        )
