"""Quantile-parameterized distributions.

The paper's Figure 2 reproduces the bandwidth distributions Ballani et
al. measured on eight real-world clouds, but only as box plots (1st,
25th, 50th, 75th, 99th percentiles).  Section 2.1's emulation therefore
samples bandwidth "uniformly from these distributions": the quantile
function is reconstructed by linear interpolation between the known
percentiles and sampled with uniform probabilities — exactly what
:class:`QuantileDistribution` implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.trace import BoxSummary

__all__ = ["QuantileDistribution"]


@dataclass(frozen=True)
class QuantileDistribution:
    """A distribution known only through a set of quantile points.

    ``probs`` are cumulative probabilities in (0, 1), strictly
    increasing; ``values`` the corresponding quantile values,
    non-decreasing.  Sampling inverts the piecewise-linear CDF.  The
    distribution is truncated at the outermost known quantiles, which
    matches how the paper treats the Ballani data (no information
    outside the 1st-99th percentile whiskers).
    """

    probs: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.probs) != len(self.values):
            raise ValueError("probs and values must have equal length")
        if len(self.probs) < 2:
            raise ValueError("need at least two quantile points")
        if any(not 0.0 < p < 1.0 for p in self.probs):
            raise ValueError("probabilities must be in (0, 1)")
        if any(b <= a for a, b in zip(self.probs, self.probs[1:])):
            raise ValueError("probabilities must be strictly increasing")
        if any(b < a for a, b in zip(self.values, self.values[1:])):
            raise ValueError("values must be non-decreasing")

    @classmethod
    def from_box(cls, box: BoxSummary) -> "QuantileDistribution":
        """Build from the paper's five-point box summary."""
        return cls(
            probs=(0.01, 0.25, 0.50, 0.75, 0.99),
            values=(box.p01, box.p25, box.p50, box.p75, box.p99),
        )

    @classmethod
    def from_mapping(cls, quantiles: Mapping[float, float]) -> "QuantileDistribution":
        """Build from a ``{probability: value}`` mapping."""
        probs = tuple(sorted(quantiles))
        values = tuple(quantiles[p] for p in probs)
        return cls(probs=probs, values=values)

    def quantile(self, p: float | Sequence[float] | np.ndarray):
        """Inverse CDF at probability ``p`` (clipped to the known range)."""
        p_arr = np.clip(np.asarray(p, dtype=float), self.probs[0], self.probs[-1])
        result = np.interp(p_arr, self.probs, self.values)
        if np.isscalar(p):
            return float(result)
        return result

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def box_summary(self) -> BoxSummary:
        """Project back to the paper's box summary.

        ``p999`` clips to this distribution's anchored probability
        range: the Ballani quantile tables end at p99, so beyond it
        the tail estimate saturates at the p99 value.
        """
        p01, p25, p50, p75, p99, p999 = (
            self.quantile(q) for q in (0.01, 0.25, 0.50, 0.75, 0.99, 0.999)
        )
        return BoxSummary(
            p01=p01, p25=p25, p50=p50, p75=p75, p99=p99, p999=p999
        )

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw samples by uniform inversion of the piecewise-linear CDF."""
        u = rng.uniform(self.probs[0], self.probs[-1], size=size)
        result = np.interp(u, self.probs, self.values)
        if size is None:
            return float(result)
        return result

    def mean_estimate(self, grid: int = 1_001) -> float:
        """Mean of the reconstructed distribution (trapezoidal estimate)."""
        probs = np.linspace(self.probs[0], self.probs[-1], grid)
        return float(np.mean(np.interp(probs, self.probs, self.values)))

    def scale(self, factor: float) -> "QuantileDistribution":
        """A copy with every quantile multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return QuantileDistribution(
            probs=self.probs, values=tuple(v * factor for v in self.values)
        )
