"""CPU token buckets: burstable-instance compute shaping.

Section 4.2 closes with a warning: "Others have shown that cloud
providers use token buckets for other resources such as CPU scheduling
[Wang et al.].  This affects cloud-based experimentation, as the state
of these token buckets is not directly visible to users."

This module models that mechanism — the credit system of AWS t2/t3
burstable instances: a VM accrues CPU credits while idle (or below its
baseline share) and spends them to run at full speed; with credits
exhausted it is capped at the baseline fraction.  The semantics mirror
the network bucket with rates measured in *fractions of a core*:

* full speed = 1.0 (the whole core),
* baseline = e.g. 0.2 for a t2.medium-class instance,
* credits accrue at the baseline rate and burn at (usage - baseline).

:class:`CpuTokenBucket` exposes a ``speed_factor`` suitable for the
cluster engine's per-node compute scaling, and the same
``horizon``/``advance`` fluid interface as the link models so
experiment runners can account hidden CPU state exactly like hidden
network state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CpuBucketParams", "CpuTokenBucket"]


@dataclass(frozen=True)
class CpuBucketParams:
    """Constants of one burstable-CPU credit system.

    Credits are measured in core-seconds; rates in cores.
    """

    #: Sustainable share of the core without spending credits.
    baseline_fraction: float
    #: Credit balance of a fresh instance, core-seconds.
    initial_credits: float
    #: Maximum accruable balance, core-seconds.
    max_credits: float

    def __post_init__(self) -> None:
        if not 0.0 < self.baseline_fraction <= 1.0:
            raise ValueError("baseline must be a fraction of a core in (0, 1]")
        if self.initial_credits < 0:
            raise ValueError("initial credits cannot be negative")
        if self.max_credits <= 0:
            raise ValueError("max credits must be positive")
        if self.initial_credits > self.max_credits:
            raise ValueError("initial credits cannot exceed the maximum")

    @property
    def burst_seconds(self) -> float:
        """Full-speed runtime a fresh instance sustains.

        Credits burn at ``1 - baseline`` while running flat out.
        """
        burn = 1.0 - self.baseline_fraction
        if burn <= 0:
            return math.inf
        return self.initial_credits / burn


#: A t2/t3.medium-class profile: 20 % baseline, ~30 minutes of burst.
T2_MEDIUM_LIKE = CpuBucketParams(
    baseline_fraction=0.2,
    initial_credits=360.0,
    max_credits=1_728.0,
)


class CpuTokenBucket:
    """Fluid CPU credit bucket with the link-model step interface."""

    def __init__(self, params: CpuBucketParams) -> None:
        self.params = params
        self._credits = params.initial_credits
        self._throttled = self._credits <= 0.0

    def reset(self) -> None:
        """Restore the fresh-instance credit balance."""
        self._credits = self.params.initial_credits
        self._throttled = self._credits <= 0.0

    @property
    def credits(self) -> float:
        """Current balance in core-seconds."""
        return self._credits

    @property
    def throttled(self) -> bool:
        """True while capped at the baseline share."""
        return self._throttled

    def speed_factor(self) -> float:
        """Current compute speed as a fraction of full speed.

        Multiply task durations by ``1 / speed_factor()`` — the knob
        the cluster engine's per-node compute scaling consumes.
        """
        return self.params.baseline_fraction if self._throttled else 1.0

    def _net_accrual(self, usage_fraction: float) -> float:
        return self.params.baseline_fraction - usage_fraction

    def horizon(self, usage_fraction: float) -> float:
        """Seconds the current speed factor is guaranteed to persist."""
        if not 0.0 <= usage_fraction <= 1.0:
            raise ValueError("usage must be a fraction of a core")
        net = self._net_accrual(usage_fraction)
        if self._throttled:
            # Unthrottles only if usage sits below baseline (accrual).
            if net <= 0:
                return math.inf
            return max(1.0 - self._credits, 0.0) / net
        if net >= 0:
            return math.inf
        if self._credits <= 1e-9:
            return 0.0
        return self._credits / -net

    def advance(self, dt: float, usage_fraction: float) -> None:
        """Account ``dt`` seconds of CPU usage at ``usage_fraction``."""
        if dt < 0:
            raise ValueError("dt cannot be negative")
        if not 0.0 <= usage_fraction <= 1.0:
            raise ValueError("usage must be a fraction of a core")
        net = self._net_accrual(usage_fraction)
        self._credits = min(
            max(self._credits + net * dt, 0.0), self.params.max_credits
        )
        if self._credits <= 1e-9:
            self._credits = max(self._credits, 0.0)
            self._throttled = True
        elif self._throttled and self._credits >= 1.0:
            self._throttled = False

    def run_at_full_speed(self, work_core_s: float) -> float:
        """Wall-clock time to complete ``work_core_s`` of computation.

        Closed-form fluid solution: burst through the credit balance at
        full speed, then crawl at the baseline — exactly how a
        credit-exhausted analytics node behaves.
        """
        if work_core_s < 0:
            raise ValueError("work cannot be negative")
        remaining = work_core_s
        elapsed = 0.0
        guard = 0
        while remaining > 1e-12:
            guard += 1
            if guard > 10_000:
                raise RuntimeError("CPU bucket failed to converge")
            speed = self.speed_factor()
            step = min(self.horizon(1.0 * speed), remaining / speed)
            step = max(step, 1e-9)
            self.advance(step, 1.0 * speed)
            remaining -= speed * step
            elapsed += step
        return elapsed
