"""Shaper fleets: batched limit/horizon/advance across a set of links.

A fluid-fabric step must ask *every* node's egress shaper for its
ceiling, its horizon under the node's aggregate send rate, and then
advance it — per step.  With scalar :class:`~repro.netmodel.base.LinkModel`
objects that is a Python-level loop of N method calls, and it dominates
step cost once the water-filling itself is vectorized (the remaining
~40% pinned by the PR 2 profile).  A :class:`LinkModelFleet` replaces
the loop with struct-of-arrays state and single numpy expressions.

Fleets *adopt* the scalar models they are built from: the hot state
(token budgets, resample clocks) moves into flat fleet arrays and the
scalar objects become read/write views into them — the same handle
pattern :class:`~repro.simulator.fabric.Flow` uses — so existing code
that pokes an individual model (``set_budget``, ``reset``, telemetry
reads) stays correct with zero synchronization logic.  Every batched
operation performs the exact same floating-point operations, in the
same order, as N scalar calls would, which is what lets the
golden-trace test pin fleet and scalar outputs bit-for-bit against
each other.

Five implementations:

* :class:`TokenBucketFleet` — flat budget/capacity/fill/tier arrays,
  vectorized net-fill accounting and an analytic batched idle
  ``rest`` (all Amazon-style shapers);
* :class:`ConstantRateFleet` — stateless fixed capacities;
* :class:`ResamplingFleet` — vectorizes the interval clockwork of
  :class:`~repro.netmodel.stochastic.UniformQuantileSamplingModel` /
  :class:`~repro.netmodel.stochastic.Ar1QuantileModel` while keeping
  each node's per-seed RNG draw sequence bit-exact (draws batch into
  one RNG call per node via ``_draw_batch``);
* :class:`PerCoreQosFleet` — vectorizes the stream-age/idle-gap/
  interval clockwork of
  :class:`~repro.netmodel.percore.PerCoreQosModel` (the GCE model)
  with the same per-link RNG guarantees, batching warm/cold
  efficiency redraws at interval crossings;
* :class:`ScalarFleetAdapter` — wraps heterogeneous or unknown scalar
  models in the reference per-model loop, so every fabric holds *some*
  fleet and the old ``Fabric(egress_models=...)`` constructor keeps
  working unchanged.

:func:`build_fleet` picks the best implementation for a model list.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.netmodel.base import _MAX_REST_STEPS, ConstantRateModel, LinkModel
from repro.netmodel.percore import PerCoreQosModel
from repro.netmodel.stochastic import (
    Ar1QuantileModel,
    UniformQuantileSamplingModel,
)
from repro.netmodel.token_bucket import TokenBucketModel, _EMPTY_EPS_GBIT

__all__ = [
    "LinkModelFleet",
    "TokenBucketFleet",
    "ConstantRateFleet",
    "ResamplingFleet",
    "PerCoreQosFleet",
    "ScalarFleetAdapter",
    "build_fleet",
    "concat_fleets",
]


class LinkModelFleet(ABC):
    """Batched :class:`~repro.netmodel.base.LinkModel` over N links.

    The per-link scalar contract carries over elementwise: ``limits()``
    is N ``limit()`` calls, ``horizons(rates)`` is N ``horizon(rate)``
    calls, and so on — implementations must produce bit-identical
    values (callers rely on this to swap fleets for scalar loops under
    golden-trace pins).  ``models`` exposes the adopted scalar handles;
    reading or mutating one of them observes/updates fleet state
    directly.
    """

    #: Adopted scalar handles, in node order.
    models: list[LinkModel]

    #: Optional observability callback, ``hook(changed_indices,
    #: limits)``, invoked from :meth:`advance` when any link's ceiling
    #: actually changed — ``changed_indices`` is an int array of the
    #: links that flipped and ``limits`` the fresh post-step ceilings.
    #: Class-level None: attaching a recorder costs nothing until a
    #: transition occurs, and the unhooked path stays allocation-free.
    transition_hook = None

    @property
    def n(self) -> int:
        """Number of links in the fleet."""
        return len(self.models)

    @abstractmethod
    def limits(self) -> np.ndarray:
        """Per-link rate ceilings (fresh array; callers may mutate)."""

    def limit_at(self, index: int) -> float:
        """One link's current rate ceiling, exactly ``limits()[index]``.

        Single-flow water-filling needs exactly one ceiling; subclasses
        override this with a scalar state read so the hot path skips
        materializing the whole fleet's limit array.
        """
        return float(self.limits()[index])

    @abstractmethod
    def horizons(self, send_rates: np.ndarray) -> np.ndarray:
        """Per-link ceiling-persistence bounds under ``send_rates``.

        The returned array may be an internal scratch buffer: read it
        before the next fleet call, and do not mutate it.
        """

    @abstractmethod
    def advance(self, dt: float, send_rates: np.ndarray) -> bool:
        """Account ``dt`` seconds of per-link traffic.

        Returns True when any link's ceiling changed over the step —
        the signal :meth:`~repro.simulator.fabric.Fabric.advance` uses
        to invalidate its rate assignment.
        """

    def advance_many(
        self, dt: np.ndarray, send_rates: np.ndarray
    ) -> np.ndarray | None:
        """Per-link-``dt`` variant of :meth:`advance` for batched runs.

        ``dt`` carries one step length per link, so independent
        simulation cells sharing one concatenated super-fleet (see
        :func:`concat_fleets`) can each take their own event step in a
        single fleet call.  Every per-link float operation is the exact
        operation :meth:`advance` performs with that link's scalar
        ``dt`` — the batched form is bit-identical per link, which the
        multistream runner's equivalence tests pin.

        Returns ``None`` when no link's ceiling changed, else a per-link
        boolean mask of the links whose ceiling changed.  The mask may
        be an internal scratch buffer: consume it before the next fleet
        call.  No :attr:`transition_hook` fires from this path —
        batched runs do not support recorders.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support batched advance"
        )

    @abstractmethod
    def rest(self, duration_s: float) -> None:
        """Idle every link for ``duration_s`` (buckets refill)."""

    @abstractmethod
    def reset(self) -> None:
        """Restore every link's pristine initial state."""

    def budgets(self) -> np.ndarray | None:
        """Per-link token budgets (Gbit), or None when not exposed.

        Returned array may be an internal view — treat as read-only.
        """
        return None


class ScalarFleetAdapter(LinkModelFleet):
    """Reference fleet: per-model Python loops over arbitrary models.

    This is the compatibility (and correctness-reference) path: any mix
    of link models works, at the cost of N scalar calls per operation —
    exactly the loops :class:`~repro.simulator.fabric.Fabric` ran
    before fleets existed.
    """

    def __init__(self, models: Sequence[LinkModel]) -> None:
        self.models = list(models)

    def limits(self) -> np.ndarray:
        return np.array([m.limit() for m in self.models], dtype=float)

    def limit_at(self, index: int) -> float:
        return float(self.models[index].limit())

    def horizons(self, send_rates: np.ndarray) -> np.ndarray:
        return np.array(
            [
                m.horizon(rate)
                for m, rate in zip(self.models, send_rates.tolist())
            ],
            dtype=float,
        )

    def advance(self, dt: float, send_rates: np.ndarray) -> bool:
        changed_indices: list[int] | None = None
        for index, (model, rate) in enumerate(
            zip(self.models, send_rates.tolist())
        ):
            before = model.limit()
            model.advance(dt, rate)
            if model.limit() != before:
                if changed_indices is None:
                    changed_indices = []
                changed_indices.append(index)
        if changed_indices is None:
            return False
        hook = self.transition_hook
        if hook is not None:
            hook(np.asarray(changed_indices, dtype=np.intp), self.limits())
        return True

    def advance_many(
        self, dt: np.ndarray, send_rates: np.ndarray
    ) -> np.ndarray | None:
        if np.any(dt < 0.0):
            raise ValueError("dt must be non-negative elementwise")
        mask: np.ndarray | None = None
        for index, (model, step, rate) in enumerate(
            zip(self.models, dt.tolist(), send_rates.tolist())
        ):
            before = model.limit()
            model.advance(step, rate)
            if model.limit() != before:
                if mask is None:
                    mask = np.zeros(len(self.models), dtype=bool)
                mask[index] = True
        return mask

    def rest(self, duration_s: float) -> None:
        for model in self.models:
            model.rest(duration_s)

    def reset(self) -> None:
        for model in self.models:
            model.reset()

    def budgets(self) -> np.ndarray | None:
        if all(hasattr(m, "budget_gbit") for m in self.models):
            return np.array([m.budget_gbit for m in self.models], dtype=float)
        return None


class TokenBucketFleet(LinkModelFleet):
    """Struct-of-arrays token buckets (possibly heterogeneous params).

    Budgets and throttled flags live in flat arrays; the vectorized
    net-fill accounting in :meth:`advance` and the analytic batched
    :meth:`rest` perform the same elementwise float operations as the
    scalar :class:`~repro.netmodel.token_bucket.TokenBucketModel`
    methods, so fleet and scalar paths are bit-exact.
    """

    def __init__(self, models: Sequence[TokenBucketModel]) -> None:
        models = list(models)
        for model in models:
            if type(model) is not TokenBucketModel:
                raise TypeError(f"not a TokenBucketModel: {model!r}")
            if model._fleet is not None:
                raise ValueError("model already adopted by another fleet")
        self.models = models
        params = [m.params for m in models]
        self._peak = np.array([p.peak_gbps for p in params], dtype=float)
        self._capped = np.array([p.capped_gbps for p in params], dtype=float)
        self._replenish = np.array(
            [p.replenish_gbps for p in params], dtype=float
        )
        self._capacity = np.array([p.capacity_gbit for p in params], dtype=float)
        self._resume = np.array(
            [p.resume_threshold_gbit for p in params], dtype=float
        )
        # Pristine state, mirroring TokenBucketModel.reset().
        starts = [
            p.capacity_gbit if p.initial_budget_gbit is None else p.initial_budget_gbit
            for p in params
        ]
        self._reset_budget = np.minimum(np.array(starts, dtype=float), self._capacity)
        self._reset_throttled = self._reset_budget <= 0.0
        # Adopt: move current scalar state into the arrays.
        self._budget = np.array([m._budget_local for m in models], dtype=float)
        self._throttled = np.array(
            [m._throttled_local for m in models], dtype=bool
        )
        n = len(models)
        self._zeros = np.zeros(n, dtype=float)
        # Dispatch-count economies for the per-step hot path: scratch
        # buffers (arrays this small are dominated by allocation and
        # ufunc-dispatch overhead, not arithmetic) and precomputed
        # constants.
        self._resume_minus_eps = self._resume - _EMPTY_EPS_GBIT
        self._tier_differs = self._capped != self._peak
        self._f64_scratch = np.empty(n, dtype=float)
        self._f64_scratch2 = np.empty(n, dtype=float)
        self._bool_scratch = np.empty(n, dtype=bool)
        self._bool_scratch2 = np.empty(n, dtype=bool)
        self._horizon_out = np.empty(n, dtype=float)
        # Tier-flip threshold per link: a high link flips when its
        # budget hits 0 (== any value at/below the empty snap, since
        # advance snaps (0, eps] to 0), a throttled link when the
        # budget reaches resume - eps.  Caching it per tier state turns
        # the flip test into one vector compare.
        self._flip_threshold = np.where(
            self._throttled, self._resume_minus_eps, _EMPTY_EPS_GBIT
        )
        for index, model in enumerate(models):
            model._fleet = self
            model._fleet_index = index

    def _sync_thresholds(self) -> None:
        """Recompute the cached flip thresholds from ``_throttled``.

        Writes in place: when this fleet's state arrays are slice views
        into a concatenated super-fleet (:func:`concat_fleets`), or
        vice versa, rebinding the attribute would silently decouple the
        two.
        """
        self._flip_threshold.fill(_EMPTY_EPS_GBIT)
        np.copyto(
            self._flip_threshold, self._resume_minus_eps, where=self._throttled
        )

    def _set_throttled(self, index: int, value: bool) -> None:
        """Scalar-view write path (``set_budget``/``reset`` on a model).

        Keeps the cached flip threshold coherent with the tier flag —
        every write to ``_throttled`` from outside :meth:`advance` must
        go through here.
        """
        self._throttled[index] = value
        self._flip_threshold[index] = (
            self._resume_minus_eps[index] if value else _EMPTY_EPS_GBIT
        )

    def limits(self) -> np.ndarray:
        return np.where(self._throttled, self._capped, self._peak)

    def limit_at(self, index: int) -> float:
        if self._throttled[index]:
            return float(self._capped[index])
        return float(self._peak[index])

    def horizons(self, send_rates: np.ndarray) -> np.ndarray:
        """Per-link horizons; the returned array is a reused scratch
        buffer, valid until the next fleet call."""
        fill = np.subtract(self._replenish, send_rates, out=self._f64_scratch)
        throttled = self._throttled
        out = self._horizon_out
        out.fill(math.inf)
        # Throttled links: ceiling changes when the budget climbs past
        # the resume threshold (never, if not refilling).
        thr_div = np.greater(fill, 0.0, out=self._bool_scratch)
        np.logical_and(throttled, thr_div, out=thr_div)
        if thr_div.any():
            gap = np.subtract(self._resume, self._budget, out=self._f64_scratch2)
            np.divide(gap, fill, out=out, where=thr_div)
            zero = np.less_equal(gap, _EMPTY_EPS_GBIT, out=self._bool_scratch2)
            np.logical_and(thr_div, zero, out=zero)
            if zero.any():
                out[zero] = 0.0
        # High links: ceiling changes when the budget empties.  For
        # booleans ``a > b`` is ``a & ~b``, saving a negation temp.
        high_div = np.less(fill, 0.0, out=self._bool_scratch)
        np.greater(high_div, throttled, out=high_div)
        if high_div.any():
            np.negative(fill, out=fill)
            np.divide(self._budget, fill, out=out, where=high_div)
            zero = np.less_equal(
                self._budget, _EMPTY_EPS_GBIT, out=self._bool_scratch2
            )
            np.logical_and(high_div, zero, out=zero)
            if zero.any():
                out[zero] = 0.0
        return out

    def advance(self, dt: float, send_rates: np.ndarray) -> bool:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        budget = self._budget
        step = np.subtract(self._replenish, send_rates, out=self._f64_scratch)
        step *= dt
        budget += step
        np.maximum(budget, 0.0, out=budget)
        np.minimum(budget, self._capacity, out=budget)
        # Snap float residue at/below eps to exactly 0 (see the scalar
        # model): multiply-by-mask is the cheapest exact formulation.
        alive = np.greater(budget, _EMPTY_EPS_GBIT, out=self._bool_scratch)
        np.multiply(budget, alive, out=budget)
        # After the snap, budgets live in {0} U (eps, capacity], so the
        # scalar tier rules (throttled: budget >= resume - eps resumes;
        # high: budget <= 0 throttles) reduce to one compare against
        # the per-tier threshold.
        flipped = np.less(budget, self._flip_threshold, out=self._bool_scratch)
        throttled = self._throttled
        np.not_equal(flipped, throttled, out=flipped)
        if not flipped.any():
            return False
        np.logical_xor(throttled, flipped, out=throttled)
        self._sync_thresholds()
        # The ceiling only moves when the tier flips on a link whose
        # two tiers actually differ.
        np.logical_and(flipped, self._tier_differs, out=flipped)
        changed = bool(flipped.any())
        if changed:
            hook = self.transition_hook
            if hook is not None:
                hook(np.flatnonzero(flipped), self.limits())
        return changed

    def advance_many(
        self, dt: np.ndarray, send_rates: np.ndarray
    ) -> np.ndarray | None:
        # The exact :meth:`advance` expression chain with a per-link
        # ``dt``: every operation is elementwise, so link ``i`` sees
        # bit-identical arithmetic to a scalar ``advance(dt[i], ...)``.
        # (min() is a pure reduction — no comparison temporary.)
        if dt.size and float(dt.min()) < 0.0:
            raise ValueError("dt must be non-negative elementwise")
        budget = self._budget
        step = np.subtract(self._replenish, send_rates, out=self._f64_scratch)
        step *= dt
        budget += step
        np.maximum(budget, 0.0, out=budget)
        np.minimum(budget, self._capacity, out=budget)
        alive = np.greater(budget, _EMPTY_EPS_GBIT, out=self._bool_scratch)
        np.multiply(budget, alive, out=budget)
        flipped = np.less(budget, self._flip_threshold, out=self._bool_scratch)
        throttled = self._throttled
        np.not_equal(flipped, throttled, out=flipped)
        if not flipped.any():
            return None
        np.logical_xor(throttled, flipped, out=throttled)
        self._sync_thresholds()
        np.logical_and(flipped, self._tier_differs, out=flipped)
        return flipped

    def rest(self, duration_s: float) -> None:
        # Analytic idle refill, exactly TokenBucketModel.rest: with no
        # offered traffic the net fill rate is `replenish` in both
        # tiers, so one batched advance covers the whole interval.
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        self.advance(duration_s, self._zeros)

    def reset(self) -> None:
        self._budget[:] = self._reset_budget
        self._throttled[:] = self._reset_throttled
        self._sync_thresholds()

    def budgets(self) -> np.ndarray | None:
        return self._budget


class ConstantRateFleet(LinkModelFleet):
    """Fixed-capacity links: nothing to advance, horizons are infinite."""

    def __init__(self, models: Sequence[ConstantRateModel]) -> None:
        models = list(models)
        for model in models:
            if type(model) is not ConstantRateModel:
                raise TypeError(f"not a ConstantRateModel: {model!r}")
        self.models = models
        self._rates = np.array([m.limit() for m in models], dtype=float)

    def limits(self) -> np.ndarray:
        return self._rates.copy()

    def limit_at(self, index: int) -> float:
        return float(self._rates[index])

    def horizons(self, send_rates: np.ndarray) -> np.ndarray:
        return np.full(self._rates.shape[0], math.inf)

    def advance(self, dt: float, send_rates: np.ndarray) -> bool:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        return False

    def advance_many(
        self, dt: np.ndarray, send_rates: np.ndarray
    ) -> np.ndarray | None:
        if np.any(dt < 0.0):
            raise ValueError("dt must be non-negative elementwise")
        return None

    def rest(self, duration_s: float) -> None:
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")

    def reset(self) -> None:
        pass


class ResamplingFleet(LinkModelFleet):
    """Batched interval clockwork for periodically-resampled ceilings.

    The elapsed-time bookkeeping of N resampling models advances as one
    array operation; only links that actually cross a resample boundary
    fall back to per-link handling, where all of a link's crossed-
    boundary draws batch into a single RNG call
    (:meth:`~repro.netmodel.stochastic._ResamplingModel._draw_batch`).
    Each model keeps its own seeded generator, so per-node draw
    sequences are bit-identical to the scalar path — including the
    clockwork float residues, which replay the scalar operation order
    per crossing link.
    """

    _ADOPTABLE = (UniformQuantileSamplingModel, Ar1QuantileModel)

    def __init__(self, models: Sequence[LinkModel]) -> None:
        models = list(models)
        for model in models:
            if type(model) not in self._ADOPTABLE:
                raise TypeError(f"not a resampling model: {model!r}")
            if model._fleet is not None:
                raise ValueError("model already adopted by another fleet")
        self.models = models
        self._intervals = np.array([m._interval for m in models], dtype=float)
        self._elapsed = np.array([m._elapsed_local for m in models], dtype=float)
        self._current = np.array([m._current_local for m in models], dtype=float)
        for index, model in enumerate(models):
            model._fleet = self
            model._fleet_index = index

    def limits(self) -> np.ndarray:
        return self._current.copy()

    def limit_at(self, index: int) -> float:
        return float(self._current[index])

    def horizons(self, send_rates: np.ndarray) -> np.ndarray:
        return np.maximum(self._intervals - self._elapsed, 0.0)

    def advance(self, dt: float, send_rates: np.ndarray) -> bool:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        elapsed = self._elapsed
        elapsed += dt
        crossed = elapsed >= self._intervals - 1e-12
        if not crossed.any():
            return False
        changed_indices: list[int] | None = None
        current = self._current
        for i in np.flatnonzero(crossed).tolist():
            interval = float(self._intervals[i])
            e = float(elapsed[i])
            k = 0
            # Same repeated subtraction as the scalar while-loop, so
            # the elapsed residue carries identical float error.
            while e >= interval - 1e-12:
                e -= interval
                k += 1
            elapsed[i] = e
            value = self.models[i]._draw_batch(k)
            if value != current[i]:
                if changed_indices is None:
                    changed_indices = []
                changed_indices.append(i)
            current[i] = value
        if changed_indices is None:
            return False
        hook = self.transition_hook
        if hook is not None:
            hook(np.asarray(changed_indices, dtype=np.intp), self.limits())
        return True

    def advance_many(
        self, dt: np.ndarray, send_rates: np.ndarray
    ) -> np.ndarray | None:
        if np.any(dt < 0.0):
            raise ValueError("dt must be non-negative elementwise")
        elapsed = self._elapsed
        elapsed += dt
        crossed = elapsed >= self._intervals - 1e-12
        if not crossed.any():
            return None
        mask: np.ndarray | None = None
        current = self._current
        for i in np.flatnonzero(crossed).tolist():
            interval = float(self._intervals[i])
            e = float(elapsed[i])
            k = 0
            while e >= interval - 1e-12:
                e -= interval
                k += 1
            elapsed[i] = e
            value = self.models[i]._draw_batch(k)
            if value != current[i]:
                if mask is None:
                    mask = np.zeros(elapsed.shape[0], dtype=bool)
                mask[i] = True
            current[i] = value
        return mask

    def rest(self, duration_s: float) -> None:
        # Mirrors the generic LinkModel.rest horizon-stepping loop per
        # link (the clockwork is RNG-independent, so step sizes and
        # crossing counts replicate exactly), then takes every crossed
        # boundary's draw in one batched RNG call per link.
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        min_step = duration_s / _MAX_REST_STEPS
        elapsed = self._elapsed
        current = self._current
        for i, model in enumerate(self.models):
            interval = float(self._intervals[i])
            e = float(elapsed[i])
            remaining = duration_s
            k = 0
            while remaining > 1e-9:
                step = min(remaining, max(interval - e, min_step, 1e-6))
                e += step
                while e >= interval - 1e-12:
                    e -= interval
                    k += 1
                remaining -= step
            elapsed[i] = e
            if k:
                current[i] = model._draw_batch(k)

    def reset(self) -> None:
        for model in self.models:
            model.reset()


class PerCoreQosFleet(LinkModelFleet):
    """Batched stream-age/idle-gap clockwork for GCE per-core QoS links.

    The per-step bookkeeping of
    :class:`~repro.netmodel.percore.PerCoreQosModel` — is this node
    sending, did an idle gap expire, did the resample interval roll
    over — advances as a handful of array operations instead of N
    scalar method calls.  Only links that actually redraw (an idle
    resume restarting a cold stream, or interval-boundary crossings)
    fall back to per-link handling; a link's crossed-boundary draws
    batch into a single RNG call
    (:meth:`~repro.netmodel.percore.PerCoreQosModel.
    _draw_efficiency_batch`).  Each model keeps its own seeded
    generator and the clockwork float residues replay the scalar
    operation order per crossing link, so per-node state and draw
    sequences are bit-identical to the scalar path.
    """

    def __init__(self, models: Sequence[PerCoreQosModel]) -> None:
        models = list(models)
        for model in models:
            if type(model) is not PerCoreQosModel:
                raise TypeError(f"not a PerCoreQosModel: {model!r}")
            if model._fleet is not None:
                raise ValueError("model already adopted by another fleet")
        self.models = models
        self._qos = np.array([m.qos_gbps for m in models], dtype=float)
        self._ramp = np.array([m.ramp_s for m in models], dtype=float)
        self._idle_reset = np.array([m.idle_reset_s for m in models], dtype=float)
        self._interval = np.array([m.interval_s for m in models], dtype=float)
        # Same threshold value the scalar while-loop computes each
        # iteration (``interval_s - 1e-12``), hoisted per link.
        self._interval_eps = self._interval - 1e-12
        # Adopt: move current scalar state into the arrays.
        self._age = np.array([m._age_local for m in models], dtype=float)
        self._idle = np.array([m._idle_local for m in models], dtype=float)
        self._elapsed = np.array([m._elapsed_local for m in models], dtype=float)
        self._eff = np.array([m._eff_local for m in models], dtype=float)
        n = len(models)
        self._f64_scratch = np.empty(n, dtype=float)
        self._bool_scratch = np.empty(n, dtype=bool)
        self._bool_scratch2 = np.empty(n, dtype=bool)
        for index, model in enumerate(models):
            model._fleet = self
            model._fleet_index = index

    def limits(self) -> np.ndarray:
        return self._qos * self._eff

    def limit_at(self, index: int) -> float:
        return float(self._qos[index]) * float(self._eff[index])

    def horizons(self, send_rates: np.ndarray) -> np.ndarray:
        out = np.subtract(self._interval, self._elapsed, out=self._f64_scratch)
        np.maximum(out, 0.0, out=out)
        return out

    def advance(self, dt: float, send_rates: np.ndarray) -> bool:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        age = self._age
        idle = self._idle
        elapsed = self._elapsed
        eff = self._eff
        sending = np.greater(send_rates, 1e-9, out=self._bool_scratch)
        # Pre-redraw ceilings of the (rare) links that redraw this
        # step, keyed by index: "changed" is the net before/after
        # comparison, exactly what ScalarFleetAdapter observes when a
        # resume redraw is later superseded by a boundary redraw.
        old_eff: dict[int, float] | None = None
        # Idle resume: a sending link whose idle gap expired restarts
        # its stream age and redraws from the (almost always cold)
        # distribution — before the age/idle update, as in the scalar.
        resume = np.greater_equal(idle, self._idle_reset, out=self._bool_scratch2)
        np.logical_and(resume, sending, out=resume)
        if resume.any():
            old_eff = {}
            for i in np.flatnonzero(resume).tolist():
                age[i] = 0.0
                old_eff[i] = float(eff[i])
                eff[i] = self.models[i]._draw_efficiency()
        # Vectorized clockwork, elementwise-identical to the scalar
        # branches: sending links age and zero their idle time, idle
        # links accumulate it; the interval clock always ticks.
        np.add(age, dt, out=age, where=sending)
        notsending = np.logical_not(sending, out=self._bool_scratch2)
        np.add(idle, dt, out=idle, where=notsending)
        idle[sending] = 0.0
        elapsed += dt
        crossed = np.greater_equal(
            elapsed, self._interval_eps, out=self._bool_scratch2
        )
        if crossed.any():
            if old_eff is None:
                old_eff = {}
            for i in np.flatnonzero(crossed).tolist():
                interval = float(self._interval[i])
                threshold = float(self._interval_eps[i])
                e = float(elapsed[i])
                k = 0
                # Same repeated subtraction as the scalar while-loop,
                # so the elapsed residue carries identical float error.
                while e >= threshold:
                    e -= interval
                    k += 1
                elapsed[i] = e
                if i not in old_eff:
                    old_eff[i] = float(eff[i])
                eff[i] = self.models[i]._draw_efficiency_batch(k)
        if old_eff is None:
            return False
        changed_indices = sorted(
            i for i, before in old_eff.items() if eff[i] != before
        )
        if not changed_indices:
            return False
        hook = self.transition_hook
        if hook is not None:
            hook(np.asarray(changed_indices, dtype=np.intp), self.limits())
        return True

    def advance_many(
        self, dt: np.ndarray, send_rates: np.ndarray
    ) -> np.ndarray | None:
        # :meth:`advance` with a per-link ``dt``; every clockwork
        # update is elementwise and the redraw loops replay the scalar
        # operation order per link, so link ``i`` is bit-identical to a
        # scalar ``advance(dt[i], ...)``.
        if np.any(dt < 0.0):
            raise ValueError("dt must be non-negative elementwise")
        age = self._age
        idle = self._idle
        elapsed = self._elapsed
        eff = self._eff
        sending = np.greater(send_rates, 1e-9, out=self._bool_scratch)
        old_eff: dict[int, float] | None = None
        resume = np.greater_equal(idle, self._idle_reset, out=self._bool_scratch2)
        np.logical_and(resume, sending, out=resume)
        if resume.any():
            old_eff = {}
            for i in np.flatnonzero(resume).tolist():
                age[i] = 0.0
                old_eff[i] = float(eff[i])
                eff[i] = self.models[i]._draw_efficiency()
        np.add(age, dt, out=age, where=sending)
        notsending = np.logical_not(sending, out=self._bool_scratch2)
        np.add(idle, dt, out=idle, where=notsending)
        idle[sending] = 0.0
        elapsed += dt
        crossed = np.greater_equal(
            elapsed, self._interval_eps, out=self._bool_scratch2
        )
        if crossed.any():
            if old_eff is None:
                old_eff = {}
            for i in np.flatnonzero(crossed).tolist():
                interval = float(self._interval[i])
                threshold = float(self._interval_eps[i])
                e = float(elapsed[i])
                k = 0
                while e >= threshold:
                    e -= interval
                    k += 1
                elapsed[i] = e
                if i not in old_eff:
                    old_eff[i] = float(eff[i])
                eff[i] = self.models[i]._draw_efficiency_batch(k)
        if old_eff is None:
            return None
        mask: np.ndarray | None = None
        for i, before in old_eff.items():
            if eff[i] != before:
                if mask is None:
                    mask = np.zeros(eff.shape[0], dtype=bool)
                mask[i] = True
        return mask

    def rest(self, duration_s: float) -> None:
        # Per-model generic horizon-stepping rest: the scalar reference
        # (rest is a between-repetitions cold path; draws still come
        # from each model's own generator, via the fleet views).
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        for model in self.models:
            model.rest(duration_s)

    def reset(self) -> None:
        for model in self.models:
            model.reset()


def build_fleet(
    models: Sequence[LinkModel], prefer_scalar: bool = False
) -> LinkModelFleet:
    """Choose the best fleet implementation for ``models``.

    Homogeneous lists of the known model *exact* types get their
    vectorized fleet (the two resampling classes may mix, since their
    clockwork is shared); anything else — mixed fleets, subclasses,
    models already adopted elsewhere — falls back to the scalar
    adapter, which is always correct.  ``prefer_scalar`` forces the
    adapter (reference/regression-comparison runs).
    """
    models = list(models)
    if prefer_scalar or not models:
        return ScalarFleetAdapter(models)
    if any(getattr(m, "_fleet", None) is not None for m in models):
        return ScalarFleetAdapter(models)
    first = type(models[0])
    if all(type(m) is first for m in models):
        if first is TokenBucketModel:
            return TokenBucketFleet(models)
        if first is ConstantRateModel:
            return ConstantRateFleet(models)
        if first is PerCoreQosModel:
            return PerCoreQosFleet(models)
    if all(type(m) in ResamplingFleet._ADOPTABLE for m in models):
        return ResamplingFleet(models)
    return ScalarFleetAdapter(models)


#: Per-class arrays that concatenate into a super-fleet and rebind on
#: the member fleets as slice views (constants and hot state alike:
#: views of constants cost nothing and keep the stitching uniform).
#: Scratch buffers are *not* shared — each fleet keeps its own, sized
#: to its own link count.
_CONCAT_SHARED: dict[type, tuple[str, ...]] = {
    TokenBucketFleet: (
        "_peak",
        "_capped",
        "_replenish",
        "_capacity",
        "_resume",
        "_reset_budget",
        "_reset_throttled",
        "_resume_minus_eps",
        "_tier_differs",
        "_budget",
        "_throttled",
        "_flip_threshold",
    ),
    ConstantRateFleet: ("_rates",),
    ResamplingFleet: ("_intervals", "_elapsed", "_current"),
    PerCoreQosFleet: (
        "_qos",
        "_ramp",
        "_idle_reset",
        "_interval",
        "_interval_eps",
        "_age",
        "_idle",
        "_elapsed",
        "_eff",
    ),
}


def concat_fleets(fleets: Sequence[LinkModelFleet]) -> LinkModelFleet:
    """Stitch same-class fleets into one super-fleet over shared state.

    The returned fleet's state arrays are the member fleets' arrays
    concatenated in order, and each member fleet's array attributes are
    *rebound to slice views* of the concatenation — after this call the
    member fleets and the super-fleet read and write the same memory.
    One ``horizons``/``advance_many`` call on the super-fleet then
    covers every member link while scalar model handles, per-member
    ``limits()``/``budgets()`` reads, and member-level ``reset`` keep
    working unchanged (all fleet mutators write in place).

    This is the multistream runner's core trick: N independent
    simulation cells, each with its own few-link fleet, pay one numpy
    dispatch per batched operation instead of N.  Per-link arithmetic
    is unchanged — ``advance_many`` takes a per-link ``dt`` so each
    cell still steps by its own event horizon, bit-identically to its
    standalone ``advance``.

    All fleets must be the same concrete class (heterogeneous batches
    would need per-class dispatch — group cells first).  Transition
    hooks are unsupported: batched runs reject recorders.
    """
    fleets = list(fleets)
    if not fleets:
        raise ValueError("concat_fleets needs at least one fleet")
    cls = type(fleets[0])
    for fleet in fleets:
        if type(fleet) is not cls:
            raise ValueError(
                "all fleets in a batch must share one class; got "
                f"{cls.__name__} and {type(fleet).__name__}"
            )
        if fleet.transition_hook is not None:
            raise ValueError(
                "fleets with transition hooks (recorders) cannot batch"
            )
    models = [m for fleet in fleets for m in fleet.models]
    if cls is ScalarFleetAdapter:
        # No arrays to stitch: the models themselves hold the state,
        # and a fresh adapter over the concatenated list shares them.
        return ScalarFleetAdapter(models)
    if cls not in _CONCAT_SHARED:
        raise ValueError(f"cannot concatenate fleets of class {cls.__name__}")
    super_fleet = object.__new__(cls)
    super_fleet.models = models
    for name in _CONCAT_SHARED[cls]:
        parts = [getattr(fleet, name) for fleet in fleets]
        merged = np.concatenate(parts)
        setattr(super_fleet, name, merged)
        lo = 0
        for fleet, part in zip(fleets, parts):
            hi = lo + part.shape[0]
            setattr(fleet, name, merged[lo:hi])
            lo = hi
    n = len(models)
    if cls is TokenBucketFleet:
        super_fleet._zeros = np.zeros(n, dtype=float)
        super_fleet._f64_scratch = np.empty(n, dtype=float)
        super_fleet._f64_scratch2 = np.empty(n, dtype=float)
        super_fleet._bool_scratch = np.empty(n, dtype=bool)
        super_fleet._bool_scratch2 = np.empty(n, dtype=bool)
        super_fleet._horizon_out = np.empty(n, dtype=float)
    elif cls is PerCoreQosFleet:
        super_fleet._f64_scratch = np.empty(n, dtype=float)
        super_fleet._bool_scratch = np.empty(n, dtype=bool)
        super_fleet._bool_scratch2 = np.empty(n, dtype=bool)
    return super_fleet
