"""The link-model interface shared by every network model.

A :class:`LinkModel` is a stateful rate limiter: at any instant it
imposes a bandwidth ceiling (:meth:`LinkModel.limit`), and its state
evolves as traffic is sent through it (:meth:`LinkModel.advance`).  The
:meth:`LinkModel.horizon` method makes fluid-flow simulation exact: it
returns how long the current ceiling is guaranteed to persist given a
constant send rate, so callers can integrate piecewise-constant rates
without fixed-step error.  Token buckets have analytic horizons (time
until the budget empties or refills); sampling-based models bound the
horizon by their next resample instant.

This design mirrors how the paper's experiments are layered: the same
shaping behaviour must drive a raw iperf-style probe (Section 3), a
``tc``-based emulated link (Figure 14), and the per-node NICs of a
Spark cluster (Section 4).

For whole-cluster simulation, N scalar models batch into a
:class:`~repro.netmodel.fleet.LinkModelFleet` (see
:mod:`repro.netmodel.fleet`): the fleet owns the hot state in flat
arrays and the scalar objects become live views into it, so the
per-link contract here stays the semantic reference — every fleet
operation must match N scalar calls bit for bit.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = ["LinkModel", "ConstantRateModel", "integrate_transfer", "TransferResult"]

#: Step-count bound for the generic idle-rest fallback: a model whose
#: horizon collapses (e.g. a shaper hovering at a state boundary) must
#: not turn a rest into millions of micro-steps.
_MAX_REST_STEPS = 10_000


class LinkModel(ABC):
    """Stateful bandwidth ceiling for one direction of one link."""

    @abstractmethod
    def limit(self) -> float:
        """Current instantaneous rate ceiling in Gbps."""

    @abstractmethod
    def horizon(self, send_rate_gbps: float) -> float:
        """Seconds the current ceiling is guaranteed to hold.

        Assumes traffic flows at ``send_rate_gbps`` for the whole
        interval.  Returns ``math.inf`` when the ceiling never changes
        under that load.  Implementations may return a conservative
        (smaller) value, never a larger one.
        """

    @abstractmethod
    def advance(self, dt: float, send_rate_gbps: float) -> None:
        """Account ``dt`` seconds of traffic at ``send_rate_gbps``.

        ``send_rate_gbps`` may be 0 to model idle periods (which matter:
        token buckets refill and GCE gateways de-program idle flows).
        Callers must not advance past the current horizon, or the model
        is free to mis-account the interval.
        """

    @abstractmethod
    def reset(self) -> None:
        """Restore pristine initial state (a freshly created VM pair)."""

    def rest(self, duration_s: float) -> None:
        """Idle for ``duration_s`` seconds (no traffic offered).

        Generic fallback: integrate at the model's idle horizon, with a
        step floor of ``duration_s / 10_000`` so a shaper reporting a
        vanishing horizon (a token bucket sitting at its resume
        threshold, say) is bounded to a fixed step count rather than
        busy-looping in microsecond steps.  Models with closed-form
        idle dynamics override this (:class:`TokenBucketModel` refills
        in a single analytic step).
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        remaining = duration_s
        min_step = duration_s / _MAX_REST_STEPS
        while remaining > 1e-9:
            step = min(remaining, max(self.horizon(0.0), min_step, 1e-6))
            self.advance(step, 0.0)
            remaining -= step


class ConstantRateModel(LinkModel):
    """A fixed-capacity link: the null model / ideal datacenter."""

    def __init__(self, rate_gbps: float) -> None:
        if rate_gbps <= 0:
            raise ValueError(f"rate must be positive, got {rate_gbps}")
        self._rate = float(rate_gbps)

    def limit(self) -> float:
        return self._rate

    def horizon(self, send_rate_gbps: float) -> float:
        return math.inf

    def advance(self, dt: float, send_rate_gbps: float) -> None:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantRateModel({self._rate} Gbps)"


class TransferResult:
    """Outcome of integrating a transfer through a link model."""

    __slots__ = ("transferred_gbit", "duration_s")

    def __init__(self, transferred_gbit: float, duration_s: float) -> None:
        self.transferred_gbit = transferred_gbit
        self.duration_s = duration_s

    @property
    def mean_rate_gbps(self) -> float:
        """Average achieved rate over the interval."""
        if self.duration_s == 0:
            return 0.0
        return self.transferred_gbit / self.duration_s


def integrate_transfer(
    model: LinkModel,
    duration_s: float,
    offered_gbps: float,
    max_step_s: float = math.inf,
) -> TransferResult:
    """Send at ``offered_gbps`` (or the ceiling) for ``duration_s``.

    The achieved rate at each instant is ``min(offered, model.limit())``;
    integration steps at the model's horizon so piecewise-constant
    ceilings are integrated exactly.  ``max_step_s`` additionally bounds
    each step, useful when the caller wants sub-interval samples.
    """
    if duration_s < 0:
        raise ValueError(f"duration must be non-negative, got {duration_s}")
    if offered_gbps < 0:
        raise ValueError(f"offered rate must be non-negative, got {offered_gbps}")

    remaining = duration_s
    transferred = 0.0
    # Guard against pathological zero-length horizons from buggy models.
    min_step = 1e-9
    while remaining > 1e-12:
        rate = min(offered_gbps, model.limit())
        step = min(remaining, model.horizon(rate), max_step_s)
        step = max(step, min_step)
        step = min(step, remaining)
        model.advance(step, rate)
        transferred += rate * step
        remaining -= step
    return TransferResult(transferred_gbit=transferred, duration_s=duration_s)
