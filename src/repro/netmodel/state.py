"""Link-model state snapshots: persist a shaper, restore it elsewhere.

Warm-fabric chains (:mod:`repro.runtime` cells that consume a
predecessor cell's artifacts) need to hand a *live* fabric from one
campaign cell to the next: the successor tenant must meet exactly the
token budgets, stream ages, and RNG positions the predecessor left
behind — the Figure 19 carry-over at campaign scale.  Cells cross
process and machine boundaries as JSON, so the snapshot must be a
plain JSON document, not a pickle.

:func:`model_state_dict` captures *everything* needed to reconstruct
the model — its construction parameters (the incarnation the provider
drew) and its dynamic state (budgets, clocks, the bit-generator
state) — and :func:`model_from_state` rebuilds an independent model
that continues the original's trajectory bit for bit.  Reconstruction
is exact: the restored model's future draw sequence is the same one
the snapshotted model would have produced.

Supported models are the ones cloud providers hand out
(:class:`~repro.netmodel.token_bucket.TokenBucketModel`,
:class:`~repro.netmodel.percore.PerCoreQosModel`,
:class:`~repro.netmodel.stochastic.UniformQuantileSamplingModel`,
:class:`~repro.netmodel.stochastic.Ar1QuantileModel`) plus
:class:`~repro.netmodel.base.ConstantRateModel`; anything else raises
a :class:`TypeError` naming the model, so an unsupported chain fails
loudly at snapshot time rather than resuming from half a state.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Mapping

import numpy as np

from repro.netmodel.base import ConstantRateModel, LinkModel
from repro.netmodel.distributions import QuantileDistribution
from repro.netmodel.percore import PerCoreQosModel
from repro.netmodel.stochastic import (
    Ar1QuantileModel,
    UniformQuantileSamplingModel,
)
from repro.netmodel.token_bucket import TokenBucketModel, TokenBucketParams

__all__ = ["model_state_dict", "model_from_state"]


def _dist_to_json(dist: QuantileDistribution) -> dict:
    return {"probs": list(dist.probs), "values": list(dist.values)}


def _dist_from_json(payload: Mapping) -> QuantileDistribution:
    return QuantileDistribution(
        probs=tuple(payload["probs"]), values=tuple(payload["values"])
    )


def _rng_state(rng: np.random.Generator) -> dict:
    # The bit-generator state is a plain dict of ints/strings; Python's
    # json handles the 128-bit PCG64 integers natively.
    return rng.bit_generator.state


def _restore_rng(rng: np.random.Generator, state: Mapping) -> None:
    rng.bit_generator.state = dict(state)


def model_state_dict(model: LinkModel) -> dict:
    """Full JSON snapshot of a link model (parameters + dynamic state)."""
    if type(model) is TokenBucketModel:
        return {
            "kind": "token_bucket",
            "params": asdict(model.params),
            "budget_gbit": float(model.budget_gbit),
            "throttled": bool(model.throttled),
        }
    if type(model) is ConstantRateModel:
        return {"kind": "constant", "rate_gbps": float(model.limit())}
    if type(model) is PerCoreQosModel:
        return {
            "kind": "percore_qos",
            "cores": model.cores,
            "per_core_gbps": model.per_core_gbps,
            "warm_efficiency": _dist_to_json(model.warm_efficiency),
            "cold_efficiency": _dist_to_json(model.cold_efficiency),
            "ramp_s": model.ramp_s,
            "idle_reset_s": model.idle_reset_s,
            "interval_s": model.interval_s,
            "seed": model._seed,
            "stream_age": model._stream_age,
            "idle_time": model._idle_time,
            "elapsed_in_interval": model._elapsed_in_interval,
            "efficiency": model._efficiency,
            "rng": _rng_state(model._rng),
        }
    if type(model) is UniformQuantileSamplingModel:
        return {
            "kind": "uniform_sampling",
            "distribution": _dist_to_json(model.distribution),
            "interval_s": model._interval,
            "seed": model._seed,
            "elapsed": model._elapsed_in_interval,
            "current": model._current,
            "rng": _rng_state(model._rng),
        }
    if type(model) is Ar1QuantileModel:
        return {
            "kind": "ar1",
            "distribution": _dist_to_json(model.distribution),
            "interval_s": model._interval,
            "phi": model.phi,
            "seed": model._seed,
            "elapsed": model._elapsed_in_interval,
            "current": model._current,
            "z": model._z,
            "rng": _rng_state(model._rng),
        }
    raise TypeError(
        f"cannot snapshot link model {model!r}: no state codec for "
        f"{type(model).__name__} (warm-fabric chains support the "
        "provider-issued model types)"
    )


def model_from_state(state: Mapping[str, Any]) -> LinkModel:
    """Rebuild a link model from :func:`model_state_dict` output."""
    kind = state.get("kind")
    if kind == "token_bucket":
        model = TokenBucketModel(TokenBucketParams(**state["params"]))
        # set_budget applies resume-threshold hysteresis; the snapshot
        # is authoritative, so restore the raw tier flag directly.
        model._budget = float(state["budget_gbit"])
        model._throttled = bool(state["throttled"])
        return model
    if kind == "constant":
        return ConstantRateModel(state["rate_gbps"])
    if kind == "percore_qos":
        model = PerCoreQosModel(
            cores=int(state["cores"]),
            per_core_gbps=float(state["per_core_gbps"]),
            warm_efficiency=_dist_from_json(state["warm_efficiency"]),
            cold_efficiency=_dist_from_json(state["cold_efficiency"]),
            ramp_s=float(state["ramp_s"]),
            idle_reset_s=float(state["idle_reset_s"]),
            interval_s=float(state["interval_s"]),
            seed=state["seed"],
        )
        model._stream_age = float(state["stream_age"])
        model._idle_time = float(state["idle_time"])
        model._elapsed_in_interval = float(state["elapsed_in_interval"])
        model._efficiency = float(state["efficiency"])
        _restore_rng(model._rng, state["rng"])
        return model
    if kind == "uniform_sampling":
        model = UniformQuantileSamplingModel(
            _dist_from_json(state["distribution"]),
            interval_s=float(state["interval_s"]),
            seed=state["seed"],
        )
        model._elapsed_in_interval = float(state["elapsed"])
        model._current = float(state["current"])
        _restore_rng(model._rng, state["rng"])
        return model
    if kind == "ar1":
        model = Ar1QuantileModel(
            _dist_from_json(state["distribution"]),
            interval_s=float(state["interval_s"]),
            phi=float(state["phi"]),
            seed=state["seed"],
        )
        model._elapsed_in_interval = float(state["elapsed"])
        model._current = float(state["current"])
        model._z = float(state["z"])
        _restore_rng(model._rng, state["rng"])
        return model
    raise ValueError(f"unknown link-model state kind {kind!r}")
