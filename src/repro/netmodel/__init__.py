"""Generative models of cloud network behaviour.

Section 3 of the paper characterizes three very different clouds:

* **Amazon EC2** — a token-bucket traffic shaper per VM: full line rate
  (10 Gbps on c5.xlarge) until a budget empties after ~10 minutes, then
  a hard cap (1 Gbps) with a ~1 Gbit/s replenish rate
  (:mod:`repro.netmodel.token_bucket`);
* **Google Cloud** — per-core bandwidth QoS (2 Gbps/core) with
  access-pattern-dependent variability: steady flows are stable, bursty
  flows see a long lower tail (:mod:`repro.netmodel.percore`);
* **HPCCloud** — a small private cloud with no QoS enforcement where
  noisy neighbours produce stochastic, autocorrelated variability
  (:mod:`repro.netmodel.stochastic`).

:mod:`repro.netmodel.distributions` provides quantile-parameterized
distributions (used for the Ballani A-H clouds of Figure 2), and
:mod:`repro.netmodel.nic` / :mod:`repro.netmodel.latency` model the
virtual-NIC implementation differences behind Figures 7, 8 and 12.

All models implement the :class:`repro.netmodel.base.LinkModel`
interface so the emulator, measurement probes, and cluster simulator
can drive any of them interchangeably.  For whole-cluster simulation,
:mod:`repro.netmodel.fleet` batches N links into one
:class:`~repro.netmodel.fleet.LinkModelFleet` with struct-of-arrays
state (vectorized limit/horizon/advance; the scalar objects remain
live views into the fleet), falling back to a per-model
:class:`~repro.netmodel.fleet.ScalarFleetAdapter` loop for
heterogeneous or custom models.
"""

from repro.netmodel.base import (
    ConstantRateModel,
    LinkModel,
    integrate_transfer,
)
from repro.netmodel.fleet import (
    ConstantRateFleet,
    LinkModelFleet,
    PerCoreQosFleet,
    ResamplingFleet,
    ScalarFleetAdapter,
    TokenBucketFleet,
    build_fleet,
)
from repro.netmodel.cpu_bucket import CpuBucketParams, CpuTokenBucket
from repro.netmodel.distributions import QuantileDistribution
from repro.netmodel.latency import Ec2LatencyModel, GceLatencyModel, LatencyModel
from repro.netmodel.nic import NicBehavior, VirtualNic, WriteSizeEffect
from repro.netmodel.percore import PerCoreQosModel
from repro.netmodel.state import model_from_state, model_state_dict
from repro.netmodel.stochastic import (
    Ar1QuantileModel,
    UniformQuantileSamplingModel,
)
from repro.netmodel.token_bucket import TokenBucketModel, TokenBucketParams

__all__ = [
    "LinkModel",
    "model_state_dict",
    "model_from_state",
    "ConstantRateModel",
    "integrate_transfer",
    "LinkModelFleet",
    "TokenBucketFleet",
    "ConstantRateFleet",
    "ResamplingFleet",
    "PerCoreQosFleet",
    "ScalarFleetAdapter",
    "build_fleet",
    "TokenBucketModel",
    "TokenBucketParams",
    "CpuTokenBucket",
    "CpuBucketParams",
    "PerCoreQosModel",
    "Ar1QuantileModel",
    "UniformQuantileSamplingModel",
    "QuantileDistribution",
    "VirtualNic",
    "NicBehavior",
    "WriteSizeEffect",
    "LatencyModel",
    "Ec2LatencyModel",
    "GceLatencyModel",
]
