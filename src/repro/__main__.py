"""``python -m repro`` — regenerate the paper's artifacts."""

from repro.cli import main

raise SystemExit(main())
