"""Time-series containers for measurement data.

Section 3 of the paper reduces 21 weeks of iperf output to sequences of
10-second bandwidth averages, per-packet RTT samples, and per-interval
retransmission counts.  The containers here hold exactly those shapes
and provide the summary statistics the paper plots (IQR boxes with
1st/99th-percentile whiskers, CDFs, coefficients of variation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "TimeSeries",
    "BandwidthTrace",
    "RttTrace",
    "BoxSummary",
    "summarize_box",
]


@dataclass(frozen=True)
class BoxSummary:
    """Box-and-whiskers summary used throughout the paper's figures.

    The paper's boxes show the interquartile range with whiskers at the
    1st and 99th percentiles (Figures 2, 4, 5, 9, 16, 17); ``p999``
    extends the summary into the tail the observability layer tracks
    (its whiskers and IQR are unchanged).
    """

    p01: float
    p25: float
    p50: float
    p75: float
    p99: float
    p999: float

    @property
    def iqr(self) -> float:
        """Interquartile range (p75 - p25)."""
        return self.p75 - self.p25

    @property
    def whisker_span(self) -> float:
        """Span between the 1st and 99th percentile whiskers."""
        return self.p99 - self.p01

    def as_dict(self) -> dict[str, float]:
        """Return the summary percentiles keyed by name."""
        return {
            "p01": self.p01,
            "p25": self.p25,
            "p50": self.p50,
            "p75": self.p75,
            "p99": self.p99,
            "p999": self.p999,
        }


def summarize_box(values: Sequence[float] | np.ndarray) -> BoxSummary:
    """Compute the paper's box-plot summary for ``values``.

    Raises :class:`ValueError` on empty input because a box plot of
    nothing is a bug in the caller, not a degenerate summary.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    p01, p25, p50, p75, p99, p999 = np.percentile(
        arr, [1, 25, 50, 75, 99, 99.9]
    )
    return BoxSummary(p01=p01, p25=p25, p50=p50, p75=p75, p99=p99, p999=p999)


@dataclass
class TimeSeries:
    """A sampled time series: times in seconds, values in caller units."""

    times: np.ndarray
    values: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.shape != self.values.shape:
            raise ValueError(
                f"times and values must align: {self.times.shape} != {self.values.shape}"
            )

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def duration(self) -> float:
        """Span between the first and last sample timestamps."""
        if len(self) == 0:
            return 0.0
        return float(self.times[-1] - self.times[0])

    def mean(self) -> float:
        """Arithmetic mean of the sample values."""
        return float(np.mean(self.values))

    def median(self) -> float:
        """Median of the sample values."""
        return float(np.median(self.values))

    def percentile(self, q: float | Sequence[float]):
        """Percentile(s) of the sample values."""
        result = np.percentile(self.values, q)
        if np.isscalar(q):
            return float(result)
        return np.asarray(result, dtype=float)

    def box_summary(self) -> BoxSummary:
        """The paper's IQR-box summary of this series."""
        return summarize_box(self.values)

    def coefficient_of_variation(self) -> float:
        """Std/mean of the values, as plotted in Figure 6 (right)."""
        mean = np.mean(self.values)
        if mean == 0:
            raise ValueError("coefficient of variation undefined for zero mean")
        return float(np.std(self.values) / mean)

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF as ``(sorted_values, cumulative_probabilities)``."""
        ordered = np.sort(self.values)
        probs = np.arange(1, ordered.size + 1) / ordered.size
        return ordered, probs

    def consecutive_relative_change(self) -> np.ndarray:
        """|v[i+1]-v[i]| / v[i] for each consecutive pair.

        Section 3.1 reports this "measurement-to-measurement" variability:
        up to 33 % for HPCCloud full-speed and 114 % for GCE 5-30.
        """
        if len(self) < 2:
            return np.empty(0)
        prev = self.values[:-1]
        nxt = self.values[1:]
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.abs(nxt - prev) / np.abs(prev)
        return rel[np.isfinite(rel)]

    def resample_medians(self, window_s: float) -> "TimeSeries":
        """Median of values in consecutive windows of ``window_s`` seconds.

        Implements the discretization advice in F5.4: gather the median of
        each (for example) one-hour interval and analyze those medians.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if len(self) == 0:
            return TimeSeries(np.empty(0), np.empty(0), label=self.label)
        start = self.times[0]
        bins = np.floor((self.times - start) / window_s).astype(int)
        out_times = []
        out_values = []
        for b in np.unique(bins):
            mask = bins == b
            out_times.append(start + (b + 0.5) * window_s)
            out_values.append(float(np.median(self.values[mask])))
        return TimeSeries(np.array(out_times), np.array(out_values), label=self.label)

    def slice_time(self, t_start: float, t_end: float) -> "TimeSeries":
        """Samples with ``t_start <= t < t_end``."""
        mask = (self.times >= t_start) & (self.times < t_end)
        return TimeSeries(self.times[mask], self.values[mask], label=self.label)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "label": self.label,
            "times": self.times.tolist(),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TimeSeries":
        """Inverse of :meth:`to_dict`."""
        return cls(
            times=np.asarray(payload["times"], dtype=float),
            values=np.asarray(payload["values"], dtype=float),
            label=str(payload.get("label", "")),
        )

    def save(self, path: str | Path) -> None:
        """Persist the series as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "TimeSeries":
        """Load a series saved with :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass
class BandwidthTrace(TimeSeries):
    """Bandwidth samples in Gbps, optionally with retransmission counts.

    One element per reporting window (10 s in the paper, except the
    final window of a shorter burst); this is the shape behind Figures
    4, 5, 6, 10 and the retransmission analysis in Figure 9.
    ``durations`` records how many transmitting seconds each sample
    covers so traffic totals are exact for bursty patterns.
    """

    retransmissions: np.ndarray = field(default_factory=lambda: np.empty(0))
    durations: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        super().__post_init__()
        self.retransmissions = np.asarray(self.retransmissions, dtype=float)
        if self.retransmissions.size == 0:
            self.retransmissions = np.zeros_like(self.values)
        if self.retransmissions.shape != self.values.shape:
            raise ValueError("retransmissions must align with values")
        self.durations = np.asarray(self.durations, dtype=float)
        if self.durations.size == 0:
            self.durations = np.full_like(self.values, 10.0)
        if self.durations.shape != self.values.shape:
            raise ValueError("durations must align with values")

    @property
    def bandwidth_gbps(self) -> np.ndarray:
        """Alias for :attr:`values` to make call sites self-documenting."""
        return self.values

    def total_traffic_gbit(self) -> float:
        """Total data transferred across all reporting windows."""
        return float(np.sum(self.values * self.durations))

    def cumulative_traffic_gbit(self) -> np.ndarray:
        """Running total of transferred data per sample (Figure 10)."""
        return np.cumsum(self.values * self.durations)

    def total_retransmissions(self) -> float:
        """Sum of retransmission counts over the trace."""
        return float(np.sum(self.retransmissions))

    def to_dict(self) -> dict:
        payload = super().to_dict()
        payload["retransmissions"] = self.retransmissions.tolist()
        payload["durations"] = self.durations.tolist()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BandwidthTrace":
        return cls(
            times=np.asarray(payload["times"], dtype=float),
            values=np.asarray(payload["values"], dtype=float),
            label=str(payload.get("label", "")),
            retransmissions=np.asarray(
                payload.get("retransmissions", []), dtype=float
            ),
            durations=np.asarray(payload.get("durations", []), dtype=float),
        )


@dataclass
class RttTrace(TimeSeries):
    """Per-packet RTT samples in milliseconds (Figures 7, 8, 12).

    ``times`` holds send timestamps; ``values`` holds observed RTTs.
    """

    @property
    def rtt_ms(self) -> np.ndarray:
        """Alias for :attr:`values`."""
        return self.values

    def tail_latency_ms(self, q: float = 99.0) -> float:
        """The ``q``-th percentile RTT."""
        return float(np.percentile(self.values, q))


def concat_series(parts: Iterable[TimeSeries], label: str = "") -> TimeSeries:
    """Concatenate several time series into one, preserving order."""
    parts = list(parts)
    if not parts:
        return TimeSeries(np.empty(0), np.empty(0), label=label)
    times = np.concatenate([p.times for p in parts])
    values = np.concatenate([p.values for p in parts])
    return TimeSeries(times, values, label=label)
