"""Seeded fault injection for the campaign fabric.

The fault-tolerance claims of :mod:`repro.runtime.coordinator` are
only credible if something actually kills workers — this module is the
something.  It injects faults at the two seams where real campaigns
die: *cell execution* (a worker SIGKILLed mid-matrix, a poison cell
that crashes every process that touches it, a pathologically slow
machine) and *store persistence* (a SIGKILL between an artifact's
document writes and its manifest entry — the window the store's write
ordering promises to survive).

Activation is environment-driven so the faults cross process
boundaries the same way campaigns do: point ``REPRO_CHAOS`` at a JSON
config file and every worker — CLI subprocess, in-process
``run_manifest`` call, or pool child — arms itself from it.  Nothing
in the config reaches cell payloads, so cell keys, store documents,
and content hashes are byte-identical with chaos on or off; a
chaos-interrupted campaign must *converge* to the unperturbed store,
which is exactly what the test suite and the CI chaos job assert.

Config file shape (all fault fields optional)::

    {
      "schema": 1,
      "state_dir": "chaos-state",              # fault bookkeeping dir
      "only_worker": "w0",                     # faults only in this worker
      "kill_at_cell": {"index": 2, "times": 1},# SIGKILL at Nth executed cell
      "kill_in_put": {"key": "scn-..", "times": 1},  # SIGKILL mid-put
      "poison_keys": ["scn-.."],               # always raise (quarantine path)
      "flaky": {"scn-..": 2},                  # fail first N attempts, then ok
      "slow_keys": {"scn-..": 1.5},            # sleep before these cells
      "slow_cell_s": 0.0,                      # sleep before every cell
      "transport": {                           # faults on store sync traffic
        "truncate_upload": {"times": 1},       # upload lands half its bytes
        "bit_flip": {"times": 1},              # read returns a flipped bit
        "drop_at_document": {"index": 2, "times": 1},  # Nth transfer errors
        "stall": {"delay_s": 0.5, "times": 1}  # op sleeps / times out
      }
    }

``state_dir`` holds one marker file per consumed fault (claimed with
``O_EXCL``, so concurrent workers race for each kill exactly once) and
the attempt counters behind ``flaky``; it is how "kill once, then let
the resume succeed" survives worker relaunches.  ``kill_at_cell``
counts cells *executed by the current process* — after a resume,
cached cells are not executed, so index 0 is the first recomputed
cell.  ``only_worker`` matches the ``REPRO_CHAOS_WORKER`` environment
variable, which the coordinator sets to each worker's id.

The module also ships the *demo campaign* used by the chaos test
suite, the CI chaos job's example, and
``examples/fault_tolerant_campaign.py``: :func:`demo_cell` is a cheap
deterministic cell function (optionally chained and optionally
sleeping, so steal/straggler scenarios need no simulator time), with
:func:`demo_codec` / :func:`demo_matrix` building runnable matrices.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.runtime.cell import Cell
from repro.runtime.store import ArtifactStore

__all__ = [
    "CHAOS_ENV",
    "CHAOS_WORKER_ENV",
    "ChaosFlakyError",
    "ChaosPoisonError",
    "ChaosInjector",
    "active_injector",
    "deactivate",
    "demo_cell",
    "demo_codec",
    "demo_matrix",
    "encode_demo_result",
    "decode_demo_result",
]

#: Environment variable naming the chaos config file; unset = no chaos.
CHAOS_ENV = "REPRO_CHAOS"

#: Environment variable carrying the current worker's id (set by the
#: coordinator) so ``only_worker`` configs can target one worker.
CHAOS_WORKER_ENV = "REPRO_CHAOS_WORKER"


class ChaosPoisonError(RuntimeError):
    """An injected poison cell: fails on every attempt, forever."""


class ChaosFlakyError(RuntimeError):
    """An injected transient failure: fails N times, then succeeds."""


@dataclass
class ChaosInjector:
    """One armed fault configuration, applied at the runtime's seams."""

    config_path: str
    state_dir: Path | None = None
    only_worker: str | None = None
    kill_at_cell: dict | None = None
    kill_in_put: dict | None = None
    poison_keys: frozenset = frozenset()
    flaky: dict[str, int] = field(default_factory=dict)
    slow_keys: dict[str, float] = field(default_factory=dict)
    slow_cell_s: float = 0.0
    transport: dict | None = None
    _n_executed: int = 0

    @classmethod
    def from_file(cls, path: str | Path) -> "ChaosInjector":
        config = json.loads(Path(path).read_text())
        if not isinstance(config, Mapping):
            raise ValueError(f"chaos config {path} must be a JSON object")
        schema = config.get("schema", 1)
        if schema != 1:
            raise ValueError(f"chaos config {path} has unknown schema {schema!r}")
        state_dir = config.get("state_dir")
        injector = cls(
            config_path=str(path),
            state_dir=Path(state_dir) if state_dir else None,
            only_worker=config.get("only_worker"),
            kill_at_cell=config.get("kill_at_cell"),
            kill_in_put=config.get("kill_in_put"),
            poison_keys=frozenset(config.get("poison_keys", ())),
            flaky={k: int(v) for k, v in dict(config.get("flaky", {})).items()},
            slow_keys={
                k: float(v)
                for k, v in dict(config.get("slow_keys", {})).items()
            },
            slow_cell_s=float(config.get("slow_cell_s", 0.0)),
            transport=config.get("transport"),
        )
        if injector.transport is not None and not isinstance(
            injector.transport, Mapping
        ):
            raise ValueError(
                f"chaos config {path} 'transport' must be a JSON object"
            )
        needs_state = (
            injector.kill_at_cell
            or injector.kill_in_put
            or injector.flaky
            or injector.transport
        )
        if needs_state and injector.state_dir is None:
            raise ValueError(
                f"chaos config {path} uses kill/flaky faults but names no "
                "'state_dir' to track which faults have fired"
            )
        return injector

    # -- bookkeeping -------------------------------------------------------
    def _applies(self) -> bool:
        if self.only_worker is None:
            return True
        return os.environ.get(CHAOS_WORKER_ENV) == self.only_worker

    def _claim(self, tag: str, times: int) -> bool:
        """Atomically claim one of ``times`` firings of fault ``tag``.

        One ``O_EXCL``-created marker file per firing: the first
        process to create ``<tag>.<i>`` owns that firing, so a fault
        configured ``times: 1`` fires exactly once across every worker
        launch, relaunch, and pool child that shares the state dir.
        """
        assert self.state_dir is not None
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for i in range(max(0, int(times))):
            try:
                fd = os.open(
                    self.state_dir / f"{tag}.{i}",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    @staticmethod
    def _die() -> None:  # pragma: no cover - the process does not return
        os.kill(os.getpid(), signal.SIGKILL)

    # -- the seams ---------------------------------------------------------
    def before_cell(self, key: str) -> None:
        """Called by executors just before a cell runs."""
        if not self._applies():
            return
        index = self._n_executed
        self._n_executed += 1
        delay = self.slow_cell_s + self.slow_keys.get(key, 0.0)
        if delay > 0:
            time.sleep(delay)
        ka = self.kill_at_cell
        if (
            ka is not None
            and index == int(ka.get("index", -1))
            and self._claim("kill_at_cell", int(ka.get("times", 1)))
        ):
            self._die()
        limit = self.flaky.get(key)
        if limit is not None and self._claim(
            f"flaky.{_key_tag(key)}", limit
        ):
            raise ChaosFlakyError(
                f"chaos: transient failure injected into cell {key!r}"
            )
        if key in self.poison_keys:
            raise ChaosPoisonError(
                f"chaos: poison cell {key!r} kills every attempt"
            )

    def mid_put(self, key: str) -> None:
        """Called by :meth:`ArtifactStore.put` between documents and manifest."""
        if not self._applies():
            return
        kp = self.kill_in_put
        if (
            kp is not None
            and key == kp.get("key")
            and self._claim("kill_in_put", int(kp.get("times", 1)))
        ):
            self._die()

    def wrap_transport(self, transport):
        """Wrap a transport in the configured faults, or return ``None``.

        Called by :func:`repro.runtime.remote.open_transport` on every
        transport the fabric opens, so ``REPRO_CHAOS`` reaches sync
        traffic in worker subprocesses exactly like it reaches cell
        execution.  Firings are claimed through :meth:`_claim`'s
        ``O_EXCL`` markers, so ``times: N`` holds across every process
        sharing the state dir.
        """
        faults = self.transport
        if not faults or not self._applies():
            return None
        from repro.runtime.remote import FaultyTransport

        def section(name: str) -> Mapping:
            value = faults.get(name) or {}
            if not isinstance(value, Mapping):
                raise ValueError(
                    f"chaos transport fault {name!r} must be a JSON object"
                )
            return value

        drop = section("drop_at_document")
        stall = section("stall")
        return FaultyTransport(
            transport,
            truncate_upload=int(section("truncate_upload").get("times", 0)),
            bit_flip=int(section("bit_flip").get("times", 0)),
            drop_at_document=(
                int(drop["index"]) if "index" in drop else None
            ),
            drop_times=int(drop.get("times", 1)),
            stall_s=float(stall.get("delay_s", 0.0)),
            stall_times=int(stall.get("times", 1)),
            claim=self._claim,
        )

    def install(self) -> None:
        ArtifactStore._chaos_put_hook = self.mid_put

    def uninstall(self) -> None:
        if ArtifactStore._chaos_put_hook == self.mid_put:
            ArtifactStore._chaos_put_hook = None


_active: ChaosInjector | None = None


def active_injector() -> ChaosInjector | None:
    """The armed injector per the environment, or ``None`` (the default).

    Cheap when chaos is off — one environment lookup — so executors can
    call it before every cell.  Re-reads the config when the variable
    changes and disarms when it disappears, so in-process tests can
    flip chaos on and off without leaking the store's put hook.
    """
    global _active
    path = os.environ.get(CHAOS_ENV)
    if not path:
        if _active is not None:
            deactivate()
        return None
    if _active is None or _active.config_path != path:
        deactivate()
        injector = ChaosInjector.from_file(path)
        injector.install()
        _active = injector
    return _active


def deactivate() -> None:
    """Disarm chaos in this process (tests; env removal does it too)."""
    global _active
    if _active is not None:
        _active.uninstall()
        _active = None


# -- the demo campaign -----------------------------------------------------

#: Import reference executors use to run demo cells from manifests.
DEMO_CELL_REF = "repro.runtime.chaos:demo_cell"


def demo_cell(payload: Mapping, upstream: Any = None) -> dict:
    """A cheap, pure, optionally chained cell for fault-injection tests.

    The result is a deterministic function of ``payload["seed"]`` (plus
    the chained predecessor's accumulator), so chaos-interrupted runs
    can be checked byte-for-byte against unperturbed ones without
    paying for simulator time.  ``payload["sleep_s"]`` burns wall-clock
    without touching the result — the knob steal/straggler scenarios
    turn.  Exposes ``n_steps`` so provenance and status plumbing see a
    step count, like real simulator cells.
    """
    seed = int(payload["seed"])
    sleep_s = float(payload.get("sleep_s", 0.0))
    if sleep_s > 0:
        time.sleep(sleep_s)
    value = (seed * 2654435761 + 40503) % 1000003
    acc = value + (int(upstream["acc"]) if upstream is not None else 0)
    return {"seed": seed, "value": value, "acc": acc, "n_steps": seed % 7 + 1}


def encode_demo_result(result: Mapping) -> tuple[dict, dict]:
    return {"result": dict(result)}, {}


def decode_demo_result(cell: Cell, documents: Mapping) -> dict:
    return dict(documents["result"])


def demo_codec():
    """The demo cells' :class:`~repro.runtime.campaign.ArtifactCodec`."""
    # Imported here, not at module top: campaign imports executors,
    # which consult this module per cell.
    from repro.runtime.campaign import ArtifactCodec

    return ArtifactCodec(
        encode_ref="repro.runtime.chaos:encode_demo_result",
        decode_ref="repro.runtime.chaos:decode_demo_result",
    )


def demo_matrix(
    n_chains: int = 3,
    chain_len: int = 2,
    seed: int = 0,
    sleep_s: float = 0.0,
) -> list[Cell]:
    """``n_chains`` warm-style chains of ``chain_len`` demo cells each."""
    cells: list[Cell] = []
    for chain in range(n_chains):
        previous: str | None = None
        for link in range(chain_len):
            payload: dict = {"seed": seed * 1000 + chain * 10 + link}
            if sleep_s > 0:
                payload["sleep_s"] = sleep_s
            cell = Cell(fn=DEMO_CELL_REF, payload=payload, after=previous)
            cells.append(cell)
            previous = cell.key
    return cells


def _key_tag(key: str) -> str:
    """A filesystem-safe short tag for per-key fault state files."""
    return hashlib.sha256(key.encode()).hexdigest()[:16]
