"""Fault-tolerant campaign coordination: leases, supervision, stealing.

:func:`run_manifest` made a single shard crash-*resumable*; this module
makes a whole campaign crash-*tolerant*.  ``repro campaign run`` drives
one supervisor process (:func:`run_campaign`) that launches a worker
subprocess per shard manifest and then treats every worker as
expendable:

* **Leases + heartbeats** — each worker holds a lease file next to its
  manifest (``shard-0.json`` ⇄ ``shard-0.lease.json``), atomically
  acquired under an ``flock`` and renewed by a heartbeat thread every
  few seconds.  A lease that stops being renewed is the coordinator's
  death signal — it needs no pipe, signal handler, or cooperation from
  the (possibly SIGKILLed) worker.  A worker whose own renewal fails
  (the coordinator declared it dead and re-leased the shard) aborts
  between cells rather than keep writing to a store it no longer owns.
* **Retries with backoff + quarantine** — a dead or failing worker is
  relaunched with exponential backoff and deterministic jitter; the
  *blamed* cell (the first unfinished one in manifest order — exact,
  because workers execute serially in manifest order) gets one retry
  charged.  A cell that exhausts ``max_retries`` is *quarantined*:
  revoked from the shard, recorded in the shard store's
  ``failures.json`` with its chained successors as ``blocked``
  casualties, and the campaign continues without it — one poison cell
  costs its chain, never the campaign.
* **Work stealing** — a worker whose shard is finished steals roughly
  half of the *pending whole chains* from the busiest live shard:
  the stolen keys are appended to the victim's revocation sidecar
  (the victim's worker skips them at its next cell boundary) and the
  thief executes them from a derived steal manifest into its own
  store.  Because cells are pure and content-keyed, even a race that
  computes a chain twice merges to byte-identical artifacts — stealing
  is an optimisation that cannot corrupt results.

Completion is judged against content, not process exit codes: the
campaign is done when every manifest cell key is present in the union
of the shard stores or quarantined/blocked, after which the stores are
merged (refusing partial results unless ``allow_partial``).  Combined
with :mod:`repro.runtime.chaos`, the invariant under test everywhere
is *convergence*: kill workers wherever you like and the merged store
hash equals the serial run's.

The supervisor narrates through ``component=coordinator`` structured
log lines and counts failure-path events (worker deaths, retries,
reassignments, steals, quarantines) in a
:class:`~repro.obs.metrics.MetricsRegistry`; a healthy campaign emits
none of them.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.logging import StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.runtime import chaos
from repro.runtime.cell import Cell
from repro.runtime.executors import cell_components
from repro.runtime.remote import RemoteStore, RetryPolicy, open_transport
from repro.runtime.store import ArtifactStore, atomic_write_text
from repro.runtime.worker import (
    FAILURES_NAME,
    MANIFEST_SCHEMA,
    merge_stores,
    read_revoked,
    read_shard_manifest,
    write_failures,
    write_revoked,
)

__all__ = [
    "LEASE_SCHEMA",
    "LeaseLostError",
    "lease_path_for",
    "read_lease",
    "lease_expired",
    "acquire_lease",
    "renew_lease",
    "release_lease",
    "LeaseHeartbeat",
    "run_campaign",
]

LEASE_SCHEMA = 1

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None


class LeaseLostError(RuntimeError):
    """A lease operation found the lease held (or taken) by someone else.

    On acquire: another worker holds an unexpired lease.  On renew: the
    lease file no longer carries our token — the coordinator declared
    us dead and handed the shard to a successor.  Either way the right
    response is to stop touching the shard (worker exit code 3).
    """


def lease_path_for(manifest_path: str | Path) -> Path:
    """The lease file paired with a shard manifest.

    ``shards/shard-0.json`` pairs with ``shards/shard-0.lease.json`` —
    next to the manifest, where ``repro campaign status`` can read
    worker liveness without any coordinator state.
    """
    path = Path(manifest_path)
    stem = path.name
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    return path.with_name(stem + ".lease.json")


@contextmanager
def _lease_lock(lease_path: Path):
    """``flock`` serializing read-modify-writes of one lease file."""
    lease_path.parent.mkdir(parents=True, exist_ok=True)
    lock_path = lease_path.with_name(lease_path.name + ".lock")
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield
        return
    fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def read_lease(path: str | Path) -> dict | None:
    """The lease record, or ``None`` when no lease file exists."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except ValueError:
        # A torn lease (we crashed mid-rename on a filesystem without
        # atomic rename) reads as "no lease": safe, because the worst
        # case is an extra worker racing on a content-addressed store.
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def lease_expired(
    lease: dict, now: float | None = None, skew_s: float = 0.0
) -> bool:
    """True when the lease's last renewal is older than its TTL.

    ``skew_s`` is a grace margin for readers on a *different* clock
    than the renewing worker — a slowly-synced shared filesystem or a
    fleet without tight NTP.  A lease is only declared expired once it
    is ``skew_s`` past its TTL, trading slower death detection for
    never fencing a live worker over clock disagreement.  The default
    ``0.0`` preserves same-machine behavior exactly.
    """
    if now is None:
        now = time.time()
    renewed = float(lease.get("renewed_unix_s", 0.0))
    ttl = float(lease.get("ttl_s", 0.0))
    return now > renewed + ttl + max(0.0, skew_s)


def acquire_lease(
    path: str | Path,
    worker_id: str,
    ttl_s: float,
    now: float | None = None,
) -> dict:
    """Atomically claim a shard lease, refusing live foreign leases.

    Returns the written lease record (its ``token`` authenticates every
    later renew/release).  An unexpired lease held by another worker
    raises :class:`LeaseLostError`; an *expired* one is taken over —
    that is exactly the coordinator's reassignment path.
    """
    path = Path(path)
    if now is None:
        now = time.time()
    if ttl_s <= 0:
        raise ValueError("lease ttl_s must be > 0")
    with _lease_lock(path):
        current = read_lease(path)
        if (
            current is not None
            and not lease_expired(current, now)
            and current.get("worker_id") != worker_id
        ):
            raise LeaseLostError(
                f"lease {path} is held by {current.get('worker_id')!r} "
                f"(renewed {now - float(current.get('renewed_unix_s', 0.0)):.1f}s "
                f"ago, ttl {current.get('ttl_s')}s)"
            )
        lease = {
            "schema": LEASE_SCHEMA,
            "worker_id": worker_id,
            "pid": os.getpid(),
            "token": os.urandom(8).hex(),
            "acquired_unix_s": now,
            "renewed_unix_s": now,
            "ttl_s": float(ttl_s),
        }
        atomic_write_text(path, json.dumps(lease, indent=2) + "\n")
    return lease


def renew_lease(
    path: str | Path, token: str, now: float | None = None
) -> dict:
    """Refresh a lease's heartbeat; :class:`LeaseLostError` if usurped.

    The token check is the fencing rule: a worker that was declared
    dead (its lease re-acquired by a successor) finds a foreign token
    and learns — at its next heartbeat — that it must stop.
    """
    path = Path(path)
    if now is None:
        now = time.time()
    with _lease_lock(path):
        current = read_lease(path)
        if current is None or current.get("token") != token:
            raise LeaseLostError(
                f"lease {path} no longer carries our token — the shard "
                "was reassigned"
            )
        current["renewed_unix_s"] = now
        atomic_write_text(path, json.dumps(current, indent=2) + "\n")
    return current


def release_lease(path: str | Path, token: str) -> None:
    """Drop a lease we hold; silently a no-op if already usurped."""
    path = Path(path)
    with _lease_lock(path):
        current = read_lease(path)
        if current is not None and current.get("token") == token:
            path.unlink(missing_ok=True)


class LeaseHeartbeat:
    """Daemon thread renewing a lease until stopped — or fenced off.

    ``lost`` flips to True (permanently) the moment a renewal fails,
    which the worker wires into ``run_manifest(should_stop=...)`` so a
    fenced-off worker abandons its shard at the next cell boundary.
    """

    def __init__(
        self,
        path: str | Path,
        token: str,
        interval_s: float,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval_s must be > 0")
        self.path = Path(path)
        self.token = token
        self.interval_s = interval_s
        self._on_error = on_error
        self._stop = threading.Event()
        self._lost = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="lease-heartbeat", daemon=True
        )

    @property
    def lost(self) -> bool:
        return self._lost.is_set()

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=max(1.0, 2 * self.interval_s))

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                renew_lease(self.path, self.token)
            except (LeaseLostError, OSError) as exc:
                self._lost.set()
                if self._on_error is not None:
                    self._on_error(exc)
                return


# -- the supervisor --------------------------------------------------------


@dataclass
class _Slot:
    """One worker slot: a shard (or steal) assignment plus its process."""

    index: int
    manifest_path: Path
    store_root: Path
    cells: list[Cell]
    keys: list[str]
    lease_path: Path
    revoked_path: Path
    log_path: Path
    proc: "subprocess.Popen | None" = None
    log_fh: object = None
    worker_id: str = ""
    launches: int = 0
    deaths: int = 0
    steals: int = 0
    next_launch_unix_s: float = 0.0
    idle_logged: bool = field(default=False, repr=False)

    def assign(self, manifest_path: Path, cells: list[Cell]) -> None:
        self.manifest_path = manifest_path
        self.cells = cells
        self.keys = [cell.key for cell in cells]
        self.lease_path = lease_path_for(manifest_path)
        self.revoked_path = manifest_path.with_name(
            manifest_path.name[: -len(".json")] + ".revoked.json"
        )


def _jitter_frac(seed: int, shard: int, attempt: int) -> float:
    """Deterministic jitter in [0, 1): same campaign, same schedule.

    Delegates to :class:`repro.runtime.remote.RetryPolicy` so worker
    relaunches and transport retries draw from one jitter function —
    the equivalence is pinned in the backoff-determinism tests.
    """
    return RetryPolicy(seed=seed).jitter_frac(shard, attempt)


def _stored_keys(store_root: Path) -> set[str]:
    """Keys a shard store holds, read without scaffolding the store."""
    path = store_root / "manifest.json"
    try:
        manifest = json.loads(path.read_text())
    except (FileNotFoundError, ValueError):
        return set()
    if not isinstance(manifest, dict):
        return set()
    return set(manifest)


def _successors(key: str, cells: Sequence[Cell]) -> set[str]:
    """Keys chained (transitively) after ``key`` within ``cells``."""
    closed = {key}
    changed = True
    while changed:
        changed = False
        for cell in cells:
            if cell.key not in closed and cell.after in closed:
                closed.add(cell.key)
                changed = True
    closed.discard(key)
    return closed


def run_campaign(
    shard_dir: str | Path,
    prefix: str = "shard",
    stores: Sequence[str | Path] | None = None,
    store_root: str | Path | None = None,
    allow_partial: bool = False,
    max_retries: int = 2,
    lease_ttl_s: float = 15.0,
    heartbeat_s: float | None = None,
    poll_s: float = 0.2,
    workers_per_shard: int = 1,
    steal: bool = True,
    seed: int = 0,
    backoff_base_s: float = 0.25,
    backoff_cap_s: float = 10.0,
    max_wall_s: float | None = None,
    echo: Callable[[str], None] | None = print,
    registry: MetricsRegistry | None = None,
    python: str | None = None,
    remote_root: str | Path | None = None,
) -> dict:
    """Supervise a sharded campaign to completion despite worker deaths.

    Launches one ``python -m repro worker`` subprocess per shard
    manifest under ``shard_dir`` (each holding a heartbeat-renewed
    lease), watches leases and exit codes, relaunches dead workers with
    exponential backoff and deterministic jitter, charges each death to
    the first unfinished cell and quarantines cells that exhaust
    ``max_retries`` (chained successors become ``blocked``), and lets
    idle workers steal pending chains from the busiest live shard.

    Worker stdout/stderr streams append to ``<prefix>-<i>.worker.log``
    next to the manifests.  When every cell is stored, quarantined, or
    blocked, the shard stores are merged into ``store_root`` (if given)
    — skipped, with ``merged=None``, when failures exist and
    ``allow_partial`` is False.

    ``remote_root`` arms the sync hook: each worker pushes its shard
    store to ``<remote_root>/<prefix>-<i>-store`` as cells complete
    (through :class:`~repro.runtime.remote.RemoteStore`, so every
    transferred document is digest-verified), and before merging the
    coordinator pulls each remote shard store back into its local one
    — a digest-keyed delta that is a no-op when the link was healthy,
    and recovers anything a local store lost when it was not.  Pull
    failures degrade gracefully (the affected keys stay missing and
    are reported in ``summary["transport"]``); they never corrupt the
    merge.

    Returns a summary dict; ``summary["ok"]`` is True only for a
    campaign with zero quarantined/blocked cells.  Pass a
    ``registry`` to observe the failure-path counters
    (``repro_coordinator_worker_deaths_total`` and friends); a healthy
    campaign leaves all of them at zero and logs no failure-path
    events.
    """
    from repro.obs.status import find_shard_manifests

    shard_dir = Path(shard_dir)
    if python is None:
        python = sys.executable
    if heartbeat_s is None:
        heartbeat_s = max(0.05, lease_ttl_s / 3.0)
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    registry = registry if registry is not None else MetricsRegistry()
    log = StructuredLogger(echo=echo, component="coordinator")
    retry_policy = RetryPolicy(
        base_s=backoff_base_s, cap_s=backoff_cap_s, seed=seed
    )
    remote_root = Path(remote_root) if remote_root is not None else None
    deaths_total = registry.counter(
        "repro_coordinator_worker_deaths_total",
        "Workers declared dead (exit, signal, or expired lease)",
    )
    retries_total = registry.counter(
        "repro_coordinator_cell_retries_total",
        "Retries charged to blamed cells",
    )
    reassignments_total = registry.counter(
        "repro_coordinator_reassignments_total",
        "Shard reassignments to a replacement worker",
    )
    steals_total = registry.counter(
        "repro_coordinator_steals_total",
        "Pending-chain steals by idle workers",
    )
    poison_total = registry.counter(
        "repro_coordinator_poison_cells_total",
        "Cells quarantined after exhausting their retry budget",
    )

    found = find_shard_manifests(shard_dir, prefix)
    if stores is not None and len(stores) != len(found):
        raise ValueError(
            f"{len(found)} shard manifest(s) but {len(stores)} store "
            "path(s); pass one store per shard, in shard order"
        )
    slots: list[_Slot] = []
    manifest_meta: dict[str, object] = {}
    for position, (index, manifest_path) in enumerate(found):
        manifest = read_shard_manifest(manifest_path)
        if not manifest_meta:
            manifest_meta = {
                "encode": manifest["encode"],
                "decode": manifest.get("decode"),
                "n_shards": manifest.get("n_shards", len(found)),
            }
        cells = [Cell.from_entry(entry) for entry in manifest["cells"]]
        root = (
            Path(stores[position])
            if stores is not None
            else shard_dir / f"{prefix}-{index}-store"
        )
        slot = _Slot(
            index=index,
            manifest_path=manifest_path,
            store_root=root,
            cells=cells,
            keys=[cell.key for cell in cells],
            lease_path=lease_path_for(manifest_path),
            revoked_path=manifest_path.with_name(
                f"{prefix}-{index}.revoked.json"
            ),
            log_path=shard_dir / f"{prefix}-{index}.worker.log",
        )
        slots.append(slot)
    all_keys: set[str] = set()
    for slot in slots:
        all_keys |= set(slot.keys)

    attempts: dict[str, int] = {}
    quarantined: dict[str, dict] = {}
    blocked: set[str] = set()
    store_failures: dict[Path, dict[str, dict]] = {}
    store_blocked: dict[Path, set[str]] = {}

    def launch(slot: _Slot) -> None:
        slot.launches += 1
        slot.worker_id = f"w{slot.index}-a{slot.launches}"
        cmd = [
            python,
            "-m",
            "repro",
            "worker",
            str(slot.manifest_path),
            "--store",
            str(slot.store_root),
            "--workers",
            str(workers_per_shard),
            "--lease",
            str(slot.lease_path),
            "--worker-id",
            slot.worker_id,
            "--lease-ttl",
            str(lease_ttl_s),
            "--heartbeat",
            str(heartbeat_s),
        ]
        if remote_root is not None:
            cmd += [
                "--remote",
                str(remote_root / f"{prefix}-{slot.index}-store"),
            ]
        env = dict(os.environ)
        env[chaos.CHAOS_WORKER_ENV] = slot.worker_id
        slot.log_fh = open(slot.log_path, "a")
        slot.proc = subprocess.Popen(
            cmd, stdout=slot.log_fh, stderr=subprocess.STDOUT, env=env
        )
        slot.idle_logged = False
        log.log(
            "worker_launch",
            shard=slot.index,
            worker=slot.worker_id,
            pid=slot.proc.pid,
            manifest=slot.manifest_path.name,
            attempt=slot.launches,
        )

    def reap(slot: _Slot) -> None:
        slot.proc = None
        if slot.log_fh is not None:
            slot.log_fh.close()
            slot.log_fh = None

    def first_unfinished(slot: _Slot) -> str | None:
        """The blamed cell: serial workers die on the first pending one."""
        stored = _stored_keys(slot.store_root)
        revoked = read_revoked(slot.revoked_path)
        for key in slot.keys:
            if key not in stored and key not in revoked:
                return key
        return None

    def quarantine(slot: _Slot, key: str, note: str) -> None:
        casualties = _successors(key, slot.cells) - _stored_keys(
            slot.store_root
        )
        write_revoked(
            slot.revoked_path,
            read_revoked(slot.revoked_path) | {key} | casualties,
        )
        quarantined[key] = {
            "shard": slot.index,
            "worker": slot.worker_id,
            "attempts": attempts.get(key, 0),
            "error": note,
        }
        blocked.update(casualties)
        per_store = store_failures.setdefault(slot.store_root, {})
        per_store[key] = quarantined[key]
        store_blocked.setdefault(slot.store_root, set()).update(casualties)
        slot.store_root.mkdir(parents=True, exist_ok=True)
        write_failures(
            slot.store_root / FAILURES_NAME,
            per_store,
            blocked=store_blocked[slot.store_root],
        )
        poison_total.inc(shard=str(slot.index))
        log.log(
            "cell_quarantined",
            shard=slot.index,
            cell=key,
            attempts=attempts.get(key, 0),
            blocked=len(casualties),
            error=note,
        )

    def break_lease(slot: _Slot) -> None:
        # The worker is reaped (or killed) — it can never renew again,
        # so its lease need not age out: breaking it immediately lets
        # the replacement start without waiting a TTL.
        with _lease_lock(slot.lease_path):
            lease = read_lease(slot.lease_path)
            if (
                lease is not None
                and lease.get("worker_id") == slot.worker_id
            ):
                slot.lease_path.unlink(missing_ok=True)

    def handle_death(slot: _Slot, reason: str, now: float) -> None:
        slot.deaths += 1
        deaths_total.inc(shard=str(slot.index))
        break_lease(slot)
        log.log(
            "worker_dead",
            shard=slot.index,
            worker=slot.worker_id,
            reason=reason,
            deaths=slot.deaths,
        )
        blame = first_unfinished(slot)
        if blame is not None:
            attempts[blame] = attempts.get(blame, 0) + 1
            if attempts[blame] > max_retries:
                quarantine(slot, blame, reason)
            else:
                retries_total.inc(shard=str(slot.index))
                log.log(
                    "cell_retry",
                    shard=slot.index,
                    cell=blame,
                    attempt=attempts[blame],
                    budget=max_retries,
                )
        reassignments_total.inc(shard=str(slot.index))
        slot.next_launch_unix_s = now + retry_policy.delay_s(
            slot.index, slot.deaths
        )

    def slot_work(slot: _Slot) -> list[str]:
        stored = _stored_keys(slot.store_root)
        revoked = read_revoked(slot.revoked_path)
        return [
            key
            for key in slot.keys
            if key not in stored and key not in revoked
        ]

    def try_steal(thief: _Slot, now: float) -> bool:
        resolved = stored_union() | set(quarantined) | blocked
        best: tuple[int, _Slot, list[list[Cell]]] | None = None
        for victim in slots:
            if victim is thief or victim.proc is None:
                continue
            revoked = read_revoked(victim.revoked_path)
            pending = [
                component
                for component in cell_components(victim.cells)
                if all(
                    cell.key not in resolved and cell.key not in revoked
                    for cell in component
                )
            ]
            if len(pending) >= 2 and (
                best is None or len(pending) > best[0]
            ):
                best = (len(pending), victim, pending)
        if best is None:
            return False
        _, victim, pending = best
        stolen = pending[-(len(pending) // 2):]
        stolen_cells = [cell for component in stolen for cell in component]
        stolen_keys = [cell.key for cell in stolen_cells]
        write_revoked(
            victim.revoked_path,
            read_revoked(victim.revoked_path) | set(stolen_keys),
        )
        thief.steals += 1
        steal_path = shard_dir / (
            f"{prefix}-{thief.index}.steal{thief.steals}.json"
        )
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "shard": f"{thief.index}s{thief.steals}",
            "n_shards": manifest_meta["n_shards"],
            "encode": manifest_meta["encode"],
            "cells": [cell.to_entry() for cell in stolen_cells],
        }
        if manifest_meta["decode"] is not None:
            manifest["decode"] = manifest_meta["decode"]
        atomic_write_text(steal_path, json.dumps(manifest, indent=2) + "\n")
        thief.assign(steal_path, stolen_cells)
        thief.next_launch_unix_s = now
        steals_total.inc(thief=str(thief.index), victim=str(victim.index))
        log.log(
            "steal",
            thief=thief.index,
            victim=victim.index,
            chains=len(stolen),
            cells=len(stolen_keys),
        )
        return True

    def stored_union() -> set[str]:
        union: set[str] = set()
        for root in {slot.store_root for slot in slots}:
            union |= _stored_keys(root)
        return union

    log.log(
        "campaign_start",
        shard_dir=str(shard_dir),
        shards=len(slots),
        cells=len(all_keys),
        max_retries=max_retries,
        lease_ttl_s=lease_ttl_s,
        steal=steal,
    )
    t0 = time.time()
    try:
        while True:
            now = time.time()
            if max_wall_s is not None and now - t0 > max_wall_s:
                raise RuntimeError(
                    f"campaign exceeded max_wall_s={max_wall_s}; "
                    f"{len(all_keys - stored_union() - set(quarantined) - blocked)} "
                    "cell(s) still unresolved"
                )
            resolved = stored_union() | set(quarantined) | blocked
            if all_keys <= resolved:
                break
            for slot in slots:
                if slot.proc is not None:
                    rc = slot.proc.poll()
                    if rc is None:
                        lease = read_lease(slot.lease_path)
                        if (
                            lease is not None
                            and lease.get("worker_id") == slot.worker_id
                            and lease_expired(lease, now)
                        ):
                            # The process exists but its heartbeat died
                            # (hung pool child, stuck I/O): fence it off
                            # the hard way and reassign.
                            slot.proc.kill()
                            slot.proc.wait()
                            reap(slot)
                            handle_death(slot, "lease expired", now)
                        continue
                    reap(slot)
                    if rc in (0, 4):
                        log.log(
                            "worker_exit",
                            shard=slot.index,
                            worker=slot.worker_id,
                            code=rc,
                        )
                    elif rc == 2:
                        raise RuntimeError(
                            f"worker {slot.worker_id} on "
                            f"{slot.manifest_path.name} failed with a "
                            f"configuration error (exit 2); see "
                            f"{slot.log_path}"
                        )
                    else:
                        handle_death(slot, f"exit code {rc}", now)
                    continue
                work = slot_work(slot)
                unresolved = [k for k in work if k not in resolved]
                if unresolved:
                    if now >= slot.next_launch_unix_s:
                        launch(slot)
                    continue
                if steal and try_steal(slot, now):
                    launch(slot)
                elif not slot.idle_logged:
                    slot.idle_logged = True
                    log.log("worker_idle", shard=slot.index)
            time.sleep(poll_s)
    finally:
        for slot in slots:
            if slot.proc is not None and slot.proc.poll() is None:
                slot.proc.terminate()
                try:
                    slot.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    slot.proc.kill()
                    slot.proc.wait()
            reap(slot)

    transport_summary: dict | None = None
    if remote_root is not None:
        # Pull each remote shard store back into its local twin before
        # merging: a digest-keyed delta no-op when the link was healthy,
        # and the recovery path when a local store lost documents the
        # remote still holds.  Failures stay per-key and graceful.
        transport_summary = {
            "pulled": 0, "skipped": 0, "failed": {},
            "retries": 0, "refetches": 0,
        }
        for slot in slots:
            remote_store_root = remote_root / f"{prefix}-{slot.index}-store"
            syncer = RemoteStore(
                ArtifactStore(slot.store_root),
                open_transport(remote_store_root),
                backoff=retry_policy,
                registry=registry,
                echo=echo,
            )
            pull = syncer.pull()
            transport_summary["pulled"] += len(pull.pulled)
            transport_summary["skipped"] += len(pull.skipped)
            transport_summary["failed"].update(pull.failed)
            transport_summary["retries"] += pull.retries
            transport_summary["refetches"] += pull.refetches
        log.log(
            "remote_pull_done",
            pulled=transport_summary["pulled"],
            skipped=transport_summary["skipped"],
            failed=len(transport_summary["failed"]),
            refetches=transport_summary["refetches"],
        )

    stored = stored_union()
    unresolved_blocked = tuple(sorted(blocked - stored))
    if quarantined:
        write_failures(
            shard_dir / FAILURES_NAME, quarantined, blocked=unresolved_blocked
        )
    summary: dict = {
        "shard_dir": str(shard_dir),
        "shards": len(slots),
        "cells": len(all_keys),
        "stored": len(all_keys & stored),
        "quarantined": tuple(sorted(quarantined)),
        "blocked": unresolved_blocked,
        "deaths": sum(slot.deaths for slot in slots),
        "launches": sum(slot.launches for slot in slots),
        "steals": sum(slot.steals for slot in slots),
        "ok": not quarantined and not unresolved_blocked,
        "merged": None,
        "transport": transport_summary,
    }
    log.log(
        "campaign_done",
        cells=summary["cells"],
        stored=summary["stored"],
        quarantined=len(summary["quarantined"]),
        blocked=len(summary["blocked"]),
        deaths=summary["deaths"],
        steals=summary["steals"],
        wall_s=time.time() - t0,
    )
    if store_root is not None:
        if summary["ok"] or allow_partial:
            summary["merged"] = merge_stores(
                sorted({str(slot.store_root) for slot in slots}),
                store_root,
                allow_partial=allow_partial,
            )
        else:
            log.log(
                "merge_skipped",
                reason="unresolved failures without allow_partial",
                quarantined=len(summary["quarantined"]),
                blocked=len(summary["blocked"]),
            )
    return summary
