"""Integrity-verified sync of :class:`ArtifactStore` contents across machines.

PR 7 made campaigns survive worker churn on one box; this module
crosses the machine boundary.  The pieces:

* :class:`Transport` — the minimal byte-moving surface (``read_bytes``
  / ``write_bytes`` with per-operation timeouts).  Pluggable: an
  S3/ssh backend only has to move bytes, every integrity and
  crash-safety decision lives above it.  :class:`LocalDirTransport`
  is the reference implementation, modeling a mounted or rsync-style
  remote directory; :class:`FaultyTransport` wraps any transport with
  seeded faults (truncated upload, bit-flip in transit, dropped
  transfer at document N, stalled transport) for the chaos harness.
* :class:`RetryPolicy` — the PR 7 coordinator's backoff shape
  (exponential with a cap, deterministic sha256 jitter) factored out
  so transport retries and worker relaunches draw the same schedule.
* :class:`RemoteStore` — ``push`` / ``pull`` / ``sync`` of one local
  :class:`ArtifactStore` against one remote store root.  Transfer is
  document-level delta keyed on the manifest's recorded sha256
  digests; every transferred document is re-hashed (pull verifies
  against the remote entry's digest before landing through
  :meth:`ArtifactStore.adopt`; push reads its own write back and
  re-uploads on mismatch), so no transport corruption can ever reach
  a manifest.  Failures degrade gracefully: both stores stay valid,
  and the :class:`SyncReport` names exactly which keys are missing.

The remote layout **is** the :class:`ArtifactStore` layout
(``manifest.json`` + ``<key>/<name>.json``) — a pushed remote is a
valid store that remote workers can resume from directly.  Like the
local store, cross-machine coordination goes through per-shard remote
roots and an explicit merge: one writer per remote root at a time,
never a shared remote manifest.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.obs.logging import StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.runtime.store import (
    DIGESTS_KEY,
    MANIFEST_NAME,
    ArtifactStore,
    StoreCorruptionError,
    _canonical_json,
)

__all__ = [
    "SYNC_STATE_NAME",
    "TransportError",
    "TransportTimeoutError",
    "TransportNotFoundError",
    "Transport",
    "LocalDirTransport",
    "FaultyTransport",
    "RetryPolicy",
    "SyncReport",
    "RemoteStore",
    "open_transport",
    "read_sync_state",
]

#: Sidecar file (in the local store root, next to ``manifest.json``)
#: recording the outcome of the last push/pull/sync per direction.
#: ``repro campaign status`` reads it for per-shard sync lag; it is a
#: plain file, not an artifact, so ``content_hash`` and ``verify``
#: ignore it.
SYNC_STATE_NAME = ".sync.json"

SYNC_STATE_SCHEMA = 1


class TransportError(RuntimeError):
    """A transfer failed in a way worth retrying (drop, partial I/O)."""


class TransportTimeoutError(TransportError):
    """An operation exceeded its per-operation timeout."""


class TransportNotFoundError(TransportError):
    """The remote path does not exist (fresh remote, or a dropped file)."""


class Transport:
    """Minimal byte-moving surface between a local and a remote root.

    Implementations move opaque bytes addressed by ``/``-separated
    relative paths and honor a best-effort per-operation timeout.
    They make exactly one durability promise: a ``write_bytes`` that
    returns has landed atomically (temp-then-rename on the receiving
    side), so a reader never observes a torn file — the same
    discipline as :meth:`ArtifactStore.put`.  Everything else
    (digests, retries, delta, landing order) lives in
    :class:`RemoteStore`.
    """

    def read_bytes(self, relpath: str, timeout_s: float | None = None) -> bytes:
        raise NotImplementedError

    def write_bytes(
        self, relpath: str, data: bytes, timeout_s: float | None = None
    ) -> None:
        raise NotImplementedError


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Byte twin of :func:`repro.runtime.store.atomic_write_text`."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class LocalDirTransport(Transport):
    """Reference transport: a directory standing in for the remote.

    Models a mounted (NFS, sshfs) or rsync-target remote — the
    operational shape the ROADMAP's fleet item assumes — while staying
    entirely local so tests and the chaos harness can exercise every
    transfer path without a network.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _resolve(self, relpath: str) -> Path:
        parts = relpath.split("/")
        if not parts or any(
            part in ("", ".", "..") or os.sep in part or "\x00" in part
            for part in parts
        ):
            raise ValueError(f"unsafe transport path {relpath!r}")
        return self.root.joinpath(*parts)

    def read_bytes(self, relpath: str, timeout_s: float | None = None) -> bytes:
        path = self._resolve(relpath)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise TransportNotFoundError(
                f"remote has no {relpath!r} under {self.root}"
            ) from None

    def write_bytes(
        self, relpath: str, data: bytes, timeout_s: float | None = None
    ) -> None:
        path = self._resolve(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(path, data)


class FaultyTransport(Transport):
    """Chaos wrapper injecting transport faults into any inner transport.

    Four faults, each firing a bounded number of times:

    * ``truncate_upload`` — a write lands only the first half of its
      bytes (a partial transfer the remote accepted); push's
      read-back verification must catch it.
    * ``bit_flip`` — a read returns the payload with one bit flipped
      (corruption in transit); pull's digest check must catch it.
    * ``drop_at_document`` — the Nth document transfer (1-based,
      reads and writes counted together, manifest traffic excluded)
      raises :class:`TransportError` mid-sync; retries must converge.
    * ``stall_s`` — an operation sleeps; when the stall meets or
      exceeds the caller's timeout it raises
      :class:`TransportTimeoutError` instead (a hung remote).

    ``claim(tag, times)`` arbitrates firing: the default is an
    in-process counter, and :meth:`repro.runtime.chaos.ChaosInjector.
    wrap_transport` supplies its ``O_EXCL`` marker-file claim so
    "exactly N times" holds across worker subprocesses.  The
    document counter for ``drop_at_document`` is per-instance
    (per-process); the claim still bounds total firings.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        truncate_upload: int = 0,
        bit_flip: int = 0,
        drop_at_document: int | None = None,
        drop_times: int = 1,
        stall_s: float = 0.0,
        stall_times: int = 1,
        claim: Callable[[str, int], bool] | None = None,
    ) -> None:
        self.inner = inner
        self.truncate_upload = int(truncate_upload)
        self.bit_flip = int(bit_flip)
        self.drop_at_document = (
            None if drop_at_document is None else int(drop_at_document)
        )
        self.drop_times = int(drop_times)
        self.stall_s = float(stall_s)
        self.stall_times = int(stall_times)
        self._claim_fn = claim
        self._claimed: dict[str, int] = {}
        self._docs_seen = 0

    def _claim(self, tag: str, times: int) -> bool:
        if times <= 0:
            return False
        if self._claim_fn is not None:
            return self._claim_fn(f"transport-{tag}", times)
        used = self._claimed.get(tag, 0)
        if used >= times:
            return False
        self._claimed[tag] = used + 1
        return True

    @staticmethod
    def _is_document(relpath: str) -> bool:
        return "/" in relpath

    def _maybe_stall(self, timeout_s: float | None) -> None:
        if self.stall_s <= 0 or not self._claim("stall", self.stall_times):
            return
        if timeout_s is not None and self.stall_s >= timeout_s:
            raise TransportTimeoutError(
                f"transport stalled {self.stall_s}s "
                f"(timeout {timeout_s}s)"
            )
        time.sleep(self.stall_s)

    def _maybe_drop(self, relpath: str) -> None:
        if not self._is_document(relpath):
            return
        self._docs_seen += 1
        if (
            self.drop_at_document is not None
            and self._docs_seen == self.drop_at_document
            and self._claim("drop", self.drop_times)
        ):
            raise TransportError(
                f"transfer dropped at document #{self._docs_seen} "
                f"({relpath})"
            )

    def read_bytes(self, relpath: str, timeout_s: float | None = None) -> bytes:
        self._maybe_stall(timeout_s)
        self._maybe_drop(relpath)
        data = self.inner.read_bytes(relpath, timeout_s)
        if (
            self._is_document(relpath)
            and data
            and self._claim("bit-flip", self.bit_flip)
        ):
            corrupted = bytearray(data)
            corrupted[len(corrupted) // 2] ^= 0x01
            data = bytes(corrupted)
        return data

    def write_bytes(
        self, relpath: str, data: bytes, timeout_s: float | None = None
    ) -> None:
        self._maybe_stall(timeout_s)
        self._maybe_drop(relpath)
        if (
            self._is_document(relpath)
            and len(data) > 1
            and self._claim("truncate", self.truncate_upload)
        ):
            data = data[: len(data) // 2]
        self.inner.write_bytes(relpath, data, timeout_s)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a cap and deterministic sha256 jitter.

    The PR 7 coordinator's relaunch schedule, factored out: attempt
    ``n`` (1-based) sleeps ``min(cap_s, base_s * 2**(n-1))`` scaled by
    ``1 + jitter`` where the jitter fraction is a pure function of
    ``(seed, tag, attempt)``.  Same seed, same tag → the same delay
    sequence on every machine, which is what lets tests pin the exact
    schedule and chaos runs reproduce timing-dependent failures.
    """

    base_s: float = 0.25
    cap_s: float = 10.0
    seed: int = 0

    def jitter_frac(self, tag: object, attempt: int) -> float:
        """Deterministic jitter in [0, 1): same inputs, same schedule."""
        digest = hashlib.sha256(
            f"{self.seed}:{tag}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:4], "big") / 2**32

    def delay_s(self, tag: object, attempt: int) -> float:
        """The delay before retrying after failure number ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.cap_s, self.base_s * 2 ** (attempt - 1))
        return delay * (1.0 + self.jitter_frac(tag, attempt))


@dataclass
class SyncReport:
    """Outcome of one ``push``/``pull``/``sync`` over a store pair.

    ``pushed``/``pulled`` are the keys whose documents moved;
    ``skipped`` already matched digest-for-digest (the delta no-op);
    ``failed`` maps each key that could **not** be transferred to the
    reason — both stores remain valid, those keys are simply still
    missing on the receiving side.  ``retries``/``refetches``/
    ``reuploads`` count recovery work: all zero on a healthy link.
    """

    direction: str
    pushed: list[str] = field(default_factory=list)
    pulled: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    documents: int = 0
    bytes: int = 0
    retries: int = 0
    refetches: int = 0
    reuploads: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary_line(self) -> str:
        """One human line for CLI output."""
        parts = [
            f"{self.direction}:",
            f"pushed={len(self.pushed)}",
            f"pulled={len(self.pulled)}",
            f"skipped={len(self.skipped)}",
            f"failed={len(self.failed)}",
            f"documents={self.documents}",
        ]
        if self.retries or self.refetches or self.reuploads:
            parts.append(
                f"retries={self.retries} refetches={self.refetches} "
                f"reuploads={self.reuploads}"
            )
        return " ".join(parts)

    def to_payload(self) -> dict:
        return {
            "pushed": len(self.pushed),
            "pulled": len(self.pulled),
            "skipped": len(self.skipped),
            "failed": dict(self.failed),
            "documents": self.documents,
            "bytes": self.bytes,
            "retries": self.retries,
            "refetches": self.refetches,
            "reuploads": self.reuploads,
        }


class RemoteStore:
    """Sync engine between one local :class:`ArtifactStore` and a remote.

    Three verbs, all delta transfers keyed on manifest digests:

    * :meth:`push` — upload local artifacts the remote lacks.  Local
      bytes are verified against their recorded digests before upload
      (a corrupt local document fails its key loudly instead of
      spreading), every uploaded document is read back and re-hashed
      (re-uploaded on mismatch, bounded), and the remote manifest is
      written once, after all of a batch's documents landed — the
      :meth:`ArtifactStore.put` ordering, so a crashed push leaves at
      worst remote orphans.
    * :meth:`pull` — fetch remote artifacts the local store lacks.
      Every document is re-hashed against the remote entry's digest
      (re-fetched on mismatch, bounded) and landed through
      :meth:`ArtifactStore.adopt`, which re-verifies — zero corrupt
      documents can reach the local manifest.  An unreachable remote
      or an exhausted key degrades gracefully: the local store stays
      valid and the report names exactly what is missing.
    * :meth:`sync` — pull then push, converging both sides to the
      union.

    Transient :class:`TransportError`\\ s retry up to ``retries`` times
    per operation with the :class:`RetryPolicy` schedule.  Outcomes
    land in the ``.sync.json`` sidecar (for ``campaign status``) and,
    when a ``registry`` is given, in ``repro_transport_*`` metrics —
    the failure-named ones (``retries``/``refetches``/``reuploads``/
    ``timeouts``/``failed_keys``) stay zero on a healthy link.
    """

    def __init__(
        self,
        local: ArtifactStore,
        transport: Transport,
        *,
        retries: int = 3,
        backoff: RetryPolicy | None = None,
        timeout_s: float = 30.0,
        registry: MetricsRegistry | None = None,
        echo: Callable[[str], None] | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.local = local
        self.transport = transport
        self.retries = retries
        self.backoff = backoff if backoff is not None else RetryPolicy()
        self.timeout_s = timeout_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self.log = StructuredLogger(echo=echo, component="transport")
        self._sleep = time.sleep
        reg = self.registry
        self._documents_total = reg.counter(
            "repro_transport_documents_total",
            "Documents transferred, by direction",
        )
        self._bytes_total = reg.counter(
            "repro_transport_bytes_total",
            "Document bytes transferred, by direction",
        )
        self._retries_total = reg.counter(
            "repro_transport_retries_total",
            "Transport operations retried after an error",
        )
        self._timeouts_total = reg.counter(
            "repro_transport_timeouts_total",
            "Transport operations that hit their per-operation timeout",
        )
        self._refetches_total = reg.counter(
            "repro_transport_refetches_total",
            "Pulled documents re-fetched after a digest mismatch",
        )
        self._reuploads_total = reg.counter(
            "repro_transport_reuploads_total",
            "Pushed documents re-uploaded after read-back mismatch",
        )
        self._failed_keys_total = reg.counter(
            "repro_transport_failed_keys_total",
            "Keys a push/pull could not transfer, by direction",
        )

    # -- retry plumbing ----------------------------------------------------
    def _op(
        self,
        op: str,
        relpath: str,
        fn: Callable[[], object],
        report: SyncReport | None = None,
    ) -> object:
        """Run one transport operation with bounded backoff retries."""
        last: TransportError | None = None
        attempts = 1 + self.retries
        for attempt in range(1, attempts + 1):
            try:
                return fn()
            except TransportTimeoutError as exc:
                self._timeouts_total.inc()
                last = exc
            except TransportNotFoundError:
                # Absence is a state, not a transient fault: retrying
                # cannot conjure the file.  Callers decide what it means.
                raise
            except TransportError as exc:
                last = exc
            if attempt < attempts:
                delay = self.backoff.delay_s(f"{op}:{relpath}", attempt)
                self._retries_total.inc()
                if report is not None:
                    report.retries += 1
                self.log.log(
                    "transport-retry",
                    op=op,
                    path=relpath,
                    attempt=attempt,
                    delay_s=round(delay, 4),
                    error=str(last),
                )
                self._sleep(delay)
        raise last  # type: ignore[misc]

    def _read(self, relpath: str, report: SyncReport | None = None) -> bytes:
        return self._op(
            "read",
            relpath,
            lambda: self.transport.read_bytes(relpath, self.timeout_s),
            report,
        )

    def _write(
        self, relpath: str, data: bytes, report: SyncReport | None = None
    ) -> None:
        self._op(
            "write",
            relpath,
            lambda: self.transport.write_bytes(relpath, data, self.timeout_s),
            report,
        )

    # -- manifests ---------------------------------------------------------
    def _read_remote_manifest(self, report: SyncReport | None = None) -> dict:
        try:
            raw = self._read(MANIFEST_NAME, report)
        except TransportNotFoundError:
            return {}
        manifest = json.loads(raw)
        if not isinstance(manifest, dict):
            raise TransportError(
                f"remote {MANIFEST_NAME} is not a JSON object"
            )
        return manifest

    def _write_remote_manifest(
        self, manifest: dict, report: SyncReport | None = None
    ) -> None:
        self._write(MANIFEST_NAME, _canonical_json(manifest).encode(), report)

    @staticmethod
    def _entry_names(key: str, entry: Mapping, root: Path | None) -> list[str]:
        names = entry.get("documents")
        if names is None and root is not None:
            names = sorted(p.stem for p in (root / key).glob("*.json"))
        return list(names or [])

    @staticmethod
    def _entry_digests(entry: Mapping) -> dict:
        digests = entry.get(DIGESTS_KEY)
        return dict(digests) if isinstance(digests, Mapping) else {}

    # -- push --------------------------------------------------------------
    def push(self, keys: Iterable[str] | None = None) -> SyncReport:
        """Upload local artifacts the remote lacks; returns the report."""
        report = SyncReport(direction="push")
        local_manifest = self.local.manifest()
        if keys is None:
            wanted = sorted(local_manifest)
        else:
            wanted = sorted(set(keys))
            missing = [k for k in wanted if k not in local_manifest]
            if missing:
                raise KeyError(f"no stored artifact {missing[0]!r}")
        try:
            remote_manifest = self._read_remote_manifest(report)
        except (TransportError, ValueError) as exc:
            for key in wanted:
                report.failed[key] = f"remote manifest unreadable: {exc}"
            return self._finish(report)
        staged: dict[str, dict] = {}
        for key in wanted:
            entry = dict(local_manifest[key])
            names = self._entry_names(key, entry, self.local.root)
            digests = self._entry_digests(entry)
            remote_entry = remote_manifest.get(key)
            if remote_entry is not None and self._entry_digests(
                remote_entry
            ) == digests and digests:
                report.skipped.append(key)
                continue
            try:
                pushed_entry = self._push_key(key, entry, names, digests, report)
            except (TransportError, StoreCorruptionError, OSError) as exc:
                report.failed[key] = str(exc)
                self.log.log("push-failed", key=key, error=str(exc))
                continue
            staged[key] = pushed_entry
            report.pushed.append(key)
        if staged:
            remote_manifest.update(staged)
            try:
                self._write_remote_manifest(remote_manifest, report)
            except TransportError as exc:
                # Documents landed but the index did not: the remote is
                # still a valid store (orphans only); every staged key
                # is reported missing so a retry re-stages the entries.
                for key in staged:
                    report.pushed.remove(key)
                    report.failed[key] = f"remote manifest write failed: {exc}"
        return self._finish(report)

    def _push_key(
        self,
        key: str,
        entry: dict,
        names: list[str],
        digests: dict,
        report: SyncReport,
    ) -> dict:
        """Upload one artifact's documents, verified; returns its entry."""
        if not names:
            raise StoreCorruptionError(f"artifact {key!r} lists no documents")
        payload_digests = dict(digests)
        blobs: dict[str, bytes] = {}
        for name in names:
            path = self.local.root / key / f"{name}.json"
            if not path.exists():
                raise StoreCorruptionError(
                    f"local artifact {key!r} is missing document {name!r}"
                )
            data = path.read_bytes()
            actual = hashlib.sha256(data).hexdigest()
            recorded = payload_digests.get(name)
            if recorded is None:
                # Pre-digest entry: refuse to push unparseable bytes,
                # then let the computed digest ride in the remote entry
                # so the remote side is fully auditable.
                json.loads(data)
                payload_digests[name] = actual
            elif recorded != actual:
                raise StoreCorruptionError(
                    f"local artifact {key!r} document {name!r} is corrupt "
                    f"(recorded {recorded[:12]}… got {actual[:12]}…); "
                    "run `repro store verify --repair` first"
                )
            blobs[name] = data
        for name in names:
            self._transfer_up(
                key, name, blobs[name], payload_digests[name], report
            )
            report.documents += 1
            report.bytes += len(blobs[name])
            self._documents_total.inc(direction="push")
            self._bytes_total.inc(len(blobs[name]), direction="push")
        entry["documents"] = sorted(names)
        entry[DIGESTS_KEY] = payload_digests
        return entry

    def _transfer_up(
        self, key: str, name: str, data: bytes, digest: str,
        report: SyncReport,
    ) -> None:
        """Write one document and read it back until the digest matches."""
        relpath = f"{key}/{name}.json"
        rounds = 1 + self.retries
        for round_no in range(1, rounds + 1):
            self._write(relpath, data, report)
            echoed = self._read(relpath, report)
            if hashlib.sha256(echoed).hexdigest() == digest:
                return
            if round_no < rounds:
                self._reuploads_total.inc()
                report.reuploads += 1
                self.log.log(
                    "reupload", key=key, document=name, round=round_no
                )
        raise TransportError(
            f"document {relpath} failed read-back verification "
            f"{rounds} time(s)"
        )

    # -- pull --------------------------------------------------------------
    def pull(self, keys: Iterable[str] | None = None) -> SyncReport:
        """Fetch remote artifacts the local store lacks; returns the report.

        Never raises for per-key transfer failures: the local store is
        left valid and ``report.failed`` names exactly which keys are
        still missing and why.
        """
        report = SyncReport(direction="pull")
        try:
            remote_manifest = self._read_remote_manifest(report)
        except (TransportError, ValueError) as exc:
            reason = f"remote manifest unreadable: {exc}"
            if keys is None:
                report.failed[MANIFEST_NAME] = reason
            else:
                for key in sorted(set(keys)):
                    report.failed[key] = reason
            return self._finish(report)
        if keys is None:
            wanted = sorted(remote_manifest)
        else:
            wanted = sorted(set(keys))
        present = set(self.local.manifest())
        for key in wanted:
            if key in present:
                report.skipped.append(key)
                continue
            remote_entry = remote_manifest.get(key)
            if remote_entry is None:
                report.failed[key] = "not in remote manifest"
                continue
            entry = dict(remote_entry)
            names = self._entry_names(key, entry, None)
            if not names:
                report.failed[key] = "remote entry lists no documents"
                continue
            digests = self._entry_digests(entry)
            try:
                files = {
                    name: self._transfer_down(
                        key, name, digests.get(name), report
                    )
                    for name in names
                }
            except (TransportError, StoreCorruptionError) as exc:
                report.failed[key] = str(exc)
                self.log.log("pull-failed", key=key, error=str(exc))
                continue
            for name, data in files.items():
                if name not in digests:
                    # Undigested remote entry: the bytes parsed (checked
                    # in _transfer_down); record the computed digest so
                    # adopt's gate — and every later audit — has truth.
                    digests[name] = hashlib.sha256(data).hexdigest()
            entry["documents"] = sorted(names)
            entry[DIGESTS_KEY] = digests
            try:
                self.local.adopt(key, files, entry)
            except StoreCorruptionError as exc:  # pragma: no cover - gate
                report.failed[key] = str(exc)
                continue
            report.pulled.append(key)
            for data in files.values():
                report.documents += 1
                report.bytes += len(data)
                self._documents_total.inc(direction="pull")
                self._bytes_total.inc(len(data), direction="pull")
        return self._finish(report)

    def _transfer_down(
        self, key: str, name: str, digest: str | None, report: SyncReport
    ) -> bytes:
        """Fetch one document, re-fetching until its digest matches."""
        relpath = f"{key}/{name}.json"
        rounds = 1 + self.retries
        last = ""
        for round_no in range(1, rounds + 1):
            data = self._read(relpath, report)
            if digest is None:
                # No recorded digest to check against: require valid
                # JSON (catches truncation, not bit flips — which is
                # exactly why `repro store digest` exists).
                try:
                    json.loads(data)
                except ValueError as exc:
                    last = f"undigested document unparseable: {exc}"
                else:
                    return data
            else:
                actual = hashlib.sha256(data).hexdigest()
                if actual == digest:
                    return data
                last = (
                    f"digest mismatch (recorded {digest[:12]}… got "
                    f"{actual[:12]}…)"
                )
            if round_no < rounds:
                self._refetches_total.inc()
                report.refetches += 1
                self.log.log(
                    "refetch", key=key, document=name, round=round_no,
                    reason=last,
                )
        raise TransportError(
            f"document {relpath} failed verification {rounds} time(s): {last}"
        )

    # -- sync --------------------------------------------------------------
    def sync(self, keys: Iterable[str] | None = None) -> SyncReport:
        """Converge local and remote to the union: pull, then push."""
        pulled = self.pull(keys)
        if keys is None:
            push_keys = None
        else:
            # A key that failed to pull is still absent locally; push
            # only what this side actually holds.
            local = set(self.local.manifest())
            push_keys = sorted(set(keys) & local)
        pushed = self.push(push_keys)
        report = SyncReport(
            direction="sync",
            pushed=pushed.pushed,
            pulled=pulled.pulled,
            skipped=sorted(set(pulled.skipped) & set(pushed.skipped)),
            failed={**pulled.failed, **pushed.failed},
            documents=pulled.documents + pushed.documents,
            bytes=pulled.bytes + pushed.bytes,
            retries=pulled.retries + pushed.retries,
            refetches=pulled.refetches,
            reuploads=pushed.reuploads,
        )
        self._write_sync_state(report)
        return report

    # -- bookkeeping -------------------------------------------------------
    def _finish(self, report: SyncReport) -> SyncReport:
        for _ in report.failed:
            self._failed_keys_total.inc(direction=report.direction)
        self._write_sync_state(report)
        self.log.log(
            f"{report.direction}-done",
            pushed=len(report.pushed),
            pulled=len(report.pulled),
            skipped=len(report.skipped),
            failed=len(report.failed),
            documents=report.documents,
        )
        return report

    def _write_sync_state(self, report: SyncReport) -> None:
        path = self.local.root / SYNC_STATE_NAME
        try:
            state = json.loads(path.read_text())
            if not isinstance(state, dict):
                state = {}
        except (OSError, ValueError):
            state = {}
        state["schema"] = SYNC_STATE_SCHEMA
        state[report.direction] = report.to_payload()
        from repro.runtime.store import atomic_write_text

        atomic_write_text(path, _canonical_json(state))


def read_sync_state(store_root: str | Path) -> dict | None:
    """The last recorded sync outcome for a store, or ``None``.

    Tolerant by design (missing file, torn write, wrong schema all
    read as ``None``): status rollups must never fail because a sync
    has not happened yet.
    """
    path = Path(store_root) / SYNC_STATE_NAME
    try:
        state = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(state, dict) or state.get("schema") != SYNC_STATE_SCHEMA:
        return None
    return state


def open_transport(root: str | Path) -> Transport:
    """A :class:`LocalDirTransport` on ``root``, chaos-wrapped if armed.

    The one factory every fabric component (worker push hook,
    coordinator pull, CLI verbs) goes through, so the chaos harness's
    ``REPRO_CHAOS`` env var reaches transports in worker subprocesses
    exactly like it reaches cell execution.
    """
    transport: Transport = LocalDirTransport(root)
    from repro.runtime import chaos

    injector = chaos.active_injector()
    if injector is not None:
        wrapped = injector.wrap_transport(transport)
        if wrapped is not None:
            return wrapped
    return transport
