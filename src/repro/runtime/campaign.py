"""The campaign runner: cache-aware execution of a cell matrix.

:class:`CampaignRunner` is the one orchestration loop every consumer
layer shares — scenario sweeps, Table 3 measurement matrices, figure
replay sweeps, and the bench suite's provenance pass all reduce to:

1. snapshot the store's manifest once (probing per cell would re-parse
   it for every cell of a large matrix);
2. decode cached cells, hand pending ones to the executor;
3. persist each computed result the moment it arrives, so a failing
   cell or a killed sweep never discards finished work.

The runner is generic over the result type: an
:class:`ArtifactCodec` pairs the encoder (result -> store documents +
manifest metadata) with the decoder (cell + documents -> result), both
referenced by import path so shard manifests can name them across
machine boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.obs.provenance import PROVENANCE_KEY
from repro.runtime.cell import Cell, resolve_ref
from repro.runtime.executors import SerialExecutor
from repro.runtime.store import ArtifactStore

__all__ = ["ArtifactCodec", "CampaignRunner", "RuntimeOutcome"]


@dataclass(frozen=True)
class ArtifactCodec:
    """How a cell result crosses the store boundary, by reference.

    ``encode_ref`` names ``fn(result) -> (documents, meta)`` and
    ``decode_ref`` names ``fn(cell, documents) -> result``; both must
    be module-level callables so a shard manifest (which carries only
    the encode reference) stays executable on any machine with the
    package installed.
    """

    encode_ref: str
    decode_ref: str

    def encode(self, result: Any) -> tuple[dict, dict]:
        return resolve_ref(self.encode_ref)(result)

    def decode(self, cell: Cell, documents: Mapping[str, Mapping]) -> Any:
        return resolve_ref(self.decode_ref)(cell, documents)


@dataclass
class RuntimeOutcome:
    """Everything one runner pass produced, cache hits included."""

    results: dict[str, Any]
    cached_keys: tuple[str, ...]
    computed_keys: tuple[str, ...]

    @property
    def cache_hit_fraction(self) -> float:
        total = len(self.cached_keys) + len(self.computed_keys)
        return len(self.cached_keys) / total if total else 0.0


class CampaignRunner:
    """Run a cell matrix through an executor, caching via a store."""

    def __init__(
        self,
        cells: Sequence[Cell],
        store: ArtifactStore | None = None,
        codec: ArtifactCodec | None = None,
        executor=None,
    ) -> None:
        if not cells:
            raise ValueError("a campaign needs at least one cell")
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate cell keys in the matrix")
        if store is not None and codec is None:
            raise ValueError(
                "a store-backed campaign needs a codec to encode and "
                "decode cell results"
            )
        self.cells = list(cells)
        self.store = store
        self.codec = codec
        self.executor = executor if executor is not None else SerialExecutor()

    def run(self) -> RuntimeOutcome:
        """Execute pending cells, reload cached ones."""
        # One manifest snapshot serves both the pending/cached split
        # and every cached cell's document reads.
        manifest = self.store.manifest() if self.store is not None else {}
        cached: dict[str, Any] = {}
        pending: list[Cell] = []
        for cell in self.cells:
            entry = manifest.get(cell.key)
            if entry is not None:
                cached[cell.key] = self.codec.decode(
                    cell, self.store.get(cell.key, entry=entry)
                )
            else:
                pending.append(cell)

        # Chained cells must find their predecessor in this same matrix
        # (pending, so the executor runs it first, or cached, so its
        # decoded result ships as an upstream seed).  Catching a
        # dangling link here gives a clear error before any cell runs.
        pending_keys = {cell.key for cell in pending}
        for cell in pending:
            if (
                cell.after is not None
                and cell.after not in pending_keys
                and cell.after not in cached
            ):
                raise ValueError(
                    f"cell {cell.key!r} chains after {cell.after!r}, "
                    "which is not part of this campaign's matrix"
                )

        computed: dict[str, Any] = {}
        provenance: dict[str, dict] = {}

        def emit(cell: Cell, result: Any, already_stored: bool) -> None:
            if not already_stored:
                self._persist(cell, result, provenance.get(cell.key))
            computed[cell.key] = result

        if pending:
            by_key = {cell.key: cell for cell in self.cells}
            self.executor.run(
                pending,
                emit,
                codec=self.codec,
                store=self.store,
                upstream=cached,
                upstream_cells={key: by_key[key] for key in cached},
                on_provenance=provenance.__setitem__,
            )

        results = dict(cached)
        results.update(computed)
        return RuntimeOutcome(
            results=results,
            cached_keys=tuple(sorted(cached)),
            computed_keys=tuple(sorted(computed)),
        )

    def _persist(
        self, cell: Cell, result: Any, provenance: dict | None = None
    ) -> None:
        """Store one result; an already-stored key is a no-op.

        The duplicate case arises when another writer (an interrupted
        earlier sweep, a concurrent shard) stored the cell after this
        run's up-front manifest snapshot.  Any other ValueError is a
        genuine persistence failure and propagates — swallowing it
        would silently turn every future run into a cache miss.

        Execution provenance rides in the manifest *meta* (never the
        documents), so the store's content hash — and the serial ==
        pool == shard byte-equivalence contract built on it — ignores
        where and how long the cell ran.
        """
        if self.store is None:
            return
        documents, meta = self.codec.encode(result)
        if provenance is not None:
            meta = dict(meta)
            meta[PROVENANCE_KEY] = provenance
        try:
            self.store.put(cell.key, documents, meta=meta)
        except ValueError:
            if cell.key not in self.store:
                raise
