"""The unit of work: a pure function plus a content-hashed config.

A :class:`Cell` is the quantum every executor schedules, every store
caches, and every shard manifest ships to another machine.  It is
deliberately minimal:

* ``fn`` — an import reference (``"package.module:callable"``) to a
  *cell function*: a module-level callable taking one JSON-shaped
  payload dict and returning a result that is a pure function of it.
  Referencing by name (not by pickled object) is what lets a shard
  manifest be executed by ``python -m repro worker`` on a machine that
  shares nothing with the parent but the installed package;
* ``payload`` — the cell's entire configuration as a JSON value, so it
  round-trips through manifests and process boundaries without loss;
* ``key`` — the cache/store identity.  By default a content hash of
  ``(fn, payload)``, so equal work shares one key everywhere; domain
  layers may override it with their own content hash (scenario cells
  keep their ``scn-…`` ids so pre-runtime caches stay warm).

Purity is the contract that makes the whole runtime composable: because
a cell's result depends only on its payload, executor choice, worker
count, shard partitioning, and cache hits can never change *what* is
computed — only when and where.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.store import validate_key

__all__ = ["Cell", "cell_key", "resolve_ref", "execute_cell"]


def resolve_ref(ref: str) -> Callable:
    """Import a ``"module:attr"`` (or ``"module:attr.attr"``) reference."""
    module_name, _, attr_path = ref.partition(":")
    if not module_name or not attr_path:
        raise ValueError(
            f"function reference {ref!r} must look like 'package.module:callable'"
        )
    target: Any = importlib.import_module(module_name)
    for attr in attr_path.split("."):
        target = getattr(target, attr)
    if not callable(target):
        raise TypeError(f"function reference {ref!r} resolved to non-callable {target!r}")
    return target


def cell_key(fn: str, payload: Any) -> str:
    """Content hash of a cell: same function + same payload => same key."""
    body = json.dumps([fn, payload], sort_keys=True)
    digest = hashlib.sha256(body.encode()).hexdigest()[:16]
    return f"cell-{digest}"


@dataclass(frozen=True)
class Cell:
    """One schedulable, cacheable, shippable unit of campaign work."""

    fn: str
    payload: Any = field(default_factory=dict)
    key: str = ""

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"cell fn {self.fn!r} must be an import reference "
                "('package.module:callable')"
            )
        # Round-trip the payload through JSON once, eagerly: a payload
        # that cannot survive a shard manifest would otherwise only
        # fail on the machine that received it.
        try:
            canonical = json.loads(json.dumps(self.payload))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"cell payload must be JSON-serializable: {exc}"
            ) from exc
        object.__setattr__(self, "payload", canonical)
        if not self.key:
            object.__setattr__(self, "key", cell_key(self.fn, self.payload))
        validate_key(self.key, kind="cell key")

    def run(self) -> Any:
        """Resolve ``fn`` and apply it to the payload."""
        return resolve_ref(self.fn)(self.payload)

    # -- manifest round-trip -----------------------------------------------
    def to_entry(self) -> dict:
        """The shard-manifest representation of this cell."""
        return {"fn": self.fn, "payload": self.payload, "key": self.key}

    @classmethod
    def from_entry(cls, entry: dict) -> "Cell":
        return cls(fn=entry["fn"], payload=entry["payload"], key=entry["key"])


def execute_cell(cell: Cell) -> tuple[str, Any]:
    """Module-level pool target: run one cell, return ``(key, result)``.

    Lives at module scope so :mod:`multiprocessing` can pickle it by
    reference; the result itself must be picklable for pooled
    executors (numpy arrays and plain dataclasses are).
    """
    return cell.key, cell.run()
