"""The unit of work: a pure function plus a content-hashed config.

A :class:`Cell` is the quantum every executor schedules, every store
caches, and every shard manifest ships to another machine.  It is
deliberately minimal:

* ``fn`` — an import reference (``"package.module:callable"``) to a
  *cell function*: a module-level callable taking one JSON-shaped
  payload dict and returning a result that is a pure function of it.
  Referencing by name (not by pickled object) is what lets a shard
  manifest be executed by ``python -m repro worker`` on a machine that
  shares nothing with the parent but the installed package;
* ``payload`` — the cell's entire configuration as a JSON value, so it
  round-trips through manifests and process boundaries without loss;
* ``key`` — the cache/store identity.  By default a content hash of
  ``(fn, payload)``, so equal work shares one key everywhere; domain
  layers may override it with their own content hash (scenario cells
  keep their ``scn-…`` ids so pre-runtime caches stay warm);
* ``after`` — optionally, the key of a *predecessor* cell whose
  decoded result is handed to this cell's function as a second
  argument.  This is the warm-fabric chain primitive: a successor
  tenant runs on the fabric state its predecessor persisted.
  Executors run a chain's cells in order (keeping whole chains on one
  shard), so a chained cell's result is a pure function of its own
  payload plus — transitively — its chain's payloads.

Purity is the contract that makes the whole runtime composable: because
a cell's result depends only on its payload (and, for chained cells,
its predecessors' payloads), executor choice, worker count, shard
partitioning, and cache hits can never change *what* is computed —
only when and where.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.runtime.store import validate_key

__all__ = [
    "Cell",
    "cell_key",
    "resolve_ref",
    "execute_cell",
    "execute_cell_graph",
    "order_cells",
]


def resolve_ref(ref: str) -> Callable:
    """Import a ``"module:attr"`` (or ``"module:attr.attr"``) reference."""
    module_name, _, attr_path = ref.partition(":")
    if not module_name or not attr_path:
        raise ValueError(
            f"function reference {ref!r} must look like 'package.module:callable'"
        )
    target: Any = importlib.import_module(module_name)
    for attr in attr_path.split("."):
        target = getattr(target, attr)
    if not callable(target):
        raise TypeError(f"function reference {ref!r} resolved to non-callable {target!r}")
    return target


def cell_key(fn: str, payload: Any, after: str | None = None) -> str:
    """Content hash of a cell: same function + same payload => same key.

    A chained cell's key additionally covers its predecessor key (the
    same payload seeded by a different upstream is different work);
    unchained cells hash exactly as they always did, so existing stores
    stay warm.
    """
    body = json.dumps(
        [fn, payload] if after is None else [fn, payload, after],
        sort_keys=True,
    )
    digest = hashlib.sha256(body.encode()).hexdigest()[:16]
    return f"cell-{digest}"


@dataclass(frozen=True)
class Cell:
    """One schedulable, cacheable, shippable unit of campaign work."""

    fn: str
    payload: Any = field(default_factory=dict)
    key: str = ""
    #: Key of the predecessor cell whose decoded result seeds this one
    #: (warm-fabric chains); ``None`` for independent cells.
    after: str | None = None

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"cell fn {self.fn!r} must be an import reference "
                "('package.module:callable')"
            )
        # Round-trip the payload through JSON once, eagerly: a payload
        # that cannot survive a shard manifest would otherwise only
        # fail on the machine that received it.
        try:
            canonical = json.loads(json.dumps(self.payload))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"cell payload must be JSON-serializable: {exc}"
            ) from exc
        object.__setattr__(self, "payload", canonical)
        if not self.key:
            object.__setattr__(
                self, "key", cell_key(self.fn, self.payload, self.after)
            )
        validate_key(self.key, kind="cell key")
        if self.after is not None:
            validate_key(self.after, kind="predecessor key")
            if self.after == self.key:
                raise ValueError(f"cell {self.key!r} cannot chain to itself")

    def run(self, upstream: Any = None) -> Any:
        """Resolve ``fn`` and apply it to the payload.

        A chained cell (``after`` set) passes its predecessor's decoded
        result as the function's second positional argument.
        """
        fn = resolve_ref(self.fn)
        if self.after is None:
            return fn(self.payload)
        return fn(self.payload, upstream)

    # -- manifest round-trip -----------------------------------------------
    def to_entry(self) -> dict:
        """The shard-manifest representation of this cell."""
        entry = {"fn": self.fn, "payload": self.payload, "key": self.key}
        if self.after is not None:
            entry["after"] = self.after
        return entry

    @classmethod
    def from_entry(cls, entry: dict) -> "Cell":
        return cls(
            fn=entry["fn"],
            payload=entry["payload"],
            key=entry["key"],
            after=entry.get("after"),
        )


def order_cells(cells: Sequence["Cell"]) -> list["Cell"]:
    """Dependency-order ``cells``: predecessors before their successors.

    Stable: cells keep their submission order except where an ``after``
    edge (to another cell *in the set*) forces a successor later.
    Edges to keys outside the set are the caller's concern (a cached or
    stored predecessor) and do not constrain the order.  Raises on
    dependency cycles.
    """
    keys = {cell.key for cell in cells}
    emitted: set[str] = set()
    ordered: list[Cell] = []
    pending = list(cells)
    while pending:
        rest: list[Cell] = []
        progressed = False
        for cell in pending:
            blocked = (
                cell.after is not None
                and cell.after in keys
                and cell.after not in emitted
            )
            if blocked:
                rest.append(cell)
            else:
                ordered.append(cell)
                emitted.add(cell.key)
                progressed = True
        if not progressed:
            cycle = sorted(cell.key for cell in rest)
            raise ValueError(f"cell dependency cycle among {cycle}")
        pending = rest
    return ordered


def execute_cell(cell: Cell) -> tuple[str, Any]:
    """Module-level pool target: run one cell, return ``(key, result)``.

    Lives at module scope so :mod:`multiprocessing` can pickle it by
    reference; the result itself must be picklable for pooled
    executors (numpy arrays and plain dataclasses are).
    """
    return cell.key, cell.run()


def execute_cell_graph(
    args: tuple[list[Cell], dict[str, Any]],
) -> list[tuple[str, Any, dict]]:
    """Module-level pool target: run one dependency-ordered cell group.

    ``args`` is ``(cells, upstream)`` where ``cells`` are already in
    dependency order (see :func:`order_cells`) and ``upstream`` maps
    predecessor keys *outside* the group (cached cells the coordinator
    decoded) to their results.  Results computed inside the group feed
    later group members directly, which is what keeps a whole chain in
    one process/pool task.

    Each returned triple carries the cell's execution provenance
    (wall seconds, peak RSS, step count — see
    :func:`repro.obs.provenance.cell_provenance`), measured in the
    process that actually ran the cell.
    """
    from repro.obs.provenance import cell_provenance
    from repro.runtime import chaos

    cells, upstream = args
    results: dict[str, Any] = dict(upstream)
    out: list[tuple[str, Any, dict]] = []
    for cell in cells:
        # Pool children re-arm fault injection from the environment so
        # a chaos-configured worker misbehaves identically whether its
        # cells run in-process or in a spawned pool process.
        monkey = chaos.active_injector()
        if monkey is not None:
            monkey.before_cell(cell.key)
        t0 = time.perf_counter()
        if cell.after is not None:
            if cell.after not in results:
                raise KeyError(
                    f"cell {cell.key!r} needs predecessor {cell.after!r}, "
                    "which is neither in its group nor supplied upstream"
                )
            result = cell.run(results[cell.after])
        else:
            result = cell.run()
        prov = cell_provenance(time.perf_counter() - t0, result)
        results[cell.key] = result
        out.append((cell.key, result, prov))
    return out
