"""Shard manifests and the ``repro worker`` / ``repro merge`` engine.

A *shard manifest* is the contract between a campaign coordinator and
a worker machine: a self-contained JSON file naming the cells to run
(function reference + payload + key) and the encoder that turns each
result into store documents::

    {
      "schema": 1,
      "shard": 0,
      "n_shards": 2,
      "encode": "repro.scenarios.orchestrate:encode_scenario_result",
      "decode": "repro.scenarios.orchestrate:decode_scenario_result",
      "cells": [{"fn": "...", "payload": {...}, "key": "scn-...",
                 "after": "scn-..."?}, ...]
    }

Cells may chain (``after`` names a predecessor cell in the same
manifest — the partition keeps warm-fabric chains on one shard); the
optional ``decode`` reference lets a resumed worker rebuild a stored
predecessor's result to seed its pending successors.

``python -m repro worker shard-0.json --store DIR`` executes the
manifest into a local :class:`~repro.runtime.store.ArtifactStore`;
``python -m repro merge DIR... --store MAIN`` folds the shard stores
back into the campaign store.  Workers are *resumable*: every finished
cell is persisted immediately, and a re-run skips keys already in the
store — so a crashed or preempted shard just restarts with the same
command line and only pays for its unfinished cells.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.obs.logging import StructuredLogger
from repro.obs.provenance import PROVENANCE_KEY
from repro.runtime import chaos
from repro.runtime.cell import Cell, resolve_ref
from repro.runtime.executors import (
    ExecutionAborted,
    ProcessPoolExecutor,
    partition_cells,
)
from repro.runtime.store import ArtifactStore, atomic_write_text

__all__ = [
    "CellExecutionError",
    "FAILURES_NAME",
    "MANIFEST_SCHEMA",
    "write_shard_manifests",
    "read_shard_manifest",
    "revoked_path_for",
    "read_revoked",
    "write_revoked",
    "read_failures",
    "write_failures",
    "run_manifest",
    "merge_stores",
]

MANIFEST_SCHEMA = 1

#: Per-shard failure report written by the coordinator into the shard
#: *store* root (next to ``manifest.json``) when cells are quarantined.
FAILURES_NAME = "failures.json"

FAILURES_SCHEMA = 1
REVOKED_SCHEMA = 1


class CellExecutionError(RuntimeError):
    """A cell function raised while a worker executed its shard.

    Distinct from manifest/store *configuration* errors (plain
    ``ValueError``/``OSError``) so the worker CLI can report it as
    *retryable* (exit code 3): the coordinator's response to a crashed
    cell is a retry with backoff, eventually quarantining the cell if
    it keeps killing workers — never a config-error abort.
    """


def revoked_path_for(manifest_path: str | Path) -> Path:
    """The revocation sidecar paired with a shard manifest.

    ``shards/shard-0.json`` pairs with ``shards/shard-0.revoked.json``;
    the coordinator appends stolen (and quarantined) cell keys there,
    and the worker consults it before every cell, so a slow shard's
    stolen chains stop costing it wall-clock mid-run.
    """
    path = Path(manifest_path)
    stem = path.name
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    return path.with_name(stem + ".revoked.json")


def read_revoked(path: str | Path) -> set[str]:
    """Keys revoked from a shard (empty when no sidecar exists)."""
    path = Path(path)
    if not path.exists():
        return set()
    payload = json.loads(path.read_text())
    return set(payload.get("keys", ()))


def write_revoked(path: str | Path, keys: Sequence[str]) -> None:
    """Atomically (re)write a revocation sidecar."""
    atomic_write_text(
        Path(path),
        json.dumps(
            {"schema": REVOKED_SCHEMA, "keys": sorted(set(keys))}, indent=2
        )
        + "\n",
    )


def read_failures(path: str | Path) -> dict | None:
    """A ``failures.json`` report, or ``None`` when absent."""
    path = Path(path)
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path} does not hold a JSON object")
    return payload


def write_failures(
    path: str | Path,
    cells: Mapping[str, Mapping],
    blocked: Sequence[str] = (),
) -> None:
    """Atomically write a failure report.

    ``cells`` maps each quarantined (poison) cell key to its record —
    shard, attempt count, last error; ``blocked`` lists chained
    successors that can never run because a predecessor is poisoned
    (reported separately: they are casualties, not causes).
    """
    atomic_write_text(
        Path(path),
        json.dumps(
            {
                "schema": FAILURES_SCHEMA,
                "cells": {key: dict(cells[key]) for key in sorted(cells)},
                "blocked": sorted(set(blocked)),
            },
            indent=2,
        )
        + "\n",
    )


def write_shard_manifests(
    cells: Sequence[Cell],
    n_shards: int,
    directory: str | Path,
    encode_ref: str,
    prefix: str = "shard",
    decode_ref: str | None = None,
    context_cells: Sequence[Cell] = (),
) -> list[Path]:
    """Partition ``cells`` and write one manifest file per shard.

    The partition is deterministic (see
    :func:`~repro.runtime.executors.partition_cells`), so regenerating
    manifests for the same matrix reproduces the same shard contents —
    a worker resuming against its old store finds its keys unchanged.
    Warm-fabric chains land whole on one shard; pass ``decode_ref`` so
    a resumed worker can rebuild a stored predecessor's result for its
    pending successors.

    ``context_cells`` are predecessors that are *not* part of the
    partition (already cached in the campaign store): any shard whose
    members chain after one gets its entry prepended, so the worker can
    decode the pre-seeded artifact — or recompute the predecessor from
    its payload if the artifact is absent.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    shards = partition_cells(cells, n_shards)
    context_by_key = {cell.key: cell for cell in context_cells}
    paths: list[Path] = []
    for index, shard in enumerate(shards):
        shard_keys = {cell.key for cell in shard}
        extras: list[Cell] = []
        for cell in shard:
            after = cell.after
            if (
                after is not None
                and after not in shard_keys
                and after in context_by_key
                and all(extra.key != after for extra in extras)
            ):
                extras.append(context_by_key[after])
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "shard": index,
            "n_shards": n_shards,
            "encode": encode_ref,
            "cells": [cell.to_entry() for cell in extras + shard],
        }
        if decode_ref is not None:
            manifest["decode"] = decode_ref
        path = directory / f"{prefix}-{index}.json"
        atomic_write_text(path, json.dumps(manifest, indent=2) + "\n")
        paths.append(path)
    return paths


def read_shard_manifest(path: str | Path) -> dict:
    """Load and validate a shard manifest."""
    path = Path(path)
    manifest = json.loads(path.read_text())
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ValueError(
            f"shard manifest {path} has schema {schema!r}; "
            f"this worker understands schema {MANIFEST_SCHEMA}"
        )
    for field in ("encode", "cells"):
        if field not in manifest:
            raise ValueError(f"shard manifest {path} is missing {field!r}")
    for index, entry in enumerate(manifest["cells"]):
        missing = {"fn", "payload", "key"} - set(entry)
        if missing:
            raise ValueError(
                f"shard manifest {path} cell #{index} is missing "
                f"{sorted(missing)}"
            )
    return manifest


def _chain_closure(seeds: set[str], cells: Sequence[Cell]) -> set[str]:
    """``seeds`` plus every cell chained (transitively) after one."""
    closed = set(seeds)
    changed = True
    while changed:
        changed = False
        for cell in cells:
            if cell.key not in closed and cell.after in closed:
                closed.add(cell.key)
                changed = True
    return closed


def run_manifest(
    manifest_path: str | Path,
    store_root: str | Path,
    workers: int = 1,
    echo: Callable[[str], None] | None = print,
    audit_resume: bool = True,
    revoked_path: str | Path | None = None,
    should_stop: Callable[[], bool] | None = None,
    on_stored: Callable[[str], None] | None = None,
) -> dict:
    """Execute a shard manifest into a local artifact store.

    Already-stored keys are skipped (that is the resume path), pending
    cells run serially or through a chunked process pool, and each
    result is encoded and persisted the moment it completes — a crash
    mid-shard therefore loses at most the cells in flight, never the
    finished ones.  Returns a summary dict with ``computed`` /
    ``cached`` / ``skipped`` / ``audit_failed`` key tuples.

    Three fault-tolerance hooks harden the loop:

    * resumed keys are *audited*, not trusted: each passes
      :meth:`ArtifactStore.verify` (document files present, readable,
      digests matching) before it counts as cached, and a key that
      fails the audit is deleted and recomputed (``audit_resume=False``
      restores the old trusting behaviour);
    * the revocation sidecar next to the manifest (see
      :func:`revoked_path_for`; ``revoked_path`` overrides it) is
      consulted before every cell, so chains the coordinator stole or
      quarantined are skipped — transitively, whole — instead of run;
    * ``should_stop()`` (wired to the lease heartbeat by the worker
      CLI) is checked between cells; when it fires the executor raises
      :class:`~repro.runtime.executors.ExecutionAborted` and the shard
      stops writing immediately.

    ``on_stored(key)`` is the sync hook: called after each cell's
    artifact is persisted locally (the worker CLI wires it to a
    :class:`~repro.runtime.remote.RemoteStore` push so remote stores
    track shard progress cell by cell).  It is best-effort by design —
    a raising hook is logged and the shard keeps computing; the local
    store is the source of truth and a final push can catch up.

    A cell function that raises surfaces as :class:`CellExecutionError`
    (retryable — worker exit code 3); manifest/store problems keep
    raising plain ``ValueError``/``OSError``.  Progress is reported as
    structured ``key=value`` log lines through ``echo`` (``None``
    silences them — the ``--quiet`` path), and every computed cell's
    execution provenance (wall seconds, peak RSS, step count) is stored
    in its manifest meta under
    :data:`~repro.obs.provenance.PROVENANCE_KEY`, where
    ``repro campaign status`` finds it.
    """
    chaos.active_injector()  # arm fault injection if the env asks for it
    log = StructuredLogger(echo=echo, component="worker")
    manifest = read_shard_manifest(manifest_path)
    encode = resolve_ref(manifest["encode"])
    store = ArtifactStore(store_root)
    cells = [Cell.from_entry(entry) for entry in manifest["cells"]]
    stored = set(store.keys())

    # Resume audit: a key in the manifest is only a cache hit if its
    # artifact survives an integrity audit — a torn or vanished
    # document file must trigger a recompute, not a silent skip that
    # merges a broken store.
    audit_failed: tuple[str, ...] = ()
    if audit_resume:
        resumed = [cell.key for cell in cells if cell.key in stored]
        if resumed:
            report = store.verify(keys=resumed)
            if not report.ok:
                bad = report.bad_keys()
                for problem in report.problems:
                    log.log(
                        "cell_audit_failed",
                        cell=problem.key,
                        document=problem.document,
                        kind=problem.kind,
                    )
                for key in bad:
                    try:
                        store.delete(key)
                    except KeyError:  # pragma: no cover - delete race
                        pass
                stored -= set(bad)
                audit_failed = tuple(bad)

    revoked_file = (
        Path(revoked_path)
        if revoked_path is not None
        else revoked_path_for(manifest_path)
    )
    revoked = _chain_closure(
        read_revoked(revoked_file) & {cell.key for cell in cells},
        cells,
    )
    skipped: list[str] = []

    cached = tuple(
        cell.key
        for cell in cells
        if cell.key in stored and cell.key not in revoked
    )
    pending = []
    for cell in cells:
        if cell.key in stored:
            continue
        if cell.key in revoked:
            skipped.append(cell.key)
            log.log("cell_skipped", cell=cell.key, reason="revoked")
        else:
            pending.append(cell)
    log.log(
        "shard_start",
        shard=manifest.get("shard", "?"),
        n_shards=manifest.get("n_shards", "?"),
        cells=len(cells),
        cached=len(cached),
        pending=len(pending),
        skipped=len(skipped),
        audit_failed=len(audit_failed),
        store=str(store.root),
    )

    # Chained resume: a pending successor whose predecessor is already
    # in the store (finished before a crash, or pre-seeded by the
    # coordinator for a cached cell) needs that predecessor's *result*,
    # which only the codec's decoder can rebuild from the documents.
    by_key = {cell.key: cell for cell in cells}
    pending_keys = {cell.key for cell in pending}
    upstream: dict[str, object] = {}
    for cell in pending:
        after = cell.after
        if after is None or after in pending_keys or after in upstream:
            continue
        if after not in stored:
            raise ValueError(
                f"cell {cell.key!r} chains after {after!r}, which is "
                "neither in this shard manifest nor in the shard store "
                "(chains must stay on one shard)"
            )
        decode_ref = manifest.get("decode")
        if decode_ref is None:
            raise ValueError(
                f"cell {cell.key!r} needs stored predecessor {after!r} "
                "decoded, but the shard manifest carries no 'decode' "
                "reference — regenerate the manifests"
            )
        predecessor = by_key.get(after)
        if predecessor is None:
            raise ValueError(
                f"cell {cell.key!r} chains after {after!r}, which is "
                "stored but absent from this shard manifest; cannot "
                "rebuild its result without its cell entry"
            )
        upstream[after] = resolve_ref(decode_ref)(
            predecessor, store.get(after)
        )

    computed: list[str] = []
    provenance: dict[str, dict] = {}

    def emit(cell: Cell, result: object, already_stored: bool) -> None:
        prov = provenance.get(cell.key)
        if not already_stored:
            documents, meta = encode(result)
            if prov is not None:
                # Provenance lives in manifest meta, never documents:
                # the store content hash (and shard == serial
                # byte-equivalence) must not see wall times.
                meta = dict(meta)
                meta[PROVENANCE_KEY] = prov
            try:
                store.put(cell.key, documents, meta=meta)
            except ValueError:
                # Another worker on the same store (an operator
                # relaunching a shard presumed dead) persisted this
                # cell after our snapshot; identical content, so losing
                # the race is not an error.
                if cell.key not in store:
                    raise
        computed.append(cell.key)
        log.log(
            "cell_done",
            shard=manifest.get("shard", "?"),
            cell=cell.key,
            already_stored=already_stored,
            wall_s=prov.get("wall_s", 0.0) if prov else 0.0,
        )
        if on_stored is not None:
            try:
                on_stored(cell.key)
            except Exception as exc:
                log.log("sync_hook_failed", cell=cell.key, error=str(exc))

    def live_skip(cell: Cell) -> bool:
        # Re-read the sidecar each time: the coordinator appends stolen
        # chains *while the worker runs*, and an O(cells) re-read of a
        # tiny JSON file is nothing next to a cell execution.
        return cell.key in read_revoked(revoked_file)

    def on_skip(cell: Cell) -> None:
        skipped.append(cell.key)
        log.log("cell_skipped", cell=cell.key, reason="revoked")

    try:
        ProcessPoolExecutor(workers).run(
            pending,
            emit,
            upstream=upstream,
            on_provenance=provenance.__setitem__,
            skip=live_skip,
            should_stop=should_stop,
            on_skip=on_skip,
        )
    except (ExecutionAborted, KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        # A raising cell function is *retryable* (the coordinator's
        # concern), unlike the manifest/store validation errors raised
        # above.  The original message is preserved verbatim so callers
        # matching on it keep working.
        raise CellExecutionError(str(exc)) from exc
    return {
        "shard": manifest.get("shard"),
        "n_shards": manifest.get("n_shards"),
        "store": str(store.root),
        "computed": tuple(computed),
        "cached": cached,
        "skipped": tuple(skipped),
        "audit_failed": audit_failed,
    }


def merge_stores(
    shard_roots: Sequence[str | Path],
    store_root: str | Path,
    allow_partial: bool = False,
) -> dict:
    """Fold shard stores into the campaign store, deterministically.

    Sources merge in the order given, keys within each in sorted
    order; keys the campaign store already holds are left untouched.
    A source without a manifest is refused — opening it would silently
    create an empty store, and a typo'd shard path must not merge as
    "nothing to adopt".

    A shard store carrying a ``failures.json`` report (the coordinator
    quarantined poison cells there) with *unresolved* cells — failed or
    blocked keys that never made it into the store — is likewise
    refused, because silently merging it would present a partial
    campaign as complete.  Pass ``allow_partial=True`` (CLI:
    ``--allow-partial``) to merge anyway; the summary then carries the
    unresolved ``failed`` / ``blocked`` key tuples so the caller can
    report the holes.

    Returns a summary with the adopted keys and the merged store's
    content hash (compare it across re-merges or machines to confirm
    determinism).
    """
    failed: set[str] = set()
    blocked: set[str] = set()
    for root in shard_roots:
        root = Path(root)
        if not (root / "manifest.json").exists():
            raise ValueError(
                f"shard store {root} has no manifest.json — not a store "
                "(wrong path, or the worker never ran?)"
            )
        report = read_failures(root / FAILURES_NAME)
        if report is None:
            continue
        present = set(ArtifactStore(root).keys())
        bad = set(report.get("cells", {})) - present
        held = set(report.get("blocked", ())) - present
        if (bad or held) and not allow_partial:
            raise ValueError(
                f"shard store {root} reports unresolved failures "
                f"({len(bad)} failed, {len(held)} blocked cells in "
                f"{FAILURES_NAME}); re-run the shard, or merge anyway "
                "with --allow-partial"
            )
        failed |= bad
        blocked |= held
    store = ArtifactStore(store_root)
    adopted = store.merge_from([ArtifactStore(root) for root in shard_roots])
    return {
        "store": str(store.root),
        "adopted": tuple(adopted),
        "total": len(store),
        "content_hash": store.content_hash(),
        "failed": tuple(sorted(failed)),
        "blocked": tuple(sorted(blocked)),
    }
