"""Content-addressed artifact store with atomic, durable writes.

One :class:`ArtifactStore` is the persistence substrate for every
campaign-shaped workload in the library: scenario sweeps, Table 3
measurement matrices, shard workers on other machines, and the bench
ledger's provenance records all write the same layout::

    <root>/
      manifest.json            index: key -> metadata (+ document list)
      <key>/
        <name>.json            one JSON document per named artifact part

Three durability rules make the store safe for crashed writers and
for concurrent writers on one machine:

* every file — documents and manifest alike — is written to a
  process-unique temp file, fsynced, and moved into place with
  :func:`os.replace`, so a reader can never observe a torn write;
* an artifact's documents are fully on disk (and synced) *before* its
  manifest entry is written, so a manifest can never point at files
  that do not exist.  A crash mid-store leaves at worst an orphaned
  artifact directory, which the next ``put`` of the same key adopts;
* manifest read-modify-writes hold an ``flock`` on a sidecar lock
  file, so two writers updating one store (a resumed worker racing
  the original it was presumed to have replaced) cannot lose each
  other's entries.  Because artifacts are content-addressed, racing
  writers produce identical documents — the lock only has to keep the
  *index* consistent.  (The lock is advisory and same-machine;
  cross-machine coordination goes through per-shard stores and an
  explicit merge, never a shared manifest.)

The store is content-addressed by convention: callers derive keys from
a content hash of the producing configuration (see
:meth:`repro.runtime.cell.Cell.key`), so two stores populated from the
same work — serially, via a process pool, or merged back from per-shard
stores on different machines — end up byte-identical
(:meth:`ArtifactStore.content_hash` makes that checkable).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

__all__ = [
    "ArtifactStore",
    "StoreCorruptionError",
    "StoreRepairReport",
    "StoreVerifyProblem",
    "StoreVerifyReport",
    "atomic_write_text",
    "validate_key",
]

_KEY_RE = re.compile(r"^[A-Za-z0-9._-]+$")

MANIFEST_NAME = "manifest.json"

#: Manifest-meta key under which per-document sha256 digests live.
#: Like execution provenance, digests ride in the manifest *meta* —
#: never in the documents — so :meth:`ArtifactStore.content_hash` (and
#: the serial == pool == shard byte-equivalence built on it) is
#: untouched by their presence.
DIGESTS_KEY = "sha256"


class StoreCorruptionError(RuntimeError):
    """A manifest entry and the files on disk disagree.

    Raised when reading an artifact whose directory or document files
    have gone missing behind the manifest's back (partial copy, manual
    deletion) — distinct from the ``KeyError`` of asking for a key that
    was never stored.  Thanks to the write ordering in
    :meth:`ArtifactStore.put`, a *crashed writer* can no longer produce
    this state; it now signals external interference.
    """


@dataclass(frozen=True)
class StoreVerifyProblem:
    """One manifest↔disk inconsistency found by :meth:`ArtifactStore.verify`.

    ``kind`` is one of ``missing-dir`` (manifested artifact has no
    directory), ``missing-file`` (a listed document file is absent),
    ``unreadable`` (the file exists but is not valid JSON — a torn or
    truncated write), ``digest-mismatch`` (bytes differ from the sha256
    recorded at ``put`` time), or ``stray-file`` (a document file the
    manifest entry does not list).
    """

    key: str
    document: str
    kind: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        text = f"{self.key}/{self.document}: {self.kind}"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class StoreVerifyReport:
    """Outcome of one integrity audit over a store (or a key subset).

    ``problems`` are genuine inconsistencies (the store is corrupt for
    those keys); ``orphans`` are artifact directories with no manifest
    entry — the benign residue of a writer killed mid-``put`` (the next
    ``put`` of the key adopts them), reported so an operator can
    reclaim the space but never counted as corruption.  ``undigested``
    keys parse fine but predate recorded sha256 digests, so their bytes
    are unauditable until :meth:`ArtifactStore.record_digests` runs —
    reported (not a problem) so the gap is visible instead of silent.
    """

    root: Path
    checked: int
    problems: list[StoreVerifyProblem] = field(default_factory=list)
    orphans: list[str] = field(default_factory=list)
    undigested: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def bad_keys(self) -> list[str]:
        """Keys with at least one problem, sorted."""
        return sorted({p.key for p in self.problems})


@dataclass
class StoreRepairReport:
    """Outcome of one :meth:`ArtifactStore.repair` pass.

    ``dropped`` are keys whose manifest entries were removed (their
    documents were corrupt or missing, so a re-run or ``pull`` must
    recompute them); ``removed_files`` are the document files deleted,
    as ``key/name.json`` strings.  Benign orphans are never touched.
    """

    dropped: list[str] = field(default_factory=list)
    removed_files: list[str] = field(default_factory=list)


def validate_key(key: str, kind: str = "artifact key") -> None:
    """Refuse keys that could escape the store root.

    fullmatch (not match) so a trailing newline cannot ride along, and
    all-dot names are refused: "." and ".." are valid per the character
    class but resolve outside the artifact's directory.
    """
    if not isinstance(key, str) or not _KEY_RE.fullmatch(key) or set(key) <= {"."}:
        raise ValueError(
            f"{kind} {key!r} must be filesystem-safe "
            "(letters, digits, dot, dash, underscore; not all dots)"
        )


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` durably: temp file + fsync + rename.

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems) with a process-unique name, so
    concurrent writers cannot trample each other's staging files and an
    interrupted write leaves the destination untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem refuses dir fsync
        pass
    finally:
        os.close(fd)


def _canonical_json(payload) -> str:
    """The one JSON rendering the store ever writes.

    Sorted keys and a fixed separator/indent policy make document bytes
    a pure function of their content, which is what lets
    :meth:`ArtifactStore.content_hash` compare stores across machines.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class ArtifactStore:
    """Directory-backed store of named JSON documents per artifact key."""

    #: Test-only seam for the chaos harness: when set (by
    #: :mod:`repro.runtime.chaos`), called as ``hook(key)`` after an
    #: artifact's documents are on disk but *before* its manifest entry
    #: is written — the exact instant a SIGKILL must leave nothing worse
    #: than an orphaned directory.  ``None`` in production.
    _chaos_put_hook: "Callable[[str], None] | None" = None

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / MANIFEST_NAME
        if not self._manifest_path.exists():
            self._write_manifest({})

    # -- manifest ----------------------------------------------------------
    def _read_manifest(self) -> dict:
        return json.loads(self._manifest_path.read_text())

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_text(self._manifest_path, _canonical_json(manifest))

    @contextmanager
    def _manifest_lock(self):
        """Exclusive advisory lock for manifest read-modify-writes.

        Readers stay lock-free (they only ever see a complete manifest
        thanks to the atomic rename); writers serialize so concurrent
        puts/deletes cannot drop each other's index entries.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        fd = os.open(self.root / ".manifest.lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def keys(self) -> list[str]:
        """All stored artifact keys, sorted."""
        return sorted(self._read_manifest())

    def __contains__(self, key: str) -> bool:
        return key in self._read_manifest()

    def __len__(self) -> int:
        return len(self._read_manifest())

    def meta(self, key: str) -> dict:
        """The manifest metadata recorded with :meth:`put`."""
        validate_key(key)
        manifest = self._read_manifest()
        if key not in manifest:
            raise KeyError(f"no stored artifact {key!r}")
        return dict(manifest[key])

    def manifest(self) -> dict[str, dict]:
        """A copy of the full manifest (key -> metadata)."""
        return {key: dict(entry) for key, entry in self._read_manifest().items()}

    # -- store / load ------------------------------------------------------
    def put(
        self,
        key: str,
        documents: Mapping[str, Mapping],
        meta: Mapping | None = None,
        overwrite: bool = False,
    ) -> Path:
        """Persist one artifact; refuses to overwrite unless asked.

        ``documents`` maps file stems to JSON-serializable payloads.
        All files land on disk (each atomically) before the manifest
        entry appears, so no observable manifest state ever references
        missing files.  The canonical sha256 of every document is
        recorded in the manifest entry under :data:`DIGESTS_KEY`, which
        is what :meth:`verify` audits disk bytes against.
        """
        validate_key(key)
        if not documents:
            raise ValueError(f"artifact {key!r} needs at least one document")
        for name in documents:
            validate_key(name, kind="document name")
        if not overwrite and key in self:
            raise ValueError(f"artifact {key!r} already stored")
        directory = self.root / key
        directory.mkdir(exist_ok=True)
        digests: dict[str, str] = {}
        for name, payload in documents.items():
            text = _canonical_json(payload)
            digests[name] = hashlib.sha256(text.encode()).hexdigest()
            atomic_write_text(directory / f"{name}.json", text)
        # Drop documents a previous version of the key wrote but this
        # one does not: the directory must mirror the manifest entry,
        # or the legacy glob fallback would resurrect stale files.
        # (Concurrent writers of the same key write the identical
        # content-addressed set, so this never removes a peer's work.)
        for stale in directory.glob("*.json"):
            if stale.stem not in documents:
                stale.unlink()
        if type(self)._chaos_put_hook is not None:
            type(self)._chaos_put_hook(key)
        entry = dict(meta or {})
        entry["documents"] = sorted(documents)
        entry[DIGESTS_KEY] = digests
        with self._manifest_lock():
            manifest = self._read_manifest()
            if not overwrite and key in manifest:
                # A concurrent writer won the race after our unlocked
                # probe; its documents are identical (content
                # addressing), so the refusal mirrors the serial case.
                raise ValueError(f"artifact {key!r} already stored")
            manifest[key] = entry
            self._write_manifest(manifest)
        return directory

    def _entry_document_names(self, key: str, entry: Mapping) -> list[str]:
        names = entry.get("documents")
        if names is None:
            # Pre-runtime manifests (seed-era TraceRepository) did not
            # record a document list; fall back to the files on disk.
            names = sorted(p.stem for p in (self.root / key).glob("*.json"))
        return list(names)

    def document_names(self, key: str) -> list[str]:
        """Names of the documents stored under ``key``."""
        return self._entry_document_names(key, self.meta(key))

    def _read_document_file(self, key: str, name: str) -> dict:
        """Read one document file, assuming the key is manifested."""
        path = self.root / key / f"{name}.json"
        if not path.exists():
            raise StoreCorruptionError(
                f"artifact {key!r} is in the manifest but its document "
                f"{path} is missing; the store is corrupt — delete the "
                "manifest entry or restore the files"
            )
        return json.loads(path.read_text())

    def read_document(self, key: str, name: str) -> dict:
        """Load one named document of a stored artifact."""
        validate_key(key)
        validate_key(name, kind="document name")
        if key not in self:
            raise KeyError(f"no stored artifact {key!r}")
        return self._read_document_file(key, name)

    def get(self, key: str, entry: Mapping | None = None) -> dict[str, dict]:
        """Load every document of a stored artifact, by name.

        ``entry`` lets bulk readers pass the key's already-read
        manifest entry (from one :meth:`manifest` snapshot), so loading
        N artifacts costs one manifest parse, not O(N).
        """
        validate_key(key)
        if entry is None:
            entry = self.meta(key)
        return {
            name: self._read_document_file(key, name)
            for name in self._entry_document_names(key, entry)
        }

    def delete(self, key: str) -> None:
        """Remove an artifact and its files.

        The manifest entry goes first, the files after: a crash
        mid-delete leaves at worst an orphaned directory (which a
        later ``put`` of the key adopts), never a manifest entry
        pointing at missing files.  Tolerates an already-missing
        artifact directory (the manifest-only state
        :meth:`read_document` reports) so a broken entry can always be
        cleared, as the corruption error's message advises.
        """
        validate_key(key)
        if key not in self:
            raise KeyError(f"no stored artifact {key!r}")
        with self._manifest_lock():
            manifest = self._read_manifest()
            manifest.pop(key, None)
            self._write_manifest(manifest)
        directory = self.root / key
        if directory.exists():
            for path in directory.glob("*.json"):
                path.unlink()
            directory.rmdir()

    # -- integrity ---------------------------------------------------------
    def verify(self, keys: Iterable[str] | None = None) -> StoreVerifyReport:
        """Audit manifest↔disk consistency; never modifies the store.

        For every manifested key (or just ``keys``), checks that the
        artifact directory exists, that every listed document file is
        present and parses as JSON, and — for entries written since
        digests were recorded — that the file bytes hash to the sha256
        recorded under :data:`DIGESTS_KEY` at ``put`` time.  Document
        files the entry does not list are flagged as strays (external
        interference; :meth:`put` prunes its own).  Artifact
        directories without a manifest entry are reported as orphans
        (the benign residue of a killed writer), not problems.

        This is the audit behind ``repro store verify`` and the
        worker's resume path: a key that fails it must be recomputed,
        not trusted as a cache hit.
        """
        manifest = self._read_manifest()
        if keys is None:
            wanted = sorted(manifest)
        else:
            wanted = sorted(set(keys))
            missing = [key for key in wanted if key not in manifest]
            if missing:
                raise KeyError(f"no stored artifact {missing[0]!r}")
        report = StoreVerifyReport(root=self.root, checked=len(wanted))
        for key in wanted:
            entry = manifest[key]
            names = self._entry_document_names(key, entry)
            directory = self.root / key
            if not directory.is_dir():
                report.problems.append(
                    StoreVerifyProblem(key, "*", "missing-dir")
                )
                continue
            digests = entry.get(DIGESTS_KEY)
            digests = digests if isinstance(digests, Mapping) else {}
            for name in names:
                path = directory / f"{name}.json"
                if not path.exists():
                    report.problems.append(
                        StoreVerifyProblem(key, name, "missing-file")
                    )
                    continue
                data = path.read_bytes()
                try:
                    json.loads(data)
                except ValueError as exc:
                    report.problems.append(
                        StoreVerifyProblem(key, name, "unreadable", str(exc))
                    )
                    continue
                recorded = digests.get(name)
                if recorded is None:
                    # Pre-digest entry: the file parses but its bytes
                    # are unauditable.  Not corruption — but not silent
                    # either; `repro store digest` closes the gap.
                    if key not in report.undigested:
                        report.undigested.append(key)
                else:
                    actual = hashlib.sha256(data).hexdigest()
                    if actual != recorded:
                        report.problems.append(
                            StoreVerifyProblem(
                                key,
                                name,
                                "digest-mismatch",
                                f"recorded {recorded[:12]}… got {actual[:12]}…",
                            )
                        )
            # Entries predating the recorded document list use the
            # files on disk as their truth, so nothing can be a stray.
            if entry.get("documents") is not None:
                listed = set(names)
                for path in sorted(directory.glob("*.json")):
                    if path.stem not in listed:
                        report.problems.append(
                            StoreVerifyProblem(key, path.stem, "stray-file")
                        )
        if keys is None:
            for path in sorted(self.root.iterdir()):
                if path.is_dir() and path.name not in manifest:
                    report.orphans.append(path.name)
        return report

    def repair(
        self, report: StoreVerifyReport | None = None
    ) -> StoreRepairReport:
        """Remove corrupt artifacts so a re-run or ``pull`` recomputes them.

        Keys with missing, truncated, or digest-mismatched documents
        lose their manifest entry first (the :meth:`delete` ordering,
        so a crash mid-repair cannot leave an entry pointing at deleted
        files) and their document files after.  Stray files — documents
        a healthy entry does not list — are deleted without touching
        the entry.  Benign orphan directories are never touched: they
        are a killed writer's residue, not corruption, and the next
        ``put`` adopts them.
        """
        if report is None:
            report = self.verify()
        drop_kinds = {"missing-dir", "missing-file", "unreadable",
                      "digest-mismatch"}
        dropped = sorted(
            {p.key for p in report.problems if p.kind in drop_kinds}
        )
        strays = sorted(
            (p.key, p.document)
            for p in report.problems
            if p.kind == "stray-file" and p.key not in set(dropped)
        )
        repaired = StoreRepairReport(dropped=dropped)
        if dropped:
            with self._manifest_lock():
                manifest = self._read_manifest()
                for key in dropped:
                    manifest.pop(key, None)
                self._write_manifest(manifest)
        for key in dropped:
            directory = self.root / key
            if not directory.exists():
                continue
            for path in sorted(directory.glob("*.json")):
                path.unlink()
                repaired.removed_files.append(f"{key}/{path.name}")
            try:
                directory.rmdir()
            except OSError:  # pragma: no cover - non-json residue
                pass
        for key, name in strays:
            path = self.root / key / f"{name}.json"
            if path.exists():
                path.unlink()
                repaired.removed_files.append(f"{key}/{name}.json")
        return repaired

    def record_digests(self, keys: Iterable[str] | None = None) -> list[str]:
        """Backfill sha256 digests for entries that predate them.

        Pre-PR7 manifests recorded no per-document digests, leaving
        those entries unauditable (``verify`` reports them as
        ``undigested``).  This computes the sha256 of each such
        document's bytes on disk and records it in the manifest entry
        — after first checking the bytes still parse as JSON, so a
        torn write is refused rather than blessed as truth.  Entries
        that already carry digests are left byte-untouched.  Returns
        the keys whose entries were updated, sorted.
        """
        updated: list[str] = []
        with self._manifest_lock():
            manifest = self._read_manifest()
            if keys is None:
                wanted = sorted(manifest)
            else:
                wanted = sorted(set(keys))
                missing = [key for key in wanted if key not in manifest]
                if missing:
                    raise KeyError(f"no stored artifact {missing[0]!r}")
            for key in wanted:
                entry = dict(manifest[key])
                names = self._entry_document_names(key, entry)
                digests = entry.get(DIGESTS_KEY)
                digests = (
                    dict(digests) if isinstance(digests, Mapping) else {}
                )
                changed = entry.get("documents") is None and bool(names)
                for name in names:
                    if name in digests:
                        continue
                    path = self.root / key / f"{name}.json"
                    if not path.exists():
                        raise StoreCorruptionError(
                            f"artifact {key!r} lists document {name!r} but "
                            f"{path} is missing; run verify/repair before "
                            "recording digests"
                        )
                    data = path.read_bytes()
                    try:
                        json.loads(data)
                    except ValueError as exc:
                        raise StoreCorruptionError(
                            f"artifact {key!r} document {name!r} is not "
                            f"valid JSON ({exc}); refusing to record a "
                            "digest of corrupt bytes"
                        ) from exc
                    digests[name] = hashlib.sha256(data).hexdigest()
                    changed = True
                if changed:
                    entry["documents"] = sorted(names)
                    entry[DIGESTS_KEY] = digests
                    manifest[key] = entry
                    updated.append(key)
            if updated:
                self._write_manifest(manifest)
        return updated

    # -- cross-store operations --------------------------------------------
    def adopt(
        self, key: str, files: Mapping[str, bytes], entry: Mapping
    ) -> Path:
        """Land externally-fetched documents with :meth:`put` discipline.

        The integrity gate for transported artifacts: every byte string
        in ``files`` must hash to the sha256 its manifest ``entry``
        records (and parse as JSON), or *nothing* lands — no corrupt
        document can ever acquire a manifest entry.  Write ordering
        matches :meth:`put`: all documents atomically on disk first,
        then the manifest entry under the lock.  A key that is already
        manifested keeps its existing entry (content addressing makes
        racing adopters byte-identical).
        """
        validate_key(key)
        if not files:
            raise ValueError(f"artifact {key!r} needs at least one document")
        for name in files:
            validate_key(name, kind="document name")
        entry = dict(entry)
        names = sorted(files)
        listed = entry.get("documents")
        if listed is not None and sorted(listed) != names:
            raise StoreCorruptionError(
                f"artifact {key!r} entry lists documents "
                f"{sorted(listed)} but {names} were supplied"
            )
        entry["documents"] = names
        digests = entry.get(DIGESTS_KEY)
        if not isinstance(digests, Mapping):
            raise StoreCorruptionError(
                f"artifact {key!r} cannot be adopted without recorded "
                "sha256 digests; compute them before landing"
            )
        for name in names:
            data = files[name]
            recorded = digests.get(name)
            if recorded is None:
                raise StoreCorruptionError(
                    f"artifact {key!r} document {name!r} has no recorded "
                    "digest; refusing to land unverifiable bytes"
                )
            actual = hashlib.sha256(data).hexdigest()
            if actual != recorded:
                raise StoreCorruptionError(
                    f"artifact {key!r} document {name!r} digest mismatch: "
                    f"recorded {recorded[:12]}… got {actual[:12]}…"
                )
            try:
                json.loads(data)
            except ValueError as exc:
                raise StoreCorruptionError(
                    f"artifact {key!r} document {name!r} is not valid "
                    f"JSON ({exc})"
                ) from exc
        directory = self.root / key
        directory.mkdir(exist_ok=True)
        for name in names:
            atomic_write_text(directory / f"{name}.json", files[name].decode())
        for stale in directory.glob("*.json"):
            if stale.stem not in files:
                stale.unlink()
        with self._manifest_lock():
            manifest = self._read_manifest()
            manifest.setdefault(key, entry)
            self._write_manifest(manifest)
        return directory

    def merge_from(
        self,
        others: "ArtifactStore" | Iterable["ArtifactStore"],
        keys: Iterable[str] | None = None,
    ) -> list[str]:
        """Adopt artifacts of ``others`` this store lacks.

        Shard stores merge deterministically: sources are processed in
        the order given, keys within each source in sorted order, and a
        key already present locally is left untouched (cells are pure
        functions of their content-hashed config, so duplicate keys
        hold identical content by construction).  ``keys`` restricts
        adoption to a wanted set, so a reused shard directory cannot
        leak a previous campaign's artifacts into this one.  Document
        files are copied byte-for-byte (preserving
        :meth:`content_hash` equality), each source document is
        re-hashed against the digest its entry recorded at ``put`` time
        — a corrupt shard store fails the merge loudly with the
        offending key instead of poisoning the merged store — and each
        source contributes one manifest update, not one per key.
        Returns the newly adopted keys in adoption order.
        """
        if isinstance(others, ArtifactStore):
            others = [others]
        wanted = None if keys is None else set(keys)
        adopted: list[str] = []
        staged: dict[str, dict] = {}
        present = set(self._read_manifest())
        for other in others:
            other_manifest = other._read_manifest()
            for key in sorted(other_manifest):
                if key in present or key in staged:
                    continue
                if wanted is not None and key not in wanted:
                    continue
                entry = dict(other_manifest[key])
                names = entry.get("documents")
                if names is None:
                    names = sorted(
                        p.stem for p in (other.root / key).glob("*.json")
                    )
                    entry["documents"] = names
                digests = entry.get(DIGESTS_KEY)
                digests = digests if isinstance(digests, Mapping) else {}
                directory = self.root / key
                directory.mkdir(exist_ok=True)
                for name in names:
                    source = other.root / key / f"{name}.json"
                    if not source.exists():
                        raise StoreCorruptionError(
                            f"artifact {key!r} in {other.root} lists "
                            f"document {name!r} but {source} is missing; "
                            "re-run that shard or delete the entry"
                        )
                    data = source.read_bytes()
                    recorded = digests.get(name)
                    if recorded is not None:
                        actual = hashlib.sha256(data).hexdigest()
                        if actual != recorded:
                            raise StoreCorruptionError(
                                f"artifact {key!r} document {name!r} in "
                                f"{other.root} is corrupt: recorded sha256 "
                                f"{recorded[:12]}… but bytes hash to "
                                f"{actual[:12]}…; repair that shard store "
                                "before merging"
                            )
                    atomic_write_text(
                        directory / f"{name}.json", data.decode()
                    )
                staged[key] = entry
                adopted.append(key)
        if staged:
            with self._manifest_lock():
                manifest = self._read_manifest()
                for key, entry in staged.items():
                    manifest.setdefault(key, entry)
                self._write_manifest(manifest)
        return adopted

    def content_hash(self) -> str:
        """Order-independent digest of every stored document's bytes.

        Two stores that hold the same artifacts — regardless of the
        executor, worker count, or shard partitioning that produced
        them — report the same hash, which is how the executor
        equivalence suite (and a cautious operator) verifies a merge.
        """
        digest = hashlib.sha256()
        for key in self.keys():
            for name in self.document_names(key):
                path = self.root / key / f"{name}.json"
                digest.update(f"{key}/{name}\n".encode())
                digest.update(path.read_bytes())
        return digest.hexdigest()
