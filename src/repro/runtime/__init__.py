"""repro.runtime — the unified campaign execution layer.

The paper's core argument is that credible cloud-performance
conclusions require *many* long, repeated campaigns; this package is
the substrate that makes such campaigns cheap to run, cache, and
distribute.  Every campaign-shaped workload in the library — scenario
sweeps (:mod:`repro.scenarios`), Table 3 measurement matrices
(:mod:`repro.measurement`), figure replay sweeps (:mod:`repro.paper`),
and the bench suite's provenance records (:mod:`repro.bench`) — runs
through the same three abstractions:

* :class:`~repro.runtime.cell.Cell` — the unit of work: a pure,
  import-referenced function plus a JSON payload, identified by a
  content hash so equal work shares one cache key everywhere;
* :class:`~repro.runtime.store.ArtifactStore` — a content-addressed
  directory store of JSON documents with atomic, crash-safe manifest
  writes (documents land before the manifest entry, every file is
  temp-written, fsynced, and renamed into place);
* executors (:mod:`repro.runtime.executors`) —
  :class:`~repro.runtime.executors.SerialExecutor`,
  :class:`~repro.runtime.executors.ProcessPoolExecutor` (chunked), and
  :class:`~repro.runtime.executors.ShardExecutor`, which partitions a
  matrix into per-machine shard manifests executed by
  ``python -m repro worker`` and merged back deterministically with
  ``python -m repro merge``.

Because cells are pure and content-keyed, executor choice never
changes results: serial, pooled, and sharded runs of the same matrix
produce byte-identical stores (checkable via
:meth:`~repro.runtime.store.ArtifactStore.content_hash`).
:class:`~repro.runtime.campaign.CampaignRunner` is the shared
orchestration loop: snapshot the manifest, decode cached cells, run
pending ones, persist each result as it arrives.

**The failure model.**  Multi-day campaigns on preemptible cloud
nodes *will* lose workers, and the runtime is built so that losing one
is boring.  The assumptions and guarantees, from the bottom up:

* *Store writes are crash-atomic.*  Every file is temp-written,
  fsynced, and renamed; document files land before their manifest
  entry.  A worker SIGKILLed mid-``put`` leaves at worst an orphan
  directory (adopted by the next ``put``), never a manifested artifact
  whose bytes are missing or torn.
  :meth:`~repro.runtime.store.ArtifactStore.verify` (CLI:
  ``repro store verify``) audits exactly this contract — documents
  present, parseable, and matching the sha256 recorded at write time.
* *Resume is audit-first.*  A restarted worker re-verifies the keys it
  would skip and recomputes any that fail the audit, so a corrupted
  artifact can't hide behind the resume path
  (:func:`~repro.runtime.worker.run_manifest`).
* *Workers are expendable; the coordinator is the failure domain that
  matters.*  ``repro campaign run``
  (:func:`~repro.runtime.coordinator.run_campaign`) supervises one
  leased worker subprocess per shard: heartbeat-renewed lease files
  detect death (no cooperation from a SIGKILLed worker needed), dead
  shards relaunch with exponential backoff, and resume makes each
  relaunch pay only for unfinished cells.  Worker exit codes are a
  protocol: 0 done, 2 config error, 3 retryable, 4 quarantined
  failures present.
* *Poison cells cost their chain, not the campaign.*  Each worker
  death is blamed on the first unfinished cell (exact, because workers
  execute serially in manifest order); a cell exhausting its retry
  budget is quarantined into ``failures.json`` with its chained
  successors as ``blocked``, and
  :func:`~repro.runtime.worker.merge_stores` refuses such stores
  unless explicitly told ``allow_partial``.
* *Recovery never changes results.*  Retries, reassignment, and work
  stealing (idle workers taking pending chains from the busiest live
  shard) can at worst compute a cell twice — and duplicates are
  byte-identical because cells are pure and content-keyed.  The chaos
  harness (:mod:`repro.runtime.chaos`) enforces this as a test
  invariant: kill workers anywhere and the merged store hash must
  equal the serial run's.
* *The network is the last untrusted party.*  Stores cross machines
  only through :mod:`repro.runtime.remote`: a pluggable
  :class:`~repro.runtime.remote.Transport` moves opaque bytes, and
  :class:`~repro.runtime.remote.RemoteStore` layers on everything the
  transport is not trusted to provide — digest-keyed delta transfer,
  sha256 re-verification of every transferred document (re-fetch /
  re-upload on mismatch), bounded retries drawing the coordinator's
  own deterministic backoff schedule
  (:class:`~repro.runtime.remote.RetryPolicy`), per-operation
  timeouts, and the same documents-before-manifest landing order via
  :meth:`~repro.runtime.store.ArtifactStore.adopt`.  A transfer the
  link drops, truncates, corrupts, or stalls can delay convergence
  but never lands a corrupt document in a manifest; a pull that
  cannot complete leaves the local store valid and reports exactly
  which keys are missing.  The chaos harness extends the convergence
  invariant across the wire: inject any transport fault and the
  pulled-and-merged store hash must still equal the serial run's.
"""

from repro.runtime.campaign import ArtifactCodec, CampaignRunner, RuntimeOutcome
from repro.runtime.cell import (
    Cell,
    cell_key,
    execute_cell,
    execute_cell_graph,
    order_cells,
    resolve_ref,
)
from repro.runtime.coordinator import (
    LeaseHeartbeat,
    LeaseLostError,
    acquire_lease,
    lease_path_for,
    release_lease,
    renew_lease,
    run_campaign,
)
from repro.runtime.executors import (
    ExecutionAborted,
    ProcessPoolExecutor,
    SerialExecutor,
    ShardExecutor,
    cell_components,
    partition_cells,
)
from repro.runtime.remote import (
    FaultyTransport,
    LocalDirTransport,
    RemoteStore,
    RetryPolicy,
    SyncReport,
    Transport,
    TransportError,
    TransportNotFoundError,
    TransportTimeoutError,
    open_transport,
    read_sync_state,
)
from repro.runtime.store import (
    ArtifactStore,
    StoreCorruptionError,
    StoreRepairReport,
    StoreVerifyProblem,
    StoreVerifyReport,
    atomic_write_text,
    validate_key,
)
from repro.runtime.worker import (
    FAILURES_NAME,
    MANIFEST_SCHEMA,
    CellExecutionError,
    merge_stores,
    read_failures,
    read_shard_manifest,
    run_manifest,
    write_shard_manifests,
)

__all__ = [
    "ArtifactCodec",
    "ArtifactStore",
    "CampaignRunner",
    "Cell",
    "CellExecutionError",
    "ExecutionAborted",
    "FAILURES_NAME",
    "FaultyTransport",
    "LeaseHeartbeat",
    "LeaseLostError",
    "LocalDirTransport",
    "MANIFEST_SCHEMA",
    "ProcessPoolExecutor",
    "RemoteStore",
    "RetryPolicy",
    "RuntimeOutcome",
    "SerialExecutor",
    "ShardExecutor",
    "StoreCorruptionError",
    "StoreRepairReport",
    "StoreVerifyProblem",
    "StoreVerifyReport",
    "SyncReport",
    "Transport",
    "TransportError",
    "TransportNotFoundError",
    "TransportTimeoutError",
    "acquire_lease",
    "atomic_write_text",
    "cell_components",
    "cell_key",
    "execute_cell",
    "execute_cell_graph",
    "lease_path_for",
    "merge_stores",
    "open_transport",
    "order_cells",
    "partition_cells",
    "read_failures",
    "read_shard_manifest",
    "read_sync_state",
    "release_lease",
    "renew_lease",
    "resolve_ref",
    "run_campaign",
    "run_manifest",
    "validate_key",
    "write_shard_manifests",
]
