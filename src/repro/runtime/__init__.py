"""repro.runtime — the unified campaign execution layer.

The paper's core argument is that credible cloud-performance
conclusions require *many* long, repeated campaigns; this package is
the substrate that makes such campaigns cheap to run, cache, and
distribute.  Every campaign-shaped workload in the library — scenario
sweeps (:mod:`repro.scenarios`), Table 3 measurement matrices
(:mod:`repro.measurement`), figure replay sweeps (:mod:`repro.paper`),
and the bench suite's provenance records (:mod:`repro.bench`) — runs
through the same three abstractions:

* :class:`~repro.runtime.cell.Cell` — the unit of work: a pure,
  import-referenced function plus a JSON payload, identified by a
  content hash so equal work shares one cache key everywhere;
* :class:`~repro.runtime.store.ArtifactStore` — a content-addressed
  directory store of JSON documents with atomic, crash-safe manifest
  writes (documents land before the manifest entry, every file is
  temp-written, fsynced, and renamed into place);
* executors (:mod:`repro.runtime.executors`) —
  :class:`~repro.runtime.executors.SerialExecutor`,
  :class:`~repro.runtime.executors.ProcessPoolExecutor` (chunked), and
  :class:`~repro.runtime.executors.ShardExecutor`, which partitions a
  matrix into per-machine shard manifests executed by
  ``python -m repro worker`` and merged back deterministically with
  ``python -m repro merge``.

Because cells are pure and content-keyed, executor choice never
changes results: serial, pooled, and sharded runs of the same matrix
produce byte-identical stores (checkable via
:meth:`~repro.runtime.store.ArtifactStore.content_hash`).
:class:`~repro.runtime.campaign.CampaignRunner` is the shared
orchestration loop: snapshot the manifest, decode cached cells, run
pending ones, persist each result as it arrives.
"""

from repro.runtime.campaign import ArtifactCodec, CampaignRunner, RuntimeOutcome
from repro.runtime.cell import (
    Cell,
    cell_key,
    execute_cell,
    execute_cell_graph,
    order_cells,
    resolve_ref,
)
from repro.runtime.executors import (
    ProcessPoolExecutor,
    SerialExecutor,
    ShardExecutor,
    cell_components,
    partition_cells,
)
from repro.runtime.store import (
    ArtifactStore,
    StoreCorruptionError,
    atomic_write_text,
    validate_key,
)
from repro.runtime.worker import (
    MANIFEST_SCHEMA,
    merge_stores,
    read_shard_manifest,
    run_manifest,
    write_shard_manifests,
)

__all__ = [
    "ArtifactCodec",
    "ArtifactStore",
    "CampaignRunner",
    "Cell",
    "MANIFEST_SCHEMA",
    "ProcessPoolExecutor",
    "RuntimeOutcome",
    "SerialExecutor",
    "ShardExecutor",
    "StoreCorruptionError",
    "atomic_write_text",
    "cell_components",
    "cell_key",
    "execute_cell",
    "execute_cell_graph",
    "merge_stores",
    "order_cells",
    "partition_cells",
    "read_shard_manifest",
    "resolve_ref",
    "run_manifest",
    "validate_key",
    "write_shard_manifests",
]
