"""Pluggable executors: how a set of cells turns into results.

Three strategies cover the campaign scales the paper argues for:

* :class:`SerialExecutor` — one cell at a time, in submission order;
  the reference semantics everything else must match bit-for-bit.
* :class:`ProcessPoolExecutor` — a chunked :mod:`multiprocessing`
  pool (the PR 3 policy: ``min(workers, n)`` processes, ~4 chunks per
  worker so large matrices stop paying one IPC round-trip per cell).
  Results are emitted as they arrive so the caller can persist them
  incrementally — a killed sweep keeps its finished cells.
* :class:`ShardExecutor` — campaign-level sharding across *machines*:
  the cell set is partitioned deterministically into per-shard JSON
  manifests, each executed by ``python -m repro worker <manifest>``
  (in-process by default, or as a real subprocess), and the per-shard
  artifact stores are merged back into the campaign store.  Because
  cells are pure and content-keyed, the merged store is byte-identical
  to what a serial run would have produced.

Every executor funnels results through the same ``emit(cell, result,
stored)`` callback; ``stored=True`` tells the caller the artifact
already reached the store through a worker, so it must not be written
twice.  Callers that want execution provenance (per-cell wall time,
peak RSS, step count) pass ``on_provenance(key, record)``, invoked
just before the cell's ``emit`` — the serial and pooled executors
measure it where the cell actually ran; the shard executor leaves it
to the workers, which persist provenance into their shard stores.

Warm-fabric chains (cells whose ``after`` names a predecessor) add one
constraint every strategy honors identically: a chain executes in
dependency order with each successor fed its predecessor's result, and
a whole chain stays in one process / pool task / shard
(:func:`cell_components` groups them), so serial, pooled, and sharded
runs of a chained matrix remain byte-identical.
"""

from __future__ import annotations

import json
import multiprocessing
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.obs.provenance import cell_provenance
from repro.runtime.cell import Cell, execute_cell_graph, order_cells
from repro.runtime.store import ArtifactStore

__all__ = [
    "ExecutionAborted",
    "SerialExecutor",
    "BatchExecutor",
    "ProcessPoolExecutor",
    "ShardExecutor",
    "cell_components",
    "partition_cells",
]

#: ``emit(cell, result, stored)`` — invoked once per completed cell.
EmitFn = Callable[[Cell, object, bool], None]


class ExecutionAborted(RuntimeError):
    """An executor stopped early because ``should_stop`` returned True.

    Raised by the serial and pooled executors between cells when the
    caller's stop predicate fires — a worker whose lease was stolen
    must abandon the shard rather than keep writing to a store another
    worker now owns.  Cells emitted before the abort are already
    persisted by the caller; nothing is rolled back.
    """


def cell_components(cells: Sequence[Cell]) -> list[list[Cell]]:
    """Group cells into chain components, deterministically ordered.

    Cells connected through ``after`` links *within the set* form one
    component (a warm-fabric chain; links to keys outside the set do
    not merge components — those predecessors are cached and shipped
    as upstream results).  Components are sorted by their smallest
    member key and each component's cells are in dependency order, so
    the grouping is a pure function of the cell set — the property the
    shard partition needs for crash-resume stability.
    """
    parent = {cell.key: cell.key for cell in cells}

    def find(key: str) -> str:
        while parent[key] != key:
            parent[key] = parent[parent[key]]
            key = parent[key]
        return key

    for cell in cells:
        if cell.after is not None and cell.after in parent:
            root_a, root_b = find(cell.key), find(cell.after)
            if root_a != root_b:
                # Attach the larger root under the smaller, so every
                # component's root is its minimum key.
                parent[max(root_a, root_b)] = min(root_a, root_b)
    groups: dict[str, list[Cell]] = {}
    for cell in cells:
        groups.setdefault(find(cell.key), []).append(cell)
    return [order_cells(groups[root]) for root in sorted(groups)]


def partition_cells(cells: Sequence[Cell], n_shards: int) -> list[list[Cell]]:
    """Deterministic round-robin partition over chain components.

    Components (single cells, or whole warm-fabric chains — a chain
    never splits across shards) are ordered by their smallest key and
    dealt round-robin, which makes the partition a pure function of
    the cell *set* (not its submission order): re-generating shard
    manifests for the same matrix always assigns every cell to the
    same shard — which is what lets a crashed shard resume against its
    old store.  For chainless matrices this reduces exactly to the
    historical key-sorted round-robin over individual cells.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    shards: list[list[Cell]] = [[] for _ in range(n_shards)]
    for index, component in enumerate(cell_components(cells)):
        shards[index % n_shards].extend(component)
    return shards


def _component_tasks(
    cells: Sequence[Cell], upstream: Mapping[str, object]
) -> list[tuple[list[Cell], dict[str, object]]]:
    """Pair each chain component with the upstream results it needs."""
    keys = {cell.key for cell in cells}
    tasks = []
    for component in cell_components(cells):
        need: dict[str, object] = {}
        for cell in component:
            if cell.after is not None and cell.after not in keys:
                if cell.after not in upstream:
                    raise ValueError(
                        f"cell {cell.key!r} needs predecessor "
                        f"{cell.after!r}, which is neither pending nor "
                        "available as a cached upstream result"
                    )
                need[cell.after] = upstream[cell.after]
        tasks.append((component, need))
    return tasks


class SerialExecutor:
    """Run cells one at a time in the current process.

    Because cells execute strictly in dependency order, this executor
    supports the runtime's two between-cell control hooks exactly:
    ``should_stop()`` is consulted before every cell (abandon the rest
    of the shard — lease lost), and ``skip(cell)`` revokes a cell just
    before it would run (the coordinator stole its chain).  A skipped
    cell's chained successors are skipped transitively — a chain is
    revoked whole — and each lands one ``on_skip(cell)`` callback so
    the caller can account for it.
    """

    def run(
        self,
        cells: Sequence[Cell],
        emit: EmitFn,
        upstream: Mapping[str, object] | None = None,
        on_provenance: Callable[[str, dict], None] | None = None,
        skip: Callable[[Cell], bool] | None = None,
        should_stop: Callable[[], bool] | None = None,
        on_skip: Callable[[Cell], None] | None = None,
        **_: object,
    ) -> None:
        from repro.runtime import chaos

        results: dict[str, object] = dict(upstream or {})
        skipped: set[str] = set()
        for cell in order_cells(cells):
            if should_stop is not None and should_stop():
                raise ExecutionAborted(
                    f"execution stopped before cell {cell.key!r}"
                )
            if (cell.after in skipped) or (
                skip is not None and skip(cell)
            ):
                skipped.add(cell.key)
                if on_skip is not None:
                    on_skip(cell)
                continue
            monkey = chaos.active_injector()
            if monkey is not None:
                monkey.before_cell(cell.key)
            t0 = time.perf_counter()
            if cell.after is not None:
                if cell.after not in results:
                    raise ValueError(
                        f"cell {cell.key!r} needs predecessor "
                        f"{cell.after!r}, which is neither pending nor "
                        "available as a cached upstream result"
                    )
                result = cell.run(results[cell.after])
            else:
                result = cell.run()
            results[cell.key] = result
            if on_provenance is not None:
                on_provenance(
                    cell.key,
                    cell_provenance(time.perf_counter() - t0, result),
                )
            emit(cell, result, False)


class BatchExecutor:
    """Run independent cells in lockstep batches through a batch runner.

    The opt-in single-process alternative to :class:`SerialExecutor`
    for campaign matrices whose cells are small simulations: instead of
    ``cell.run()`` one cell at a time, independent cells go to
    ``batch_runner(payloads, upstreams)`` in groups of ``batch_size``,
    which advances them together (see
    :mod:`repro.simulator.multistream`) and returns one result per
    payload — *bit-identical* to running the cells serially, just
    cheaper, because per-step numpy dispatch amortizes across the
    batch.  The scenario layer's runner is
    ``repro.scenarios.orchestrate:run_scenario_payloads_batched``
    (see :func:`repro.scenarios.orchestrate.batch_executor`).

    Warm-fabric chains cannot run lockstep (a successor needs its
    predecessor's *final* fabric), so multi-cell chain components fall
    back to :class:`SerialExecutor` semantics after the batches, with
    every batched result available as upstream context.  ``skip`` is
    evaluated at dispatch (as in the pool executor), ``should_stop``
    between batches, and chaos injection fires per cell before its
    batch runs.

    Per-cell provenance from a batch reports the batch's wall clock
    split evenly across its cells — the batch advances cells in
    lockstep, so no finer per-cell attribution exists.
    """

    def __init__(self, batch_runner: Callable, batch_size: int = 32) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_runner = batch_runner
        self.batch_size = batch_size

    def run(
        self,
        cells: Sequence[Cell],
        emit: EmitFn,
        upstream: Mapping[str, object] | None = None,
        on_provenance: Callable[[str, dict], None] | None = None,
        skip: Callable[[Cell], bool] | None = None,
        should_stop: Callable[[], bool] | None = None,
        on_skip: Callable[[Cell], None] | None = None,
        **_: object,
    ) -> None:
        from repro.runtime import chaos

        results: dict[str, object] = dict(upstream or {})
        singles: list[Cell] = []
        chained: list[Cell] = []
        for component in cell_components(cells):
            if len(component) == 1:
                singles.extend(component)
            else:
                chained.extend(component)
        if skip is not None:
            kept = []
            for cell in singles:
                if skip(cell):
                    if on_skip is not None:
                        on_skip(cell)
                else:
                    kept.append(cell)
            singles = kept
        for start in range(0, len(singles), self.batch_size):
            batch = singles[start : start + self.batch_size]
            if should_stop is not None and should_stop():
                raise ExecutionAborted(
                    f"execution stopped before cell {batch[0].key!r}"
                )
            monkey = chaos.active_injector()
            if monkey is not None:
                for cell in batch:
                    monkey.before_cell(cell.key)
            upstreams = []
            for cell in batch:
                if cell.after is None:
                    upstreams.append(None)
                elif cell.after in results:
                    upstreams.append(results[cell.after])
                else:
                    raise ValueError(
                        f"cell {cell.key!r} needs predecessor "
                        f"{cell.after!r}, which is neither pending nor "
                        "available as a cached upstream result"
                    )
            t0 = time.perf_counter()
            batch_results = self.batch_runner(
                [cell.payload for cell in batch], upstreams
            )
            wall = time.perf_counter() - t0
            if len(batch_results) != len(batch):
                raise ValueError(
                    f"batch runner returned {len(batch_results)} results "
                    f"for {len(batch)} cells"
                )
            share = wall / len(batch)
            for cell, result in zip(batch, batch_results):
                results[cell.key] = result
                if on_provenance is not None:
                    on_provenance(cell.key, cell_provenance(share, result))
                emit(cell, result, False)
        if chained:
            SerialExecutor().run(
                chained,
                emit,
                upstream=results,
                on_provenance=on_provenance,
                skip=skip,
                should_stop=should_stop,
                on_skip=on_skip,
            )


class ProcessPoolExecutor:
    """Chunked multiprocessing pool, results emitted as they arrive.

    The pool's unit of work is a chain component, so a warm-fabric
    chain runs start-to-finish inside one worker process while
    independent cells (and independent chains) still parallelize.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(
        self,
        cells: Sequence[Cell],
        emit: EmitFn,
        upstream: Mapping[str, object] | None = None,
        on_provenance: Callable[[str, dict], None] | None = None,
        skip: Callable[[Cell], bool] | None = None,
        should_stop: Callable[[], bool] | None = None,
        on_skip: Callable[[Cell], None] | None = None,
        **_: object,
    ) -> None:
        if self.workers == 1 or len(cells) <= 1:
            SerialExecutor().run(
                cells,
                emit,
                upstream=upstream,
                on_provenance=on_provenance,
                skip=skip,
                should_stop=should_stop,
                on_skip=on_skip,
            )
            return
        by_key = {cell.key: cell for cell in cells}
        tasks = _component_tasks(cells, dict(upstream or {}))
        if skip is not None:
            # Revocation is component-granular here: a chain already
            # dispatched to a pool process cannot be recalled, so the
            # skip predicate is evaluated once, at dispatch.  Only
            # fully revoked components are dropped — a half-revoked one
            # (which a whole-chain steal never produces) runs intact.
            kept = []
            for component, need in tasks:
                if all(skip(cell) for cell in component):
                    if on_skip is not None:
                        for cell in component:
                            on_skip(cell)
                else:
                    kept.append((component, need))
            tasks = kept
            if not tasks:
                return
        n_workers = min(self.workers, len(tasks))
        chunksize = max(1, len(tasks) // (n_workers * 4))
        with multiprocessing.Pool(n_workers) as pool:
            for triples in pool.imap_unordered(
                execute_cell_graph, tasks, chunksize=chunksize
            ):
                if should_stop is not None and should_stop():
                    pool.terminate()
                    raise ExecutionAborted(
                        "execution stopped between pool results"
                    )
                for key, result, prov in triples:
                    if on_provenance is not None:
                        on_provenance(key, prov)
                    emit(by_key[key], result, False)


class ShardExecutor:
    """Partition a campaign into per-machine shard manifests and merge.

    ``run`` drives the full round trip locally — write manifests,
    execute each through the worker entry point, merge the shard
    stores, decode results — which is exactly what the distributed
    deployment does by hand::

        # coordinator
        campaign.shard_manifests("shards/", n_shards=4)
        # one machine per manifest
        python -m repro worker shards/shard-0.json --store shard0-store
        # coordinator again
        python -m repro merge shard0-store ... --store campaign-store

    ``via_subprocess=True`` makes ``run`` spawn the real CLI instead of
    calling the worker in-process, so tests and CI can exercise the
    shipped command line end to end.
    """

    def __init__(
        self,
        n_shards: int,
        work_dir: str | Path | None = None,
        workers_per_shard: int = 1,
        via_subprocess: bool = False,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.work_dir = Path(work_dir) if work_dir is not None else None
        self.workers_per_shard = workers_per_shard
        self.via_subprocess = via_subprocess

    def run(
        self,
        cells: Sequence[Cell],
        emit: EmitFn,
        codec=None,
        store: ArtifactStore | None = None,
        upstream: Mapping[str, object] | None = None,
        upstream_cells: Mapping[str, Cell] | None = None,
        **_: object,
    ) -> None:
        # Imported here, not at module top: worker imports executors.
        from repro.runtime.worker import run_manifest, write_shard_manifests

        if codec is None:
            raise ValueError(
                "ShardExecutor needs a codec: shard workers persist "
                "results as store artifacts, so the campaign must know "
                "how to encode and decode them"
            )
        work_dir = self.work_dir
        staging = None
        if work_dir is None:
            staging = tempfile.TemporaryDirectory(prefix="repro-shards-")
            work_dir = Path(staging.name)
        try:
            work_dir.mkdir(parents=True, exist_ok=True)
            campaign_store = store
            if store is None:
                store = ArtifactStore(work_dir / "merged-store")
            upstream_keys = set(upstream_cells or {})
            manifests = write_shard_manifests(
                cells,
                n_shards=self.n_shards,
                directory=work_dir,
                encode_ref=codec.encode_ref,
                decode_ref=codec.decode_ref,
                context_cells=list((upstream_cells or {}).values()),
            )
            shard_stores = []
            for index, manifest in enumerate(manifests):
                shard_root = work_dir / f"shard-{index}-store"
                # A chained cell whose predecessor was a cache hit
                # resumes from its shard store: copy the predecessor
                # artifact in so the worker finds it exactly as if a
                # previous worker run had produced it.  The manifest is
                # the single source of truth for which cached
                # predecessors a shard needs — write_shard_manifests
                # prepended their context entries.
                entries = json.loads(manifest.read_text())["cells"]
                cached_needed = sorted(
                    entry["key"]
                    for entry in entries
                    if entry["key"] in upstream_keys
                )
                if cached_needed:
                    if campaign_store is None:
                        raise ValueError(
                            "chained cells with cached predecessors "
                            "require a campaign store to ship the "
                            "predecessor artifacts to shard workers"
                        )
                    ArtifactStore(shard_root).merge_from(
                        campaign_store, keys=cached_needed
                    )
                if self.via_subprocess:
                    self._run_worker_cli(manifest, shard_root)
                else:
                    run_manifest(
                        manifest,
                        shard_root,
                        workers=self.workers_per_shard,
                        echo=None,
                    )
                shard_stores.append(ArtifactStore(shard_root))
            # Adopt only this run's cells: a reused work_dir may hold
            # shard stores from an earlier, different matrix, and those
            # artifacts must not leak into the campaign store (which
            # has to stay byte-identical to a serial run).
            store.merge_from(shard_stores, keys=[c.key for c in cells])
            manifest = store.manifest()
            for cell in cells:
                emit(
                    cell,
                    codec.decode(
                        cell, store.get(cell.key, entry=manifest[cell.key])
                    ),
                    True,
                )
        finally:
            if staging is not None:
                staging.cleanup()

    def _run_worker_cli(self, manifest: Path, store_root: Path) -> None:
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(manifest),
                "--store",
                str(store_root),
                "--workers",
                str(self.workers_per_shard),
            ],
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"shard worker failed for {manifest}:\n{completed.stderr}"
            )
