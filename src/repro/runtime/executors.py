"""Pluggable executors: how a set of cells turns into results.

Three strategies cover the campaign scales the paper argues for:

* :class:`SerialExecutor` — one cell at a time, in submission order;
  the reference semantics everything else must match bit-for-bit.
* :class:`ProcessPoolExecutor` — a chunked :mod:`multiprocessing`
  pool (the PR 3 policy: ``min(workers, n)`` processes, ~4 chunks per
  worker so large matrices stop paying one IPC round-trip per cell).
  Results are emitted as they arrive so the caller can persist them
  incrementally — a killed sweep keeps its finished cells.
* :class:`ShardExecutor` — campaign-level sharding across *machines*:
  the cell set is partitioned deterministically into per-shard JSON
  manifests, each executed by ``python -m repro worker <manifest>``
  (in-process by default, or as a real subprocess), and the per-shard
  artifact stores are merged back into the campaign store.  Because
  cells are pure and content-keyed, the merged store is byte-identical
  to what a serial run would have produced.

Every executor funnels results through the same ``emit(cell, result,
stored)`` callback; ``stored=True`` tells the caller the artifact
already reached the store through a worker, so it must not be written
twice.
"""

from __future__ import annotations

import multiprocessing
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Callable, Sequence

from repro.runtime.cell import Cell, execute_cell
from repro.runtime.store import ArtifactStore

__all__ = [
    "SerialExecutor",
    "ProcessPoolExecutor",
    "ShardExecutor",
    "partition_cells",
]

#: ``emit(cell, result, stored)`` — invoked once per completed cell.
EmitFn = Callable[[Cell, object, bool], None]


def partition_cells(cells: Sequence[Cell], n_shards: int) -> list[list[Cell]]:
    """Deterministic round-robin partition over key-sorted cells.

    Sorting by key first makes the partition a pure function of the
    cell *set* (not its submission order), so re-generating shard
    manifests for the same matrix always assigns every cell to the
    same shard — which is what lets a crashed shard resume against its
    old store.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    ordered = sorted(cells, key=lambda cell: cell.key)
    return [list(ordered[i::n_shards]) for i in range(n_shards)]


class SerialExecutor:
    """Run cells one at a time in the current process."""

    def run(self, cells: Sequence[Cell], emit: EmitFn, **_: object) -> None:
        for cell in cells:
            emit(cell, cell.run(), False)


class ProcessPoolExecutor:
    """Chunked multiprocessing pool, results emitted as they arrive."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(self, cells: Sequence[Cell], emit: EmitFn, **_: object) -> None:
        if self.workers == 1 or len(cells) <= 1:
            SerialExecutor().run(cells, emit)
            return
        by_key = {cell.key: cell for cell in cells}
        n_workers = min(self.workers, len(cells))
        chunksize = max(1, len(cells) // (n_workers * 4))
        with multiprocessing.Pool(n_workers) as pool:
            for key, result in pool.imap_unordered(
                execute_cell, list(cells), chunksize=chunksize
            ):
                emit(by_key[key], result, False)


class ShardExecutor:
    """Partition a campaign into per-machine shard manifests and merge.

    ``run`` drives the full round trip locally — write manifests,
    execute each through the worker entry point, merge the shard
    stores, decode results — which is exactly what the distributed
    deployment does by hand::

        # coordinator
        campaign.shard_manifests("shards/", n_shards=4)
        # one machine per manifest
        python -m repro worker shards/shard-0.json --store shard0-store
        # coordinator again
        python -m repro merge shard0-store ... --store campaign-store

    ``via_subprocess=True`` makes ``run`` spawn the real CLI instead of
    calling the worker in-process, so tests and CI can exercise the
    shipped command line end to end.
    """

    def __init__(
        self,
        n_shards: int,
        work_dir: str | Path | None = None,
        workers_per_shard: int = 1,
        via_subprocess: bool = False,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.work_dir = Path(work_dir) if work_dir is not None else None
        self.workers_per_shard = workers_per_shard
        self.via_subprocess = via_subprocess

    def run(
        self,
        cells: Sequence[Cell],
        emit: EmitFn,
        codec=None,
        store: ArtifactStore | None = None,
        **_: object,
    ) -> None:
        # Imported here, not at module top: worker imports executors.
        from repro.runtime.worker import run_manifest, write_shard_manifests

        if codec is None:
            raise ValueError(
                "ShardExecutor needs a codec: shard workers persist "
                "results as store artifacts, so the campaign must know "
                "how to encode and decode them"
            )
        work_dir = self.work_dir
        staging = None
        if work_dir is None:
            staging = tempfile.TemporaryDirectory(prefix="repro-shards-")
            work_dir = Path(staging.name)
        try:
            work_dir.mkdir(parents=True, exist_ok=True)
            if store is None:
                store = ArtifactStore(work_dir / "merged-store")
            manifests = write_shard_manifests(
                cells,
                n_shards=self.n_shards,
                directory=work_dir,
                encode_ref=codec.encode_ref,
            )
            shard_stores = []
            for index, manifest in enumerate(manifests):
                shard_root = work_dir / f"shard-{index}-store"
                if self.via_subprocess:
                    self._run_worker_cli(manifest, shard_root)
                else:
                    run_manifest(
                        manifest,
                        shard_root,
                        workers=self.workers_per_shard,
                        echo=None,
                    )
                shard_stores.append(ArtifactStore(shard_root))
            # Adopt only this run's cells: a reused work_dir may hold
            # shard stores from an earlier, different matrix, and those
            # artifacts must not leak into the campaign store (which
            # has to stay byte-identical to a serial run).
            store.merge_from(shard_stores, keys=[c.key for c in cells])
            manifest = store.manifest()
            for cell in cells:
                emit(
                    cell,
                    codec.decode(
                        cell, store.get(cell.key, entry=manifest[cell.key])
                    ),
                    True,
                )
        finally:
            if staging is not None:
                staging.cleanup()

    def _run_worker_cli(self, manifest: Path, store_root: Path) -> None:
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(manifest),
                "--store",
                str(store_root),
                "--workers",
                str(self.workers_per_shard),
            ],
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"shard worker failed for {manifest}:\n{completed.stderr}"
            )
