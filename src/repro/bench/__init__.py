"""Hot-path benchmark suite and its results ledger.

The ROADMAP's north star is "as fast as the hardware allows", which is
only meaningful against a recorded trajectory.  This package defines
the canonical hot-path benchmarks (a 16-node/200-job multi-tenant
stream and a 10k-flow water-filling microbench), runs them with
:func:`run_suite`, and records results in ``BENCH_engine.json`` at the
repository root so every PR can compare itself against the pinned
pre-refactor baseline.

Run it via ``python -m repro bench`` or
``python benchmarks/bench_engine_hotpath.py``.
"""

from repro.bench.hotpath import (
    DEFAULT_RESULTS_PATH,
    bench_stream,
    bench_waterfill,
    format_table,
    load_results,
    record_results,
    run_and_record,
    run_suite,
)

__all__ = [
    "DEFAULT_RESULTS_PATH",
    "bench_stream",
    "bench_waterfill",
    "run_suite",
    "run_and_record",
    "load_results",
    "record_results",
    "format_table",
]
