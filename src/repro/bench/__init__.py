"""Hot-path benchmark suite and its results ledger.

The ROADMAP's north star is "as fast as the hardware allows", which is
only meaningful against a recorded trajectory.  This package defines
the canonical hot-path benchmarks (a 16-node/200-job multi-tenant
stream, a 10k-flow water-filling microbench, 64-node shaper and
per-core-QoS fleet sweeps that time the vectorized and scalar-adapter
paths against each other, a ``multistream_32cell`` case that races the
batched multi-stream runner against serial per-cell execution, and a
``campaign_overhead`` case that times the :mod:`repro.runtime`
orchestration layer per cached cell), runs them with :func:`run_suite`,
and records results in ``BENCH_engine.json`` at the repository root so
every PR can compare itself against the pinned pre-refactor baseline.

``python -m repro bench --check`` re-runs the suite and exits non-zero
when any case's checksum drifts from the ledger or its wall time
regresses beyond a tolerance — the regression gate CI runs (against
the ``smoke`` reference section recorded with ``--save-smoke``).
Comparisons refuse rows whose workload params differ from the
recorded reference; ``--profile`` archives per-case cProfile tables.

Run it via ``python -m repro bench`` or
``python benchmarks/bench_engine_hotpath.py``.
"""

from repro.bench.hotpath import (
    DEFAULT_RESULTS_PATH,
    bench_campaign_overhead,
    bench_multistream,
    bench_obs_overhead,
    bench_percore_fleet_vs_scalar,
    bench_shaper_fleet_vs_scalar,
    bench_stream,
    bench_waterfill,
    check_results,
    format_table,
    load_results,
    record_profiles,
    record_provenance,
    record_results,
    run_and_record,
    run_check,
    run_suite,
    workload_params,
)

__all__ = [
    "DEFAULT_RESULTS_PATH",
    "bench_stream",
    "bench_campaign_overhead",
    "bench_multistream",
    "bench_obs_overhead",
    "bench_percore_fleet_vs_scalar",
    "bench_shaper_fleet_vs_scalar",
    "bench_waterfill",
    "record_provenance",
    "record_profiles",
    "run_suite",
    "run_and_record",
    "run_check",
    "check_results",
    "load_results",
    "record_results",
    "format_table",
    "workload_params",
]
