"""The canonical simulator hot-path benchmarks.

Two workloads bracket the fluid-fabric core:

* ``stream_16x200`` — a 16-node, 200-job multi-tenant Poisson stream
  under the fair scheduler with token-bucket shapers: the shape every
  :class:`~repro.scenarios.orchestrate.ScenarioCampaign` cell and
  Figure-19 carry-over study reduces to.  Tens of thousands of event
  steps exercise water-filling, horizons, shaper advances, scheduling,
  and telemetry together.
* ``waterfill_10k`` — 10,000 simultaneous flows across 64 nodes,
  timing :meth:`~repro.simulator.fabric.Fabric.compute_rates` alone:
  the max-min allocation kernel in isolation.

Each benchmark returns a ``checksum`` derived from simulation output
(total runtime seconds / total allocated Gbps) so a recorded speedup
can be trusted: if the checksum drifts, the comparison is between
different computations and the numbers are void.

Results live in ``BENCH_engine.json``: a pinned ``baseline`` section
(captured once, on the pre-refactor engine) plus a ``current`` section
refreshed by every run, with per-benchmark speedups derived from the
two.  :func:`record_results` never overwrites the baseline unless
explicitly asked.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.netmodel import ConstantRateModel, TokenBucketModel, TokenBucketParams
from repro.scenarios.generate import job_stream, poisson_arrivals
from repro.simulator import Cluster, Fabric, NodeSpec, SparkEngine

__all__ = [
    "DEFAULT_RESULTS_PATH",
    "bench_stream",
    "bench_waterfill",
    "run_suite",
    "run_and_record",
    "load_results",
    "record_results",
    "format_table",
]

#: The results ledger, resolved against the current working directory
#: (run benchmarks from the repository root).
DEFAULT_RESULTS_PATH = Path("BENCH_engine.json")

_SCHEMA = 1

#: Shaper constants for the stream benchmark: c5.xlarge-like bucket,
#: small enough (600 Gbit) that tier transitions actually occur.
_STREAM_BUCKET = TokenBucketParams(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=0.95,
    capacity_gbit=600.0,
)


def bench_stream(
    n_nodes: int = 16,
    slots: int = 4,
    n_jobs: int = 200,
    rate_per_min: float = 6.0,
    data_scale: float = 0.3,
    seed: int = 1234,
    scheduler: str = "fair",
) -> dict:
    """Time one multi-tenant stream execution end to end."""
    rng = np.random.default_rng(seed)
    cluster = Cluster(
        n_nodes=n_nodes,
        node_spec=NodeSpec(slots=slots),
        link_model_factory=lambda node: TokenBucketModel(_STREAM_BUCKET),
    )
    times = poisson_arrivals(rng, rate_per_min=rate_per_min, n_jobs=n_jobs)
    stream = job_stream(
        rng, times, n_nodes=n_nodes, slots=slots, data_scale=data_scale
    )
    engine = SparkEngine(cluster, rng=rng)
    start = time.perf_counter()
    result = engine.run_stream(stream, scheduler=scheduler)
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 4),
        "n_nodes": n_nodes,
        "n_jobs": n_jobs,
        "scheduler": scheduler,
        "makespan_s": round(float(result.makespan_s), 6),
        "samples": int(result.sample_times.size),
        "checksum": round(float(np.sum(result.runtimes())), 6),
    }


def bench_waterfill(
    n_flows: int = 10_000,
    n_nodes: int = 64,
    rounds: int = 5,
    seed: int = 99,
) -> dict:
    """Time the max-min water-filling kernel on a dense flow set."""
    rng = np.random.default_rng(seed)
    fabric = Fabric(
        egress_models=[ConstantRateModel(10.0) for _ in range(n_nodes)],
        ingress_caps_gbps=[10.0] * n_nodes,
    )
    pairs = rng.integers(0, n_nodes, size=(n_flows, 2))
    volumes = rng.uniform(1.0, 100.0, size=n_flows)
    for (src, dst), volume in zip(pairs.tolist(), volumes.tolist()):
        if src == dst:
            dst = (dst + 1) % n_nodes
        fabric.add_flow(src, dst, volume)
    start = time.perf_counter()
    for _ in range(rounds):
        fabric.invalidate_rates()
        fabric.compute_rates()
    wall_s = (time.perf_counter() - start) / rounds
    return {
        "wall_s": round(wall_s, 6),
        "n_flows": n_flows,
        "n_nodes": n_nodes,
        "rounds": rounds,
        "checksum": round(float(np.sum(fabric.node_egress_rates())), 6),
    }


def run_suite(smoke: bool = False) -> dict[str, dict]:
    """Run every hot-path benchmark; ``smoke`` shrinks them for CI."""
    if smoke:
        return {
            "stream_16x200": bench_stream(n_jobs=20),
            "waterfill_10k": bench_waterfill(n_flows=1_000, rounds=2),
        }
    return {
        "stream_16x200": bench_stream(),
        "waterfill_10k": bench_waterfill(),
    }


# ----------------------------------------------------------------------
# results ledger
# ----------------------------------------------------------------------
def load_results(path: Path | str = DEFAULT_RESULTS_PATH) -> dict:
    """Read the ledger; an absent file is an empty ledger."""
    path = Path(path)
    if not path.exists():
        return {"schema": _SCHEMA, "baseline": None, "current": None, "speedup": {}}
    return json.loads(path.read_text())


def _speedups(ledger: dict) -> dict[str, float]:
    baseline = ledger.get("baseline") or {}
    current = ledger.get("current") or {}
    speedups: dict[str, float] = {}
    for name, base in (baseline.get("results") or {}).items():
        cur = (current.get("results") or {}).get(name)
        if not cur or cur.get("wall_s", 0) <= 0:
            continue
        if base.get("checksum") != cur.get("checksum"):
            # Different computation: a speedup would be meaningless.
            continue
        speedups[name] = round(base["wall_s"] / cur["wall_s"], 2)
    return speedups


def record_results(
    results: dict[str, dict],
    path: Path | str = DEFAULT_RESULTS_PATH,
    label: str = "",
    as_baseline: bool = False,
) -> dict:
    """Merge a suite run into the ledger and rewrite it.

    ``as_baseline`` pins the run as the reference implementation; by
    default only the ``current`` section (and derived speedups) move.
    An existing baseline is never overwritten implicitly.
    """
    path = Path(path)
    ledger = load_results(path)
    entry = {"label": label, "results": results}
    if as_baseline:
        ledger["baseline"] = entry
    else:
        ledger["current"] = entry
    ledger["schema"] = _SCHEMA
    ledger["speedup"] = _speedups(ledger)
    path.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
    return ledger


def run_and_record(
    smoke: bool = False,
    save_baseline: bool = False,
    path: Path | str = DEFAULT_RESULTS_PATH,
    label: str = "",
) -> int:
    """Shared driver for every bench entry point (CLI and script).

    Runs the suite, prints per-benchmark rows, and — except for smoke
    runs, which never touch the ledger — records the results and prints
    the before/after table.  Returns a process exit code.
    """
    results = run_suite(smoke=smoke)
    for name, row in results.items():
        print(f"{name}: " + "  ".join(f"{k}={v}" for k, v in row.items()))
    if smoke:
        return 0
    ledger = record_results(
        results, path=path, label=label, as_baseline=save_baseline
    )
    print()
    print(format_table(ledger))
    return 0


def format_table(ledger: dict) -> str:
    """Render the ledger as a before/after table."""
    baseline = (ledger.get("baseline") or {}).get("results") or {}
    current = (ledger.get("current") or {}).get("results") or {}
    speedups = ledger.get("speedup") or {}
    names = sorted(set(baseline) | set(current))
    if not names:
        return "(no benchmark results recorded)"
    header = f"{'benchmark':<16} {'baseline_s':>12} {'current_s':>12} {'speedup':>9}"
    lines = [header, "-" * len(header)]
    for name in names:
        base = baseline.get(name, {}).get("wall_s")
        cur = current.get(name, {}).get("wall_s")
        speed = speedups.get(name)
        lines.append(
            "{:<16} {:>12} {:>12} {:>9}".format(
                name,
                "-" if base is None else f"{base:.4f}",
                "-" if cur is None else f"{cur:.4f}",
                "-" if speed is None else f"{speed:.2f}x",
            )
        )
    return "\n".join(lines)
