"""The canonical simulator hot-path benchmarks.

Two workloads bracket the fluid-fabric core:

* ``stream_16x200`` — a 16-node, 200-job multi-tenant Poisson stream
  under the fair scheduler with token-bucket shapers: the shape every
  :class:`~repro.scenarios.orchestrate.ScenarioCampaign` cell and
  Figure-19 carry-over study reduces to.  Tens of thousands of event
  steps exercise water-filling, horizons, shaper advances, scheduling,
  and telemetry together.
* ``stream_fair_preempt`` — the same stream shape under the
  checkpoint-preempting fair scheduler, so the preemption machinery's
  overhead (group tracking, flow withdrawal, heap cancellation) is
  tracked next to plain fair in the ledger.
* ``waterfill_10k`` — 10,000 simultaneous flows across 64 nodes,
  timing :meth:`~repro.simulator.fabric.Fabric.compute_rates` alone:
  the max-min allocation kernel in isolation.
* ``obs_overhead`` — the stream workload bare vs. under a full
  :class:`~repro.obs.recorder.ObsRecorder`, proving checksum equality
  with observability attached and tracking what full metrics + span
  tracing costs (the recorder-off wall time gates the disabled path).
* ``serving_openloop`` — a three-tier serving cell under flash-crowd
  open-loop load on resampling hpccloud incarnations: the request
  layer's event schedule (timer pops, per-hop request/response flows)
  priced next to the batch schedules above.

Each benchmark returns a ``checksum`` derived from simulation output
(total runtime seconds / total allocated Gbps) so a recorded speedup
can be trusted: if the checksum drifts, the comparison is between
different computations and the numbers are void.

Results live in ``BENCH_engine.json``: a pinned ``baseline`` section
(captured once, on the pre-refactor engine) plus a ``current`` section
refreshed by every run, with per-benchmark speedups derived from the
two.  :func:`record_results` never overwrites the baseline unless
explicitly asked.
"""

from __future__ import annotations

import cProfile
import gc
import json
import math
import platform
import pstats
import tempfile
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.netmodel import (
    ConstantRateModel,
    ScalarFleetAdapter,
    TokenBucketModel,
    TokenBucketParams,
)
from repro.netmodel.percore import PerCoreQosModel
from repro.runtime.store import ArtifactStore
from repro.scenarios.generate import job_stream, poisson_arrivals
from repro.simulator import Cluster, Fabric, NodeSpec, SparkEngine

__all__ = [
    "DEFAULT_RESULTS_PATH",
    "bench_stream",
    "bench_campaign_overhead",
    "bench_multistream",
    "bench_obs_overhead",
    "bench_percore_fleet_vs_scalar",
    "bench_serving_openloop",
    "bench_shaper_fleet_vs_scalar",
    "bench_waterfill",
    "record_provenance",
    "record_profiles",
    "run_suite",
    "run_and_record",
    "run_check",
    "check_results",
    "load_results",
    "record_results",
    "format_table",
    "workload_params",
]

#: The results ledger, resolved against the current working directory
#: (run benchmarks from the repository root).
DEFAULT_RESULTS_PATH = Path("BENCH_engine.json")

_SCHEMA = 1

#: Shaper constants for the stream benchmark: c5.xlarge-like bucket,
#: small enough (600 Gbit) that tier transitions actually occur.
_STREAM_BUCKET = TokenBucketParams(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=0.95,
    capacity_gbit=600.0,
)


def bench_stream(
    n_nodes: int = 16,
    slots: int = 4,
    n_jobs: int = 200,
    rate_per_min: float = 6.0,
    data_scale: float = 0.3,
    seed: int = 1234,
    scheduler: str = "fair",
    scalar_fleet: bool = False,
    recorder=None,
) -> dict:
    """Time one multi-tenant stream execution end to end.

    ``scalar_fleet`` forces the per-model
    :class:`~repro.netmodel.fleet.ScalarFleetAdapter` loop instead of
    the vectorized :class:`~repro.netmodel.fleet.TokenBucketFleet` the
    homogeneous shaper list would normally get — the two paths are
    bit-exact, so their checksums must agree and the wall-clock delta
    is pure shaper-fleet speedup.

    ``recorder`` attaches an :class:`~repro.obs.recorder.ObsRecorder`
    to the run; the recorder only reads simulation state, so the
    checksum must not move (``bench_obs_overhead`` enforces that).
    """
    rng = np.random.default_rng(seed)
    cluster = Cluster(
        n_nodes=n_nodes,
        node_spec=NodeSpec(slots=slots),
        link_model_factory=lambda node: TokenBucketModel(_STREAM_BUCKET),
    )
    fabric = None
    if scalar_fleet:
        # The factory draws nothing from the RNG, so pre-building the
        # fabric leaves the simulation stream identical.
        models = [TokenBucketModel(_STREAM_BUCKET) for _ in range(n_nodes)]
        fabric = Fabric(
            ScalarFleetAdapter(models),
            [cluster.node_spec.ingress_gbps] * n_nodes,
        )
    times = poisson_arrivals(rng, rate_per_min=rate_per_min, n_jobs=n_jobs)
    stream = job_stream(
        rng, times, n_nodes=n_nodes, slots=slots, data_scale=data_scale
    )
    engine = SparkEngine(cluster, rng=rng)
    start = time.perf_counter()
    result = engine.run_stream(
        stream, scheduler=scheduler, fabric=fabric, recorder=recorder
    )
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 4),
        "n_nodes": n_nodes,
        "n_jobs": n_jobs,
        "scheduler": scheduler,
        "makespan_s": round(float(result.makespan_s), 6),
        "samples": int(result.sample_times.size),
        "n_steps": int(result.n_steps),
        "checksum": round(float(np.sum(result.runtimes())), 6),
    }


#: Oscillating bucket for the shaper-heavy case: replenish slightly
#: above the cap, so throttled nodes climb back over the resume
#: threshold and flip tiers forever (the Figure 18 straggler dynamic).
_OSC_BUCKET = dict(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=1.05,
    capacity_gbit=40.0,
    resume_threshold_gbit=1.0,
)


def _run_shaper_sweep(
    n_nodes: int, duration_s: float, max_step_s: float, scalar_fleet: bool
) -> dict:
    """Integrate never-completing pair flows through oscillating buckets.

    One flow per group of 8 nodes keeps the water-filling trivial, so
    the per-step cost is the shaper layer itself: every one of the
    ``n_nodes`` buckets must be gathered, horizon-bounded, and advanced
    each step — the O(N) scalar loop the fleets replace.  Sender
    budgets are staggered in two phase groups whose members sit a float
    residue apart (the near-tie fragmentation pattern event-horizon
    coalescing absorbs).
    """
    models = []
    n_senders = 0
    for i in range(n_nodes):
        if i % 8 == 0:
            start = 2.0 + (n_senders % 2) * 16.0 + n_senders * 1e-10
            n_senders += 1
        else:
            start = None  # full bucket, idles at capacity
        params = TokenBucketParams(**_OSC_BUCKET, initial_budget_gbit=start)
        models.append(TokenBucketModel(params))
    egress = ScalarFleetAdapter(models) if scalar_fleet else models
    fabric = Fabric(egress, [10.0] * n_nodes)
    for i in range(0, n_nodes - 1, 8):
        fabric.add_flow(i, i + 1, 1e15)
    t = 0.0
    steps = 0
    start_t = time.perf_counter()
    while t < duration_s:
        fabric.compute_rates()
        remaining = duration_s - t
        dt = min(fabric.horizon(), max_step_s, remaining)
        if dt <= 0.0:
            dt = min(1e-6, remaining)
        fabric.advance(dt)
        t += dt
        steps += 1
    wall_s = time.perf_counter() - start_t
    budgets = fabric.fleet.budgets()
    assert budgets is not None
    checksum = round(
        float(np.sum(fabric.node_egress_rates()) + np.sum(budgets)), 6
    )
    return {"wall_s": round(wall_s, 4), "n_steps": steps, "checksum": checksum}


def bench_shaper_fleet_vs_scalar(
    n_nodes: int = 64,
    duration_s: float = 3000.0,
    max_step_s: float = 0.1,
) -> dict:
    """The shaper-heavy case: fleet vs scalar-adapter on pure shaping.

    A 64-node ring of never-completing flows driven through
    tier-oscillating token buckets: every step's cost is the shaper
    layer (limit gathering, horizon bounding, advance accounting), the
    workload PR 3's fleets vectorize.  The identical sweep runs through
    the vectorized :class:`~repro.netmodel.fleet.TokenBucketFleet` and
    the per-model :class:`~repro.netmodel.fleet.ScalarFleetAdapter`;
    matching checksums prove the paths compute the same trajectory and
    ``fleet_speedup`` is the pure fleet win.
    """
    fleet_run = _run_shaper_sweep(
        n_nodes, duration_s, max_step_s, scalar_fleet=False
    )
    scalar_run = _run_shaper_sweep(
        n_nodes, duration_s, max_step_s, scalar_fleet=True
    )
    if scalar_run["checksum"] != fleet_run["checksum"]:
        raise AssertionError(
            "fleet and scalar-adapter paths diverged: "
            f"{fleet_run['checksum']} != {scalar_run['checksum']}"
        )
    if scalar_run["n_steps"] != fleet_run["n_steps"]:
        raise AssertionError(
            "fleet and scalar-adapter paths stepped differently: "
            f"{fleet_run['n_steps']} != {scalar_run['n_steps']}"
        )
    row = dict(fleet_run)
    row["n_nodes"] = n_nodes
    row["duration_s"] = duration_s
    row["scalar_wall_s"] = scalar_run["wall_s"]
    row["fleet_speedup"] = (
        round(scalar_run["wall_s"] / fleet_run["wall_s"], 2)
        if fleet_run["wall_s"] > 0
        else float("inf")
    )
    return row


def _run_percore_sweep(
    n_nodes: int, duration_s: float, max_step_s: float, scalar_fleet: bool
) -> dict:
    """Integrate never-completing pair flows through GCE QoS links.

    The per-core QoS models redraw their efficiency on a per-node
    resample clock; staggering the intervals desynchronizes the
    crossings so every event step is small and the per-step cost is the
    QoS layer itself (limit gathering, interval-crossing bookkeeping,
    quantile redraws) — the loop :class:`PerCoreQosFleet` vectorizes.
    One flow per group of 8 nodes keeps the water-filling trivial.
    """
    models = [
        PerCoreQosModel(
            cores=4, interval_s=2.0 + 0.13 * (i % 8), seed=1000 + i
        )
        for i in range(n_nodes)
    ]
    egress = ScalarFleetAdapter(models) if scalar_fleet else models
    fabric = Fabric(egress, [10.0] * n_nodes)
    for i in range(0, n_nodes - 1, 8):
        fabric.add_flow(i, i + 1, 1e15)
    t = 0.0
    steps = 0
    start_t = time.perf_counter()
    while t < duration_s:
        fabric.compute_rates()
        remaining = duration_s - t
        dt = min(fabric.horizon(), max_step_s, remaining)
        if dt <= 0.0:
            dt = min(1e-6, remaining)
        fabric.advance(dt)
        t += dt
        steps += 1
    wall_s = time.perf_counter() - start_t
    checksum = round(
        float(
            np.sum(fabric.node_egress_rates()) + np.sum(fabric.fleet.limits())
        ),
        6,
    )
    return {"wall_s": round(wall_s, 4), "n_steps": steps, "checksum": checksum}


def bench_percore_fleet_vs_scalar(
    n_nodes: int = 64,
    duration_s: float = 3000.0,
    max_step_s: float = 0.5,
) -> dict:
    """The GCE QoS case: PerCoreQosFleet vs scalar-adapter sweeps.

    64 per-core QoS links with staggered resample intervals drive a
    dense event-step schedule whose cost is the QoS model layer.  The
    identical sweep runs through the vectorized
    :class:`~repro.netmodel.fleet.PerCoreQosFleet` and the per-model
    :class:`~repro.netmodel.fleet.ScalarFleetAdapter`; matching
    checksums prove the two paths draw the same efficiency sequences
    (per-node RNG streams are fleet-independent by construction) and
    ``fleet_speedup`` is the pure vectorization win.
    """
    fleet_run = _run_percore_sweep(
        n_nodes, duration_s, max_step_s, scalar_fleet=False
    )
    scalar_run = _run_percore_sweep(
        n_nodes, duration_s, max_step_s, scalar_fleet=True
    )
    if scalar_run["checksum"] != fleet_run["checksum"]:
        raise AssertionError(
            "fleet and scalar-adapter paths diverged: "
            f"{fleet_run['checksum']} != {scalar_run['checksum']}"
        )
    if scalar_run["n_steps"] != fleet_run["n_steps"]:
        raise AssertionError(
            "fleet and scalar-adapter paths stepped differently: "
            f"{fleet_run['n_steps']} != {scalar_run['n_steps']}"
        )
    row = dict(fleet_run)
    row["n_nodes"] = n_nodes
    row["duration_s"] = duration_s
    row["scalar_wall_s"] = scalar_run["wall_s"]
    row["fleet_speedup"] = (
        round(scalar_run["wall_s"] / fleet_run["wall_s"], 2)
        if fleet_run["wall_s"] > 0
        else float("inf")
    )
    return row


#: Shaper for the multi-stream cells: a small, oscillating bucket
#: (replenish above the cap, tight resume threshold) so each cell's
#: event schedule is dominated by tier-flip transitions — the regime
#: where per-cell numpy dispatch, not arithmetic, is the serial cost.
_MS_BUCKET = TokenBucketParams(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=1.05,
    capacity_gbit=3.0,
    resume_threshold_gbit=0.5,
)


def bench_multistream(
    n_cells: int = 32,
    n_nodes: int = 2,
    n_jobs: int = 2,
    data_scale: float = 20.0,
    sample_interval_s: float = 600.0,
    seed: int = 7777,
) -> dict:
    """Batched multi-stream runner vs N serial ``run_stream`` calls.

    Builds ``n_cells`` independent shaper-transition-dominated scenario
    cells twice from the same seeds, runs one set serially and the
    other through :func:`~repro.simulator.multistream.run_streams`
    (one concatenated super-fleet, lockstep rounds), and demands the
    per-cell results be *byte-identical* — every runtime array, step
    count, and makespan — before reporting ``batch_speedup``.  The
    gated ``wall_s`` is the batched time: the cost model for cheap
    million-cell campaigns.

    The cell shape is the campaign sweet spot: tiny clusters (where a
    serial step is almost all fixed-size numpy dispatch, the cost the
    batch amortizes) running long transfers against an oscillating
    bucket (``_MS_BUCKET`` replenishes above its cap, so shaper tier
    flips dominate the event schedule), with telemetry sampling made
    sparse so both paths measure simulation, not recording.
    """
    from repro.simulator.multistream import StreamTask, run_streams

    def build_cells() -> list[tuple[SparkEngine, list]]:
        cells = []
        for i in range(n_cells):
            rng = np.random.default_rng(seed + i)
            cluster = Cluster(
                n_nodes=n_nodes,
                node_spec=NodeSpec(slots=1),
                link_model_factory=lambda node: TokenBucketModel(_MS_BUCKET),
            )
            times = poisson_arrivals(rng, rate_per_min=4.0, n_jobs=n_jobs)
            stream = job_stream(
                rng, times, n_nodes=n_nodes, slots=1, data_scale=data_scale
            )
            engine = SparkEngine(
                cluster, rng=rng, sample_interval_s=sample_interval_s
            )
            cells.append((engine, list(stream)))
        return cells

    # Each leg is timed ``repeats`` times on freshly built (identical-
    # seed) cells and the best wall kept — the timeit convention; the
    # machine's noise is upward contention spikes, and taking the min
    # symmetrically estimates both legs' true cost without biasing the
    # ratio.  Results are deterministic, so any repeat's outputs serve
    # for the byte-identity check.
    repeats = 2
    serial_wall_s = math.inf
    serial = None
    for _ in range(repeats):
        serial_cells = build_cells()
        gc.collect()
        start = time.perf_counter()
        result = [
            engine.run_stream(stream, scheduler="fair")
            for engine, stream in serial_cells
        ]
        wall = time.perf_counter() - start
        if wall < serial_wall_s:
            serial_wall_s, serial = wall, result

    wall_s = math.inf
    batched = None
    for _ in range(repeats):
        tasks = [
            StreamTask(engine, stream, scheduler="fair")
            for engine, stream in build_cells()
        ]
        gc.collect()
        start = time.perf_counter()
        result = run_streams(tasks)
        wall = time.perf_counter() - start
        if wall < wall_s:
            wall_s, batched = wall, result

    for i, (a, b) in enumerate(zip(serial, batched)):
        if (
            not np.array_equal(a.runtimes(), b.runtimes())
            or a.n_steps != b.n_steps
            or a.makespan_s != b.makespan_s
        ):
            raise AssertionError(
                f"batched cell {i} diverged from its serial run: "
                f"steps {b.n_steps} vs {a.n_steps}, "
                f"makespan {b.makespan_s} vs {a.makespan_s}"
            )
    return {
        "wall_s": round(wall_s, 4),
        "serial_wall_s": round(serial_wall_s, 4),
        "batch_speedup": (
            round(serial_wall_s / wall_s, 2) if wall_s > 0 else float("inf")
        ),
        "n_cells": n_cells,
        "n_nodes": n_nodes,
        "n_jobs": n_jobs,
        "data_scale": data_scale,
        "sample_interval_s": sample_interval_s,
        "n_steps": sum(r.n_steps for r in serial),
        "checksum": round(
            float(sum(float(np.sum(r.runtimes())) for r in serial)), 6
        ),
    }


def bench_waterfill(
    n_flows: int = 10_000,
    n_nodes: int = 64,
    rounds: int = 5,
    seed: int = 99,
) -> dict:
    """Time the max-min water-filling kernel on a dense flow set."""
    rng = np.random.default_rng(seed)
    fabric = Fabric(
        egress_models=[ConstantRateModel(10.0) for _ in range(n_nodes)],
        ingress_caps_gbps=[10.0] * n_nodes,
    )
    pairs = rng.integers(0, n_nodes, size=(n_flows, 2))
    volumes = rng.uniform(1.0, 100.0, size=n_flows)
    for (src, dst), volume in zip(pairs.tolist(), volumes.tolist()):
        if src == dst:
            dst = (dst + 1) % n_nodes
        fabric.add_flow(src, dst, volume)
    start = time.perf_counter()
    for _ in range(rounds):
        fabric.invalidate_rates()
        fabric.compute_rates()
    wall_s = (time.perf_counter() - start) / rounds
    return {
        "wall_s": round(wall_s, 6),
        "n_flows": n_flows,
        "n_nodes": n_nodes,
        "rounds": rounds,
        "checksum": round(float(np.sum(fabric.node_egress_rates())), 6),
    }


def bench_campaign_overhead(n_cells: int = 32, seed: int = 4321) -> dict:
    """Time the runtime orchestration layer itself, per cached cell.

    A store is populated with ``n_cells`` deliberately tiny scenario
    cells (untimed), then a second :class:`ScenarioCampaign` run over
    the same matrix is timed: every cell is a cache hit, so the wall
    clock is pure orchestration — manifest snapshot, per-cell document
    reads, decode, aggregation — the overhead each of the paper's
    thousands of campaign cells pays on top of its simulation.  The
    checksum sums the aggregate rows' mean runtimes, so a drift means
    the cache round-trip changed what it reproduces.
    """
    from repro.measurement.repository import TraceRepository
    from repro.scenarios.orchestrate import ScenarioCampaign, ScenarioConfig

    configs = [
        ScenarioConfig(
            n_nodes=2,
            slots=1,
            n_jobs=1,
            data_scale=0.01,
            arrival_rate_per_min=4.0,
            seed=seed + i,
        )
        for i in range(n_cells)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        repository = TraceRepository(Path(tmp) / "store")
        ScenarioCampaign(configs, repository=repository).run()
        start = time.perf_counter()
        outcome = ScenarioCampaign(configs, repository=repository).run()
        wall_s = time.perf_counter() - start
    if len(outcome.cached_ids) != n_cells:
        raise AssertionError(
            f"expected {n_cells} cache hits, got {len(outcome.cached_ids)}"
        )
    rows = outcome.aggregate_rows()
    return {
        "wall_s": round(wall_s, 4),
        "n_cells": n_cells,
        "per_cell_ms": round(wall_s / n_cells * 1_000.0, 3),
        "cache_hits": len(outcome.cached_ids),
        "checksum": round(sum(row["mean_runtime_s"] for row in rows), 6),
    }


def bench_obs_overhead(n_jobs: int = 200, seed: int = 1234) -> dict:
    """Price full observability against the recorder-off hot path.

    Runs the ``stream_16x200`` workload twice — once bare, once with a
    full :class:`~repro.obs.recorder.ObsRecorder` (metrics scraping,
    latency/queueing quantiles, job/stage/task-group/flow spans) — and
    reports both wall times plus the relative cost.  The recorder only
    *reads* engine and fabric state, so both runs must produce the
    same checksum and step count; a divergence means observability
    perturbed the simulation and the run fails outright.

    ``wall_s`` (the recorder-off time) is what the ledger's wall-time
    gate pins, so a regression on the *disabled* path — the one every
    production campaign cell pays — fails ``bench --check`` even
    though ``overhead_pct`` itself is too noisy to gate directly.
    """
    from repro.obs.recorder import ObsRecorder

    off = bench_stream(n_jobs=n_jobs, seed=seed)
    recorder = ObsRecorder(scrape_interval_s=5.0, window_s=300.0)
    on = bench_stream(n_jobs=n_jobs, seed=seed, recorder=recorder)
    if on["checksum"] != off["checksum"]:
        raise AssertionError(
            "observability perturbed the simulation: checksum "
            f"{on['checksum']} != {off['checksum']} with recorder attached"
        )
    if on["n_steps"] != off["n_steps"]:
        raise AssertionError(
            "observability perturbed the simulation: n_steps "
            f"{on['n_steps']} != {off['n_steps']} with recorder attached"
        )
    overhead_pct = (
        round((on["wall_s"] - off["wall_s"]) / off["wall_s"] * 100.0, 2)
        if off["wall_s"] > 0
        else float("inf")
    )
    return {
        "wall_s": off["wall_s"],
        "obs_wall_s": on["wall_s"],
        "overhead_pct": overhead_pct,
        "n_jobs": n_jobs,
        "n_steps": off["n_steps"],
        "spans": len(recorder.tracer.records()),
        "scrapes": int(recorder.series()["active_flows"].times.size),
        "checksum": off["checksum"],
    }


def bench_serving_openloop(
    n_nodes: int = 8,
    rate_rps: float = 60.0,
    duration_s: float = 120.0,
    seed: int = 1234,
) -> dict:
    """Time one open-loop serving cell end to end.

    The request-layer counterpart of ``stream_16x200``: a three-tier
    call tree on resampling hpccloud incarnations under a flash-crowd
    arrival process, so the ledger tracks what the event core costs
    when its schedule is timer-heap pops and per-hop request flows
    instead of stage barriers.  The checksum sums every completed
    request's latency — it covers arrival draws, placement, compute
    noise, and the shaped fabric at once.
    """
    from repro.serving.scenario import ServingConfig, run_serving

    config = ServingConfig(
        provider_name="hpccloud",
        instance_name="hpccloud-8core",
        n_nodes=n_nodes,
        topology="three_tier",
        arrival="flash",
        rate_rps=rate_rps,
        duration_s=duration_s,
        slo_p99_ms=250.0,
        slo_window_s=10.0,
        seed=seed,
    )
    start = time.perf_counter()
    result = run_serving(config)
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 4),
        "n_nodes": n_nodes,
        "rate_rps": rate_rps,
        "duration_s": duration_s,
        "n_requests": result.n_requests,
        "n_steps": result.n_steps,
        "slo_violations": result.slo_violations,
        "checksum": round(float(result.latency["sum_s"]), 6),
    }


def _suite_cases(
    smoke: bool, seeded: dict[str, int]
) -> dict[str, Callable[[], dict]]:
    """The case registry: name -> thunk, sized for CI or the ledger."""
    if smoke:
        return {
            "stream_16x200": lambda: bench_stream(n_jobs=20, **seeded),
            "stream_fair_preempt": lambda: bench_stream(
                n_jobs=20, scheduler="preempt", **seeded
            ),
            "waterfill_10k": lambda: bench_waterfill(
                n_flows=1_000, rounds=2, **seeded
            ),
            "shaper_64_tb": lambda: bench_shaper_fleet_vs_scalar(
                duration_s=300.0
            ),
            "percore_64": lambda: bench_percore_fleet_vs_scalar(
                duration_s=300.0
            ),
            "multistream_32cell": lambda: bench_multistream(
                n_cells=8, **seeded
            ),
            "campaign_overhead": lambda: bench_campaign_overhead(
                n_cells=8, **seeded
            ),
            "obs_overhead": lambda: bench_obs_overhead(n_jobs=20, **seeded),
            "serving_openloop": lambda: bench_serving_openloop(
                n_nodes=4, rate_rps=40.0, duration_s=30.0, **seeded
            ),
        }
    return {
        "stream_16x200": lambda: bench_stream(**seeded),
        "stream_fair_preempt": lambda: bench_stream(
            scheduler="preempt", **seeded
        ),
        "waterfill_10k": lambda: bench_waterfill(**seeded),
        "shaper_64_tb": lambda: bench_shaper_fleet_vs_scalar(),
        "percore_64": lambda: bench_percore_fleet_vs_scalar(),
        "multistream_32cell": lambda: bench_multistream(**seeded),
        "campaign_overhead": lambda: bench_campaign_overhead(**seeded),
        "obs_overhead": lambda: bench_obs_overhead(**seeded),
        "serving_openloop": lambda: bench_serving_openloop(**seeded),
    }


def _top_functions(prof: cProfile.Profile, limit: int = 20) -> list[dict]:
    """Flatten a profile into its top ``limit`` functions by cumtime."""
    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    rows: list[dict] = []
    for func in stats.fcn_list[:limit]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": int(nc),
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
    return rows


def run_suite(
    smoke: bool = False,
    seed: int | None = None,
    profiles: dict[str, list] | None = None,
) -> dict[str, dict]:
    """Run every hot-path benchmark; ``smoke`` shrinks them for CI.

    ``seed`` overrides each case's pinned workload seed (the fleet
    sweeps are seed-pinned internally).  Overridden runs produce
    checksums that cannot be compared against the ledger, so callers
    must not record or gate them — the CLI refuses the combination.

    Passing a ``profiles`` dict runs each case under :mod:`cProfile`
    and fills it with the top-20 functions by cumulative time, keyed by
    case name.  Profiling inflates wall times, so profiled runs must
    never be recorded as (or gated against) a ledger reference either.
    """
    seeded: dict[str, int] = {}
    if seed is not None:
        seeded = {"seed": int(seed)}
    results: dict[str, dict] = {}
    for name, case in _suite_cases(smoke, seeded).items():
        if profiles is None:
            results[name] = case()
        else:
            prof = cProfile.Profile()
            results[name] = prof.runcall(case)
            profiles[name] = _top_functions(prof)
    return results


# ----------------------------------------------------------------------
# provenance
# ----------------------------------------------------------------------
def record_provenance(
    results: dict[str, dict],
    store_root: Path | str,
    label: str = "",
) -> ArtifactStore:
    """Record each bench case as a cell in a campaign artifact store.

    Every case becomes a ``bench-<name>`` artifact holding the full
    result row plus the environment that produced it, in the same
    :class:`~repro.runtime.store.ArtifactStore` layout campaign cells
    use — so one store can archive a machine's simulation results *and*
    the performance context they were measured under.  Re-recording a
    case overwrites its provenance (benchmarks re-run; cells don't).
    """
    store = ArtifactStore(store_root)
    environment = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
    }
    for name, row in results.items():
        store.put(
            f"bench-{name}",
            {"result": dict(row), "environment": environment},
            meta={
                "kind": "bench-provenance",
                "case": name,
                "label": label,
                "checksum": row.get("checksum"),
            },
            overwrite=True,
        )
    return store


def record_profiles(
    profiles: dict[str, list],
    store_root: Path | str,
    label: str = "",
) -> ArtifactStore:
    """Archive per-case cProfile top-20 tables in an artifact store.

    Each case becomes a ``bench-profile-<name>`` artifact next to the
    ``bench-<name>`` provenance rows, so a store can answer "where did
    the time go" for the same run it archives results for.
    """
    store = ArtifactStore(store_root)
    for name, rows in profiles.items():
        store.put(
            f"bench-profile-{name}",
            {"top_functions": list(rows)},
            meta={"kind": "bench-profile", "case": name, "label": label},
            overwrite=True,
        )
    return store


# ----------------------------------------------------------------------
# results ledger
# ----------------------------------------------------------------------
def load_results(path: Path | str = DEFAULT_RESULTS_PATH) -> dict:
    """Read the ledger; an absent file is an empty ledger."""
    path = Path(path)
    if not path.exists():
        return {
            "schema": _SCHEMA,
            "baseline": None,
            "current": None,
            "smoke": None,
            "speedup": {},
        }
    return json.loads(path.read_text())


#: Keys a benchmark row *measures* (timings, derived ratios, and
#: simulation outputs).  Everything else in a row is a workload
#: parameter — the knobs that define what was benchmarked — and two
#: rows are only comparable when those agree exactly.
_MEASURED_KEYS = frozenset(
    {
        "wall_s",
        "obs_wall_s",
        "scalar_wall_s",
        "serial_wall_s",
        "overhead_pct",
        "fleet_speedup",
        "batch_speedup",
        "per_cell_ms",
        "checksum",
        "makespan_s",
        "samples",
        "n_steps",
        "spans",
        "scrapes",
        "cache_hits",
        "n_requests",
        "slo_violations",
    }
)


def workload_params(row: dict) -> dict:
    """The workload-defining subset of a benchmark result row.

    Speedup derivation and the ``--check`` gate refuse to compare rows
    whose workload params differ: a wall-clock ratio between a 200-job
    run and a 20-job run (or two runs labelled with different node
    counts) is not a speedup, it is a units error.  Checksums alone
    cannot catch every such mismatch — a relabelled workload can keep a
    stale checksum in the ledger — so the params are compared first.
    """
    return {k: v for k, v in row.items() if k not in _MEASURED_KEYS}


def _speedups(ledger: dict) -> dict[str, float]:
    baseline = ledger.get("baseline") or {}
    current = ledger.get("current") or {}
    speedups: dict[str, float] = {}
    for name, base in (baseline.get("results") or {}).items():
        cur = (current.get("results") or {}).get(name)
        if not cur or cur.get("wall_s", 0) <= 0:
            continue
        if workload_params(base) != workload_params(cur):
            # Different workload shape: the ratio would be a units error.
            continue
        if base.get("checksum") != cur.get("checksum"):
            # Different computation: a speedup would be meaningless.
            continue
        speedups[name] = round(base["wall_s"] / cur["wall_s"], 2)
    return speedups


def record_results(
    results: dict[str, dict],
    path: Path | str = DEFAULT_RESULTS_PATH,
    label: str = "",
    as_baseline: bool = False,
    section: str | None = None,
) -> dict:
    """Merge a suite run into the ledger and rewrite it.

    ``as_baseline`` pins the run as the reference implementation; by
    default only the ``current`` section (and derived speedups) move.
    ``section`` overrides the destination explicitly (``"smoke"``
    records the CI-sized reference that ``--check --smoke`` gates
    against).  An existing baseline is never overwritten implicitly.
    """
    path = Path(path)
    ledger = load_results(path)
    entry = {"label": label, "results": results}
    if section is None:
        section = "baseline" if as_baseline else "current"
    ledger[section] = entry
    ledger["schema"] = _SCHEMA
    ledger["speedup"] = _speedups(ledger)
    path.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
    return ledger


# ----------------------------------------------------------------------
# regression gate
# ----------------------------------------------------------------------
def check_results(
    results: dict[str, dict],
    reference: dict | None,
    wall_tolerance: float = 1.25,
) -> list[str]:
    """Compare a fresh suite run against a recorded reference entry.

    Returns human-readable failure strings: one per benchmark whose
    workload params no longer match the recorded row (the comparison
    itself would be meaningless — re-record the ledger), whose checksum
    drifted from the recorded value (the simulation now computes
    something different), or whose wall time exceeds ``wall_tolerance``
    times the recorded wall time (performance regression).  Benchmarks
    missing from the reference are skipped — they gate once recorded.
    """
    failures: list[str] = []
    ref_results = (reference or {}).get("results") or {}
    for name, row in results.items():
        ref = ref_results.get(name)
        if ref is None:
            continue
        params = workload_params(row)
        ref_params = workload_params(ref)
        if params != ref_params:
            failures.append(
                f"{name}: workload params differ from the recorded "
                f"reference ({params} != {ref_params}); refusing the "
                "checksum/wall comparison — re-record the ledger"
            )
            continue
        if row.get("checksum") != ref.get("checksum"):
            failures.append(
                f"{name}: checksum drifted "
                f"({row.get('checksum')} != recorded {ref.get('checksum')})"
            )
        ref_wall = ref.get("wall_s")
        wall = row.get("wall_s")
        if ref_wall and wall and wall > wall_tolerance * ref_wall:
            failures.append(
                f"{name}: wall time regressed "
                f"({wall:.4f}s > {wall_tolerance:.2f}x recorded {ref_wall:.4f}s)"
            )
    return failures


def run_check(
    smoke: bool = False,
    path: Path | str = DEFAULT_RESULTS_PATH,
    wall_tolerance: float = 1.25,
    store: Path | str | None = None,
) -> int:
    """Run the suite and gate it against the ledger (non-zero on drift).

    Full runs compare against the ``current`` section, smoke runs
    against the ``smoke`` section (recorded with ``--save-smoke``);
    the ledger itself is never modified.  This is the regression gate
    CI wires in: checksum drift always fails, wall-time regressions
    fail beyond ``wall_tolerance`` (relax it on noisy shared runners).
    """
    import sys

    # Validate the reference before burning minutes on the suite.
    section = "smoke" if smoke else "current"
    ledger = load_results(path)
    reference = ledger.get(section)
    if not reference:
        hint = " --smoke --save-smoke" if smoke else ""
        print(
            f"error: no {section!r} reference in {path}; record one with "
            f"`python -m repro bench{hint}` first",
            file=sys.stderr,
        )
        return 2
    results = run_suite(smoke=smoke)
    for name, row in results.items():
        print(f"{name}: " + "  ".join(f"{k}={v}" for k, v in row.items()))
    if store is not None:
        record_provenance(results, store)
    failures = check_results(results, reference, wall_tolerance=wall_tolerance)
    if failures:
        for failure in failures:
            print(f"BENCH CHECK FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"bench check ok: {len(results)} case(s) within {wall_tolerance:.2f}x "
        f"of the {section!r} reference, checksums unchanged"
    )
    return 0


def run_and_record(
    smoke: bool = False,
    save_baseline: bool = False,
    path: Path | str = DEFAULT_RESULTS_PATH,
    label: str = "",
    save_smoke: bool = False,
    store: Path | str | None = None,
) -> int:
    """Shared driver for every bench entry point (CLI and script).

    Runs the suite, prints per-benchmark rows, and — except for smoke
    runs, which never touch the ledger unless ``save_smoke`` pins them
    as the ``--check --smoke`` reference — records the results and
    prints the before/after table.  ``store`` additionally archives
    per-case provenance into a campaign artifact store.  Returns a
    process exit code.
    """
    if save_smoke:
        smoke = True
    results = run_suite(smoke=smoke)
    for name, row in results.items():
        print(f"{name}: " + "  ".join(f"{k}={v}" for k, v in row.items()))
    if store is not None:
        record_provenance(results, store, label=label)
    if smoke:
        if save_smoke:
            record_results(results, path=path, label=label, section="smoke")
            print(f"recorded smoke reference in {path}")
        return 0
    ledger = record_results(
        results, path=path, label=label, as_baseline=save_baseline
    )
    print()
    print(format_table(ledger))
    return 0


def format_table(ledger: dict) -> str:
    """Render the ledger as a before/after table."""
    baseline = (ledger.get("baseline") or {}).get("results") or {}
    current = (ledger.get("current") or {}).get("results") or {}
    speedups = ledger.get("speedup") or {}
    names = sorted(set(baseline) | set(current))
    if not names:
        return "(no benchmark results recorded)"
    header = f"{'benchmark':<16} {'baseline_s':>12} {'current_s':>12} {'speedup':>9}"
    lines = [header, "-" * len(header)]
    for name in names:
        base = baseline.get(name, {}).get("wall_s")
        cur = current.get(name, {}).get("wall_s")
        speed = speedups.get(name)
        lines.append(
            "{:<16} {:>12} {:>12} {:>9}".format(
                name,
                "-" if base is None else f"{base:.4f}",
                "-" if cur is None else f"{cur:.4f}",
                "-" if speed is None else f"{speed:.2f}x",
            )
        )
    return "\n".join(lines)
