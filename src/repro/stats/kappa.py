"""Cohen's Kappa inter-rater agreement.

The survey in Section 2 was double-reviewed; agreement per category was
quantified with Cohen's Kappa [16], with scores of 0.95, 0.81 and 0.85
for the three categories of Figure 1a (values above 0.8 indicate
near-perfect agreement [59]).
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Sequence

__all__ = ["cohens_kappa"]


def cohens_kappa(
    rater_a: Sequence[Hashable], rater_b: Sequence[Hashable]
) -> float:
    """Cohen's Kappa between two label sequences.

    Kappa = (p_o - p_e) / (1 - p_e) where ``p_o`` is observed agreement
    and ``p_e`` the agreement expected by chance from the raters'
    marginal label frequencies.  Returns 1.0 when the raters agree
    perfectly *and* chance agreement is also 1 (single-label edge case),
    matching the usual convention.
    """
    if len(rater_a) != len(rater_b):
        raise ValueError(
            f"raters must label the same items: {len(rater_a)} != {len(rater_b)}"
        )
    n = len(rater_a)
    if n == 0:
        raise ValueError("cannot compute kappa for zero items")

    observed = sum(1 for a, b in zip(rater_a, rater_b) if a == b) / n

    counts_a = Counter(rater_a)
    counts_b = Counter(rater_b)
    labels = set(counts_a) | set(counts_b)
    expected = sum(
        (counts_a.get(label, 0) / n) * (counts_b.get(label, 0) / n)
        for label in labels
    )

    if expected == 1.0:
        return 1.0 if observed == 1.0 else 0.0
    return (observed - expected) / (1.0 - expected)
