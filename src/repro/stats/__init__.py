"""Statistics toolbox for variability-aware performance analysis.

This package implements the statistical machinery the paper leans on:

* :mod:`repro.stats.quantiles` — nonparametric confidence intervals for
  medians and arbitrary quantiles (Le Boudec's order-statistics method),
  used in Figures 3, 13, and 19;
* :mod:`repro.stats.confirm` — the CONFIRM analysis of Maricq et al.,
  predicting how many repetitions an experiment needs (Figure 13);
* :mod:`repro.stats.testing` — the assumption tests recommended in F5.4:
  normality (Shapiro-Wilk), independence (Mann-Whitney, runs test,
  Ljung-Box), and stationarity (augmented Dickey-Fuller);
* :mod:`repro.stats.kappa` — Cohen's Kappa inter-reviewer agreement used
  by the literature survey (Section 2);
* :mod:`repro.stats.cov` — dispersion summaries (coefficient of
  variation, IQR) as plotted in Figure 6;
* :mod:`repro.stats.bootstrap` — bootstrap confidence intervals used as
  a cross-check on the order-statistics method.
"""

from repro.stats.anova import compare_groups, kruskal_wallis, one_way_anova
from repro.stats.bootstrap import bootstrap_ci
from repro.stats.confirm import (
    ConfirmCurve,
    confirm_curve,
    min_samples_for_ci,
    repetitions_needed,
)
from repro.stats.cov import coefficient_of_variation, dispersion_summary
from repro.stats.kappa import cohens_kappa
from repro.stats.quantiles import (
    QuantileCI,
    median_ci,
    quantile_ci,
    quantile_ci_indices,
)
from repro.stats.timeseries import (
    DiurnalProfile,
    autocorrelation,
    diurnal_profile,
    interval_medians,
    stationary_windows,
)
from repro.stats.testing import (
    TestVerdict,
    adf_test,
    ljung_box_test,
    mann_whitney_test,
    pettitt_test,
    runs_test,
    shapiro_test,
)

__all__ = [
    "QuantileCI",
    "quantile_ci",
    "quantile_ci_indices",
    "median_ci",
    "ConfirmCurve",
    "confirm_curve",
    "repetitions_needed",
    "min_samples_for_ci",
    "coefficient_of_variation",
    "dispersion_summary",
    "cohens_kappa",
    "TestVerdict",
    "shapiro_test",
    "mann_whitney_test",
    "runs_test",
    "ljung_box_test",
    "adf_test",
    "pettitt_test",
    "bootstrap_ci",
    "one_way_anova",
    "kruskal_wallis",
    "compare_groups",
    "autocorrelation",
    "stationary_windows",
    "interval_medians",
    "diurnal_profile",
    "DiurnalProfile",
]
