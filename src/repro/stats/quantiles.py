"""Nonparametric confidence intervals for quantiles.

The paper computes 95 % nonparametric (asymmetric) confidence intervals
for medians and for the 90th percentile using the order-statistics
method described by Le Boudec ("Performance Evaluation of Computer and
Communication Systems", 2011).  The method makes no distributional
assumption beyond iid sampling: for a sample of size ``n`` and target
quantile ``p``, the number of observations below the true quantile is
Binomial(n, p), so a pair of order statistics ``(x_(j), x_(k))`` covers
the quantile with probability ``P(j <= B < k)``.

Figure 3's footnote notes that three repetitions are too few to compute
a CI at all — :func:`quantile_ci_indices` therefore returns ``None``
when no valid pair of order statistics exists, and callers must handle
that case explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["QuantileCI", "quantile_ci_indices", "quantile_ci", "median_ci"]


@dataclass(frozen=True)
class QuantileCI:
    """A point estimate and confidence interval for one quantile."""

    quantile: float
    confidence: float
    estimate: float
    low: float
    high: float
    n: int
    #: Achieved (exact binomial) coverage probability; always >= confidence.
    coverage: float

    @property
    def width(self) -> float:
        """Absolute CI width."""
        return self.high - self.low

    @property
    def relative_width(self) -> float:
        """CI width relative to the point estimate (for error bounds)."""
        if self.estimate == 0:
            return float("inf")
        return self.width / abs(self.estimate)

    def within_error_bound(self, error: float) -> bool:
        """True when the CI lies within ``estimate * (1 +/- error)``.

        This is the acceptance criterion used by CONFIRM and by the
        paper's Figures 13 and 19 (1 % and 10 % error bounds).
        """
        lo_bound = self.estimate * (1.0 - error)
        hi_bound = self.estimate * (1.0 + error)
        return self.low >= lo_bound and self.high <= hi_bound

    def contains(self, value: float) -> bool:
        """True when ``value`` falls inside the interval."""
        return self.low <= value <= self.high


def quantile_ci_indices(
    n: int, quantile: float = 0.5, confidence: float = 0.95
) -> Optional[tuple[int, int, float]]:
    """Order-statistic indices for a nonparametric quantile CI.

    Returns ``(j, k, coverage)`` with **1-based** order-statistic indices
    such that ``P(x_(j) <= q_p <= x_(k)) = coverage >= confidence``, or
    ``None`` when ``n`` is too small for any pair to reach the requested
    confidence.

    The indices are the standard equal-tail choice: ``j`` is the largest
    index with ``P(B < j) <= alpha/2`` and ``k`` the smallest index with
    ``P(B >= k) <= alpha/2`` for ``B ~ Binomial(n, p)``.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n < 2:
        return None

    alpha = 1.0 - confidence
    dist = _scipy_stats.binom(n, quantile)

    # Largest j in [1, n] with P(B <= j - 1) <= alpha / 2.
    j = int(dist.ppf(alpha / 2.0))
    while j >= 1 and dist.cdf(j - 1) > alpha / 2.0:
        j -= 1
    j = max(j, 0)

    # Smallest k in [1, n] with P(B >= k) <= alpha / 2, i.e.
    # 1 - P(B <= k - 1) <= alpha / 2.
    k = int(dist.ppf(1.0 - alpha / 2.0)) + 1
    while k <= n and (1.0 - dist.cdf(k - 1)) > alpha / 2.0:
        k += 1

    if j < 1 or k > n or j >= k:
        return None

    coverage = float(dist.cdf(k - 1) - dist.cdf(j - 1))
    if coverage < confidence - 1e-12:
        return None
    return j, k, coverage


def quantile_ci(
    samples: Sequence[float] | np.ndarray,
    quantile: float = 0.5,
    confidence: float = 0.95,
) -> Optional[QuantileCI]:
    """Point estimate and nonparametric CI for ``quantile``.

    The point estimate uses :func:`numpy.percentile` (linear
    interpolation); the CI bounds are order statistics per
    :func:`quantile_ci_indices`.  Returns ``None`` when the sample is too
    small to support the requested confidence (for example fewer than 6
    samples for a 95 % median CI).
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    n = arr.size
    indices = quantile_ci_indices(n, quantile, confidence)
    estimate = float(np.percentile(arr, quantile * 100.0))
    if indices is None:
        return None
    j, k, coverage = indices
    return QuantileCI(
        quantile=quantile,
        confidence=confidence,
        estimate=estimate,
        low=float(arr[j - 1]),
        high=float(arr[k - 1]),
        n=n,
        coverage=coverage,
    )


def median_ci(
    samples: Sequence[float] | np.ndarray, confidence: float = 0.95
) -> Optional[QuantileCI]:
    """Convenience wrapper: nonparametric CI for the median."""
    return quantile_ci(samples, quantile=0.5, confidence=confidence)
