"""Group-comparison tests: ANOVA and its nonparametric counterpart.

F5.3 names ANOVA among the "standard statistical tools" that produce
robust results under stochastic variability.  :func:`one_way_anova`
wraps the classic F-test; because cloud measurements are frequently
non-normal (Section 5 recommends checking first), the Kruskal-Wallis
rank test is provided as the drop-in nonparametric alternative, and
:func:`compare_groups` picks between them based on a Shapiro-Wilk
pre-test — the decision procedure the paper's guidelines describe.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

from repro.stats.testing import TestVerdict, shapiro_test

__all__ = ["one_way_anova", "kruskal_wallis", "compare_groups"]


def _validate_groups(groups: Sequence[Sequence[float]], min_size: int) -> list[np.ndarray]:
    if len(groups) < 2:
        raise ValueError("need at least two groups to compare")
    arrays = [np.asarray(g, dtype=float) for g in groups]
    for i, arr in enumerate(arrays):
        if arr.ndim != 1:
            raise ValueError(f"group {i} must be 1-D")
        if arr.size < min_size:
            raise ValueError(f"group {i} needs at least {min_size} samples")
    return arrays


def one_way_anova(
    groups: Sequence[Sequence[float]], alpha: float = 0.05
) -> TestVerdict:
    """One-way ANOVA; H0: all group means are equal.

    Assumes approximate normality and equal variances — check with
    :func:`repro.stats.testing.shapiro_test` first, or use
    :func:`compare_groups` which does it for you.
    """
    arrays = _validate_groups(groups, min_size=2)
    stat, p = _scipy_stats.f_oneway(*arrays)
    return TestVerdict(
        name="one-way-anova",
        statistic=float(stat),
        p_value=float(p),
        alpha=alpha,
        reject_null=bool(p < alpha),
        null_hypothesis="all group means are equal",
        details={"groups": float(len(arrays))},
    )


def kruskal_wallis(
    groups: Sequence[Sequence[float]], alpha: float = 0.05
) -> TestVerdict:
    """Kruskal-Wallis H test; H0: all groups share a distribution.

    The rank-based alternative to ANOVA — appropriate for the skewed,
    long-tailed samples cloud networks produce.
    """
    arrays = _validate_groups(groups, min_size=2)
    stat, p = _scipy_stats.kruskal(*arrays)
    return TestVerdict(
        name="kruskal-wallis",
        statistic=float(stat),
        p_value=float(p),
        alpha=alpha,
        reject_null=bool(p < alpha),
        null_hypothesis="all groups come from the same distribution",
        details={"groups": float(len(arrays))},
    )


def compare_groups(
    groups: Sequence[Sequence[float]], alpha: float = 0.05
) -> TestVerdict:
    """Compare groups with the appropriate test (F5.4's decision rule).

    Shapiro-Wilk pre-tests each group (Bonferroni-adjusted so the
    family-wise false-positive rate stays at ``alpha``); if any group
    rejects normality, the nonparametric Kruskal-Wallis test is used,
    otherwise ANOVA.  The chosen test's name is visible in the
    returned verdict.
    """
    arrays = _validate_groups(groups, min_size=3)
    pretest_alpha = alpha / len(arrays)
    normal = True
    for arr in arrays:
        if arr.size >= 3 and np.std(arr) > 0:
            if shapiro_test(arr, alpha=pretest_alpha).reject_null:
                normal = False
                break
    if normal:
        return one_way_anova(arrays, alpha=alpha)
    return kruskal_wallis(arrays, alpha=alpha)
