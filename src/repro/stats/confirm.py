"""CONFIRM analysis: how many repetitions does an experiment need?

CONFIRM (Maricq et al., OSDI 2018, cited as [46]) takes a stream of
measurements and, for each prefix length ``n``, computes the
nonparametric confidence interval of a target quantile.  Plotting the
interval against ``n`` (Figure 13) shows how the CI tightens with more
repetitions and predicts the number of repetitions required before the
CI fits within a desired error bound around the estimate — the paper
finds 70+ repetitions are needed for 1 % bounds on common benchmarks.

Crucially, the analysis also *diagnoses broken assumptions*: when
repeated measurements are not iid (the token-bucket carry-over of
Figure 19), CIs **widen** with additional repetitions instead of
tightening; :func:`confirm_curve` exposes enough information for
callers to detect that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.stats.quantiles import QuantileCI, quantile_ci, quantile_ci_indices

__all__ = [
    "ConfirmCurve",
    "confirm_curve",
    "repetitions_needed",
    "min_samples_for_ci",
]


@dataclass
class ConfirmCurve:
    """CI evolution as repetitions accumulate.

    Arrays are aligned: entry ``i`` describes the estimate computed from
    the first ``ns[i]`` measurements.  Prefixes too small to support a
    CI are skipped entirely.
    """

    quantile: float
    confidence: float
    ns: np.ndarray
    estimates: np.ndarray
    ci_low: np.ndarray
    ci_high: np.ndarray

    def __len__(self) -> int:
        return int(self.ns.size)

    @property
    def relative_half_widths(self) -> np.ndarray:
        """Max one-sided CI excursion relative to the running estimate."""
        with np.errstate(divide="ignore", invalid="ignore"):
            upper = (self.ci_high - self.estimates) / np.abs(self.estimates)
            lower = (self.estimates - self.ci_low) / np.abs(self.estimates)
        return np.maximum(upper, lower)

    def first_n_within(self, error: float) -> Optional[int]:
        """Smallest ``n`` whose CI fits within ``estimate * (1 +/- error)``."""
        mask = self.relative_half_widths <= error
        if not np.any(mask):
            return None
        return int(self.ns[np.argmax(mask)])

    def widening_detected(self, window: int = 10) -> bool:
        """True when CI width grows over the trailing ``window`` points.

        A widening CI signals non-iid samples (F4.4 / Figure 19): under
        iid sampling the expected CI width shrinks roughly as 1/sqrt(n).
        The window adapts downward for short curves (never below 4
        points; curves under 12 points cannot support the comparison).
        """
        widths = self.ci_high - self.ci_low
        if widths.size < 12:
            return False
        window = max(min(window, int(widths.size) // 3), 4)
        early = float(np.mean(widths[-2 * window : -window]))
        late = float(np.mean(widths[-window:]))
        return late > early * 1.05

    def final_ci(self) -> QuantileCI:
        """CI computed from the full measurement set."""
        if len(self) == 0:
            raise ValueError("curve is empty; not enough samples for any CI")
        return QuantileCI(
            quantile=self.quantile,
            confidence=self.confidence,
            estimate=float(self.estimates[-1]),
            low=float(self.ci_low[-1]),
            high=float(self.ci_high[-1]),
            n=int(self.ns[-1]),
            coverage=self.confidence,
        )


def confirm_curve(
    samples: Sequence[float] | np.ndarray,
    quantile: float = 0.5,
    confidence: float = 0.95,
) -> ConfirmCurve:
    """Compute the CONFIRM curve over all prefixes of ``samples``.

    ``samples`` must be in collection order — the whole point of the
    analysis is to show what an experimenter would have concluded after
    each additional repetition.
    """
    arr = np.asarray(samples, dtype=float)
    ns: list[int] = []
    estimates: list[float] = []
    lows: list[float] = []
    highs: list[float] = []
    for n in range(2, arr.size + 1):
        ci = quantile_ci(arr[:n], quantile=quantile, confidence=confidence)
        if ci is None:
            continue
        ns.append(n)
        estimates.append(ci.estimate)
        lows.append(ci.low)
        highs.append(ci.high)
    return ConfirmCurve(
        quantile=quantile,
        confidence=confidence,
        ns=np.asarray(ns, dtype=int),
        estimates=np.asarray(estimates, dtype=float),
        ci_low=np.asarray(lows, dtype=float),
        ci_high=np.asarray(highs, dtype=float),
    )


def repetitions_needed(
    samples: Sequence[float] | np.ndarray,
    quantile: float = 0.5,
    confidence: float = 0.95,
    error: float = 0.01,
) -> Optional[int]:
    """Repetitions required for the CI to fit within ``error`` bounds.

    Returns ``None`` when even the full sample does not achieve the
    bound — the experimenter needs more repetitions than were run (the
    situation the paper shows most surveyed articles are in).
    """
    curve = confirm_curve(samples, quantile=quantile, confidence=confidence)
    if len(curve) == 0:
        return None
    return curve.first_n_within(error)


def min_samples_for_ci(quantile: float = 0.5, confidence: float = 0.95) -> int:
    """Smallest ``n`` for which a nonparametric CI exists at all.

    For the 95 % median CI this is 6; for the 90th percentile it is
    substantially larger, which is why Figure 3(b) notes tail estimates
    are even harder to pin down.
    """
    n = 2
    while quantile_ci_indices(n, quantile, confidence) is None:
        n += 1
        if n > 100_000:
            raise RuntimeError(
                "no nonparametric CI below n=100000; arguments are likely extreme"
            )
    return n
