"""Time-series tooling for the F5.4 guidelines.

Section 5's recommendations for non-stationary measurements:

* "results can be limited to time periods when stationarity holds" —
  :func:`stationary_windows` scans a series with the ADF test and
  returns the maximal windows that pass;
* "discretize performance evaluation into units of time ... gathering
  median performance for each interval" — :func:`interval_medians`
  (complementing :meth:`repro.trace.TimeSeries.resample_medians`);
* "repetitions can be run over longer time frames, different diurnal
  or calendar cycles" — :func:`diurnal_profile` summarizes a trace by
  hour-of-day so cycles are visible before they bias a study;
* :func:`autocorrelation` exposes the ACF used by the Ljung-Box test
  for direct inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.testing import adf_test
from repro.trace import TimeSeries

__all__ = [
    "autocorrelation",
    "stationary_windows",
    "interval_medians",
    "diurnal_profile",
    "DiurnalProfile",
]


def autocorrelation(
    samples: Sequence[float] | np.ndarray, max_lag: int = 20
) -> np.ndarray:
    """Sample autocorrelation for lags ``1..max_lag``."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < max_lag + 2:
        raise ValueError("series too short for the requested lags")
    centered = arr - arr.mean()
    denom = float(centered @ centered)
    if denom == 0.0:
        raise ValueError("autocorrelation undefined for a constant series")
    return np.array(
        [
            float(centered[:-lag] @ centered[lag:]) / denom
            for lag in range(1, max_lag + 1)
        ]
    )


def stationary_windows(
    series: TimeSeries,
    window_samples: int = 60,
    stride_samples: int | None = None,
    alpha: float = 0.05,
) -> list[tuple[float, float]]:
    """Time windows over which the series tests stationary.

    The series is scanned in windows of ``window_samples``; windows
    where the ADF test rejects the unit root are kept and adjacent
    passing windows are merged.  Returns ``(t_start, t_end)`` pairs.
    """
    if window_samples < 16:
        raise ValueError("windows need at least 16 samples for the ADF test")
    if stride_samples is None:
        stride_samples = window_samples // 2
    if stride_samples < 1:
        raise ValueError("stride must be at least 1 sample")
    n = len(series)
    passing: list[tuple[float, float]] = []
    for start in range(0, max(n - window_samples + 1, 0), stride_samples):
        chunk = series.values[start : start + window_samples]
        if np.std(chunk) == 0:
            verdict_ok = True  # constant data is trivially stationary
        else:
            try:
                verdict_ok = adf_test(chunk, alpha=alpha).reject_null
            except ValueError:
                verdict_ok = False
        if verdict_ok:
            t0 = float(series.times[start])
            t1 = float(series.times[min(start + window_samples, n) - 1])
            if passing and t0 <= passing[-1][1]:
                passing[-1] = (passing[-1][0], t1)
            else:
                passing.append((t0, t1))
    return passing


def interval_medians(series: TimeSeries, interval_s: float) -> TimeSeries:
    """Median of each fixed interval (the F5.4 discretization).

    Thin functional alias over
    :meth:`repro.trace.TimeSeries.resample_medians` so the guideline
    has a discoverable entry point in the stats package.
    """
    return series.resample_medians(interval_s)


@dataclass(frozen=True)
class DiurnalProfile:
    """Hour-of-day summary of a long-running trace."""

    #: Median value per hour 0-23 (NaN for hours with no samples).
    hourly_medians: np.ndarray
    #: Sample count per hour.
    hourly_counts: np.ndarray

    @property
    def peak_hour(self) -> int:
        """Hour with the highest median."""
        return int(np.nanargmax(self.hourly_medians))

    @property
    def trough_hour(self) -> int:
        """Hour with the lowest median."""
        return int(np.nanargmin(self.hourly_medians))

    @property
    def diurnal_swing(self) -> float:
        """Relative peak-to-trough spread of the hourly medians."""
        peak = float(np.nanmax(self.hourly_medians))
        trough = float(np.nanmin(self.hourly_medians))
        if trough == 0:
            return float("inf")
        return (peak - trough) / trough


def diurnal_profile(series: TimeSeries, t0_offset_s: float = 0.0) -> DiurnalProfile:
    """Summarize a trace by hour of (simulated) day.

    ``t0_offset_s`` anchors the trace's t=0 to a wall-clock hour, for
    traces that did not start at midnight.
    """
    if len(series) == 0:
        raise ValueError("cannot profile an empty series")
    hours = ((series.times + t0_offset_s) // 3_600.0 % 24).astype(int)
    medians = np.full(24, np.nan)
    counts = np.zeros(24, dtype=int)
    for hour in range(24):
        mask = hours == hour
        counts[hour] = int(mask.sum())
        if counts[hour]:
            medians[hour] = float(np.median(series.values[mask]))
    return DiurnalProfile(hourly_medians=medians, hourly_counts=counts)
