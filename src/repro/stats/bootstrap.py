"""Bootstrap confidence intervals.

The order-statistics method of :mod:`repro.stats.quantiles` is the
paper's primary tool; the percentile bootstrap here serves as an
independent cross-check and covers statistics (like the mean or the
coefficient of variation) that have no order-statistics CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["BootstrapCI", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """Result of a percentile-bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    @property
    def width(self) -> float:
        """Absolute CI width."""
        return self.high - self.low


def bootstrap_ci(
    samples: Sequence[float] | np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.median,
    confidence: float = 0.95,
    resamples: int = 2_000,
    rng: np.random.Generator | None = None,
) -> BootstrapCI:
    """Percentile bootstrap CI for an arbitrary statistic.

    ``rng`` defaults to a fixed-seed generator so analyses are
    reproducible by default — fitting, for a library about
    reproducibility.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("bootstrap needs at least 2 samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise ValueError("resamples must be at least 10")
    if rng is None:
        rng = np.random.default_rng(0)

    indices = rng.integers(0, arr.size, size=(resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[indices])
    alpha = 1.0 - confidence
    low, high = np.percentile(stats, [100 * alpha / 2.0, 100 * (1 - alpha / 2.0)])
    return BootstrapCI(
        estimate=float(statistic(arr)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        resamples=resamples,
    )
