"""Dispersion summaries: coefficient of variation and IQR statistics.

Figure 6 summarizes Amazon EC2 bandwidth variability as a coefficient
of variation per access pattern; Figures 4, 5, 9, 16 and 17 use IQR
boxes with 1st/99th-percentile whiskers.  These helpers compute both
from raw samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.trace import BoxSummary, summarize_box

__all__ = ["coefficient_of_variation", "dispersion_summary", "DispersionSummary"]


def coefficient_of_variation(samples: Sequence[float] | np.ndarray) -> float:
    """Standard deviation divided by the mean, as a fraction.

    Raises :class:`ValueError` for empty input.  A zero mean yields
    ``inf`` — the same contract as :func:`dispersion_summary`, so
    campaign rows built from degenerate samples (all-zero runtimes)
    summarize as "infinitely dispersed" instead of crashing the sweep.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute CoV of an empty sample")
    mean = float(np.mean(arr))
    if mean == 0.0:
        return float("inf")
    return float(np.std(arr) / mean)


@dataclass(frozen=True)
class DispersionSummary:
    """All the dispersion statistics the paper reports for one sample."""

    n: int
    mean: float
    std: float
    cov: float
    box: BoxSummary

    @property
    def median(self) -> float:
        """Sample median (p50 of the box summary)."""
        return self.box.p50

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.box.iqr


def dispersion_summary(samples: Sequence[float] | np.ndarray) -> DispersionSummary:
    """Compute a :class:`DispersionSummary` for ``samples``.

    Shares :func:`coefficient_of_variation`'s contract: empty input
    raises, a zero mean reports ``cov=inf``.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(np.mean(arr))
    std = float(np.std(arr))
    cov = std / mean if mean != 0 else float("inf")
    return DispersionSummary(
        n=int(arr.size), mean=mean, std=std, cov=cov, box=summarize_box(arr)
    )
