"""Statistical assumption tests recommended by the paper (F5.4).

Section 5 instructs experimenters to test collected samples for
normality [54], independence [45], and stationarity [22] before
applying standard analyses:

* :func:`shapiro_test` — Shapiro-Wilk normality test;
* :func:`mann_whitney_test` — Mann-Whitney U test that two sample sets
  come from the same distribution (used to compare repetition batches);
* :func:`runs_test` — Wald-Wolfowitz runs test of randomness around the
  median (detects serial dependence such as token-bucket carry-over);
* :func:`ljung_box_test` — portmanteau test for autocorrelation;
* :func:`adf_test` — augmented Dickey-Fuller unit-root test for
  stationarity, implemented directly on numpy least squares with
  MacKinnon finite-sample critical values (statsmodels is not a
  dependency of this library).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "TestVerdict",
    "shapiro_test",
    "mann_whitney_test",
    "runs_test",
    "ljung_box_test",
    "adf_test",
    "pettitt_test",
]


@dataclass(frozen=True)
class TestVerdict:
    """Uniform result record for every hypothesis test in this module."""

    name: str
    statistic: float
    p_value: float
    alpha: float
    #: True when the *null hypothesis is rejected* at ``alpha``.
    reject_null: bool
    #: Human-readable statement of the null hypothesis.
    null_hypothesis: str
    details: Mapping[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "REJECT" if self.reject_null else "keep"
        return (
            f"{self.name}: stat={self.statistic:.4f} p={self.p_value:.4g} "
            f"-> {verdict} H0 ({self.null_hypothesis}) at alpha={self.alpha}"
        )


def _as_array(samples: Sequence[float] | np.ndarray, min_n: int, name: str) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} expects a 1-D sample, got shape {arr.shape}")
    if arr.size < min_n:
        raise ValueError(f"{name} needs at least {min_n} samples, got {arr.size}")
    return arr


def shapiro_test(
    samples: Sequence[float] | np.ndarray, alpha: float = 0.05
) -> TestVerdict:
    """Shapiro-Wilk test; H0: the sample is normally distributed."""
    arr = _as_array(samples, 3, "shapiro_test")
    stat, p = _scipy_stats.shapiro(arr)
    return TestVerdict(
        name="shapiro-wilk",
        statistic=float(stat),
        p_value=float(p),
        alpha=alpha,
        reject_null=bool(p < alpha),
        null_hypothesis="sample is normally distributed",
    )


def mann_whitney_test(
    sample_a: Sequence[float] | np.ndarray,
    sample_b: Sequence[float] | np.ndarray,
    alpha: float = 0.05,
) -> TestVerdict:
    """Mann-Whitney U test; H0: the two samples share a distribution.

    The paper uses this (citing Mann & Whitney [45]) to check whether
    one batch of repetitions is stochastically larger than another —
    exactly what happens when a token bucket drains between batches.
    """
    a = _as_array(sample_a, 1, "mann_whitney_test")
    b = _as_array(sample_b, 1, "mann_whitney_test")
    stat, p = _scipy_stats.mannwhitneyu(a, b, alternative="two-sided")
    return TestVerdict(
        name="mann-whitney-u",
        statistic=float(stat),
        p_value=float(p),
        alpha=alpha,
        reject_null=bool(p < alpha),
        null_hypothesis="both samples come from the same distribution",
    )


def runs_test(
    samples: Sequence[float] | np.ndarray, alpha: float = 0.05
) -> TestVerdict:
    """Wald-Wolfowitz runs test; H0: sequence order is random.

    The sequence is dichotomized around its median; values equal to the
    median are dropped, which is the standard treatment.  Too few
    remaining values (< 2 in either class) raise :class:`ValueError`.
    """
    arr = _as_array(samples, 4, "runs_test")
    median = float(np.median(arr))
    signs = arr[arr != median] > median
    n_pos = int(np.sum(signs))
    n_neg = int(signs.size - n_pos)
    if n_pos < 2 or n_neg < 2:
        raise ValueError("runs test needs at least 2 values on each side of the median")

    runs = 1 + int(np.sum(signs[1:] != signs[:-1]))
    n = n_pos + n_neg
    mean_runs = 2.0 * n_pos * n_neg / n + 1.0
    var_runs = (
        2.0 * n_pos * n_neg * (2.0 * n_pos * n_neg - n) / (n**2 * (n - 1.0))
    )
    z = (runs - mean_runs) / np.sqrt(var_runs)
    p = 2.0 * float(_scipy_stats.norm.sf(abs(z)))
    return TestVerdict(
        name="wald-wolfowitz-runs",
        statistic=float(z),
        p_value=p,
        alpha=alpha,
        reject_null=bool(p < alpha),
        null_hypothesis="observations are serially independent",
        details={"runs": float(runs), "expected_runs": mean_runs},
    )


def _autocorrelation(arr: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelation for lags 1..max_lag."""
    centered = arr - np.mean(arr)
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        raise ValueError("autocorrelation undefined for a constant series")
    acf = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        acf[lag - 1] = float(np.dot(centered[:-lag], centered[lag:])) / denom
    return acf


def ljung_box_test(
    samples: Sequence[float] | np.ndarray,
    lags: int = 10,
    alpha: float = 0.05,
) -> TestVerdict:
    """Ljung-Box portmanteau test; H0: no autocorrelation up to ``lags``."""
    arr = _as_array(samples, max(8, lags + 2), "ljung_box_test")
    n = arr.size
    lags = min(lags, n - 2)
    acf = _autocorrelation(arr, lags)
    k = np.arange(1, lags + 1)
    q = n * (n + 2.0) * float(np.sum(acf**2 / (n - k)))
    p = float(_scipy_stats.chi2.sf(q, df=lags))
    return TestVerdict(
        name="ljung-box",
        statistic=q,
        p_value=p,
        alpha=alpha,
        reject_null=bool(p < alpha),
        null_hypothesis=f"no autocorrelation up to lag {lags}",
        details={"lags": float(lags)},
    )


def pettitt_test(
    samples: Sequence[float] | np.ndarray, alpha: float = 0.05
) -> TestVerdict:
    """Pettitt's changepoint test; H0: no shift in the sequence.

    A rank-based (Mann-Whitney-flavoured) scan over *every* split
    point: ``U_t = sum_{i<=t} sum_{j>t} sign(x_j - x_i)``, with the
    statistic ``K = max |U_t|`` and the standard approximation
    ``p ~= 2 exp(-6 K^2 / (n^3 + n^2))``.  This catches the abrupt
    level shift a depleting token bucket produces even when it happens
    early in a measurement campaign — exactly where a fixed
    half-vs-half comparison loses power.

    The detected changepoint index (0-based, last sample of the first
    regime) is reported in ``details``.
    """
    arr = _as_array(samples, 8, "pettitt_test")
    n = arr.size
    # U_t via ranks: U_t = 2 * sum_{i<=t} r_i - t * (n + 1), where r_i
    # are the ranks of the full sample (mid-ranks for ties).
    ranks = _scipy_stats.rankdata(arr)
    cumulative = np.cumsum(ranks)
    t = np.arange(1, n)  # split after index t-1
    u = 2.0 * cumulative[:-1] - t * (n + 1.0)
    k_index = int(np.argmax(np.abs(u)))
    k = float(np.abs(u[k_index]))
    p = min(1.0, 2.0 * float(np.exp(-6.0 * k**2 / (n**3 + n**2))))
    return TestVerdict(
        name="pettitt-changepoint",
        statistic=k,
        p_value=p,
        alpha=alpha,
        reject_null=bool(p < alpha),
        null_hypothesis="the sequence has no change point",
        details={"changepoint_index": float(k_index)},
    )


#: MacKinnon (2010) response-surface coefficients for the constant-only
#: ("c") ADF regression: crit(T) = b0 + b1/T + b2/T^2.
_MACKINNON_C = {
    0.01: (-3.43035, -6.5393, -16.786),
    0.05: (-2.86154, -2.8903, -4.234),
    0.10: (-2.56677, -1.5384, -2.809),
}


def _mackinnon_critical(level: float, nobs: int) -> float:
    b0, b1, b2 = _MACKINNON_C[level]
    return b0 + b1 / nobs + b2 / nobs**2


def _adf_fit(arr: np.ndarray, lag: int) -> tuple[float, float, int]:
    """Fit the ADF regression at one lag order.

    Returns ``(t_statistic_of_gamma, aic, nobs)``.
    """
    dy = np.diff(arr)
    y_lag = arr[:-1]
    nobs = dy.size - lag
    if nobs < lag + 4:
        raise ValueError("series too short for the chosen lag order")
    rows = []
    for i in range(lag, dy.size):
        row = [y_lag[i], 1.0]
        row.extend(dy[i - j] for j in range(1, lag + 1))
        rows.append(row)
    x = np.asarray(rows)
    target = dy[lag:]

    coef, _, _, _ = np.linalg.lstsq(x, target, rcond=None)
    residuals = target - x @ coef
    k = x.shape[1]
    dof = max(nobs - k, 1)
    sigma2 = float(residuals @ residuals) / dof
    xtx_inv = np.linalg.pinv(x.T @ x)
    se_gamma = float(np.sqrt(sigma2 * xtx_inv[0, 0]))
    if se_gamma == 0.0:
        raise ValueError("degenerate regression: zero standard error")
    t_stat = float(coef[0] / se_gamma)
    ssr = float(residuals @ residuals)
    aic = nobs * np.log(max(ssr / nobs, 1e-300)) + 2.0 * k
    return t_stat, aic, nobs


def adf_test(
    samples: Sequence[float] | np.ndarray,
    max_lag: int | None = None,
    alpha: float = 0.05,
) -> TestVerdict:
    """Augmented Dickey-Fuller unit-root test; H0: series has a unit root.

    Rejecting the null supports stationarity.  Uses the constant-only
    regression ``dy_t = a + g*y_{t-1} + sum b_i dy_{t-i} + e``; the lag
    order is chosen by AIC over ``0..max_lag`` (Schwert's rule bounds
    the search, as in standard implementations).  The p-value is
    interpolated between MacKinnon critical values, which is accurate
    enough for the accept/reject decisions the methodology requires.
    """
    arr = _as_array(samples, 12, "adf_test")
    n = arr.size
    if max_lag is None:
        # Schwert's bound, further capped for short series: AIC happily
        # overfits high lag orders on n < 40, destroying test power.
        schwert = int(np.floor(12.0 * (n / 100.0) ** 0.25))
        max_lag = min(schwert, max((n - 16) // 3, 0))
    max_lag = max(0, min(max_lag, n // 2 - 4))

    best: tuple[float, float, int] | None = None
    best_lag = 0
    for lag in range(0, max_lag + 1):
        try:
            fit = _adf_fit(arr, lag)
        except ValueError:
            break
        if best is None or fit[1] < best[1]:
            best = fit
            best_lag = lag
    if best is None:
        raise ValueError("series too short for any ADF regression")
    t_stat, _, nobs = best
    max_lag = best_lag

    crits = {lvl: _mackinnon_critical(lvl, nobs) for lvl in _MACKINNON_C}
    # Piecewise-linear p-value interpolation across the three levels.
    levels = sorted(crits)  # [0.01, 0.05, 0.10]
    values = [crits[lvl] for lvl in levels]
    if t_stat <= values[0]:
        p = 0.005
    elif t_stat >= values[-1]:
        # Flat extrapolation above the 10% critical value: the test
        # cannot resolve p there, so report a conservative 0.5+.
        p = min(0.99, 0.10 + 0.4 * (t_stat - values[-1]))
    else:
        p = float(np.interp(t_stat, values, levels))

    reject = t_stat < crits[alpha] if alpha in crits else p < alpha
    return TestVerdict(
        name="augmented-dickey-fuller",
        statistic=t_stat,
        p_value=p,
        alpha=alpha,
        reject_null=bool(reject),
        null_hypothesis="series has a unit root (is non-stationary)",
        details={
            "lag_order": float(max_lag),
            "nobs": float(nobs),
            "crit_1pct": crits[0.01],
            "crit_5pct": crits[0.05],
            "crit_10pct": crits[0.10],
        },
    )
