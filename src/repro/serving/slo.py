"""SLO gating: sliding-window latency targets over streaming quantiles.

An SLO here is what production serving teams write down: "p99 under
250 ms over every 30-second window".  :class:`SloPolicy` holds the
targets and evaluates them against the tumbling-window rows the
serving engine's :class:`~repro.obs.quantiles.WindowedQuantiles`
telemetry already streams (the P² estimators — no latency list is ever
materialized), producing an :class:`SloReport`: every violation window
with its observed-vs-target gap, worst observed value per quantile,
and a pass/fail verdict.

Reports are JSON round-trippable (store documents) and render as
``repro_slo_*`` Prometheus gauges
(:meth:`SloReport.to_metrics`), so a serving campaign's gate is
scrape-able with the same :func:`~repro.obs.metrics.parse_prometheus_text`
tooling the rest of the observability layer uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["SloPolicy", "SloViolation", "SloReport"]


@dataclass(frozen=True)
class SloViolation:
    """One window where an observed quantile exceeded its target."""

    window_start: float
    #: Quantile column key (``p50`` / ``p99`` / ``p999``).
    quantile: str
    observed_s: float
    target_s: float

    @property
    def excess_ratio(self) -> float:
        """How far over target the window ran (1.0 = exactly at it)."""
        return self.observed_s / self.target_s

    def to_dict(self) -> dict:
        return {
            "window_start": self.window_start,
            "quantile": self.quantile,
            "observed_s": self.observed_s,
            "target_s": self.target_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SloViolation":
        return cls(
            window_start=float(payload["window_start"]),
            quantile=str(payload["quantile"]),
            observed_s=float(payload["observed_s"]),
            target_s=float(payload["target_s"]),
        )


@dataclass(frozen=True)
class SloPolicy:
    """Latency targets evaluated per tumbling window.

    A target of 0 disables that quantile's gate.  ``window_s`` is the
    evaluation granularity (it also sets the serving engine's
    telemetry window), and windows with fewer than ``min_count``
    completed requests are skipped — a one-request window's p99.9 is
    noise, not a violation.
    """

    p50_ms: float = 0.0
    p99_ms: float = 0.0
    p999_ms: float = 0.0
    window_s: float = 30.0
    min_count: int = 5

    def __post_init__(self) -> None:
        for name in ("p50_ms", "p99_ms", "p999_ms", "window_s"):
            value = float(getattr(self, name))
            if value < 0:
                raise ValueError(f"{name} cannot be negative")
            object.__setattr__(self, name, value)
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        object.__setattr__(self, "min_count", int(self.min_count))
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1")

    def targets(self) -> dict[str, float]:
        """Enabled targets in seconds, keyed by quantile column."""
        pairs = (
            ("p50", self.p50_ms),
            ("p99", self.p99_ms),
            ("p999", self.p999_ms),
        )
        return {key: ms / 1000.0 for key, ms in pairs if ms > 0}

    def evaluate(self, windows: Sequence[Mapping]) -> "SloReport":
        """Gate every eligible window row against the enabled targets.

        ``windows`` are
        :meth:`~repro.obs.quantiles.WindowedQuantiles.rows` dicts:
        ``window_start``, ``count``, and one column per quantile.
        """
        targets = self.targets()
        violations: list[SloViolation] = []
        worst: dict[str, float] = {key: math.nan for key in targets}
        n_evaluated = 0
        for row in windows:
            if row.get("count", 0.0) < self.min_count:
                continue
            n_evaluated += 1
            for key, target_s in targets.items():
                observed = row.get(key)
                if observed is None or math.isnan(observed):
                    continue
                if math.isnan(worst[key]) or observed > worst[key]:
                    worst[key] = observed
                if observed > target_s:
                    violations.append(
                        SloViolation(
                            window_start=float(row["window_start"]),
                            quantile=key,
                            observed_s=float(observed),
                            target_s=target_s,
                        )
                    )
        return SloReport(
            policy=self,
            n_windows=len(windows),
            n_evaluated=n_evaluated,
            violations=tuple(violations),
            worst=worst,
        )

    def to_dict(self) -> dict:
        return {
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "window_s": self.window_s,
            "min_count": self.min_count,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SloPolicy":
        return cls(**payload)


@dataclass(frozen=True)
class SloReport:
    """The verdict of one policy evaluation over one run's windows."""

    policy: SloPolicy
    #: All window rows seen (including ones below ``min_count``).
    n_windows: int
    #: Windows that met ``min_count`` and were gated.
    n_evaluated: int
    violations: tuple[SloViolation, ...]
    #: Worst observed value per gated quantile (NaN when never seen).
    worst: dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def n_violation_windows(self) -> int:
        """Distinct windows with at least one quantile over target."""
        return len({v.window_start for v in self.violations})

    def violations_for(self, quantile: str) -> tuple[SloViolation, ...]:
        return tuple(v for v in self.violations if v.quantile == quantile)

    def verdict_rows(self) -> list[dict]:
        """One printable row per gated quantile (the CLI verdict table)."""
        rows = []
        for key, target_s in self.policy.targets().items():
            worst = self.worst.get(key, math.nan)
            n_bad = len(self.violations_for(key))
            rows.append(
                {
                    "quantile": key,
                    "target_ms": round(target_s * 1000.0, 3),
                    "worst_ms": (
                        None
                        if math.isnan(worst)
                        else round(worst * 1000.0, 3)
                    ),
                    "violations": n_bad,
                    "status": "PASS" if n_bad == 0 else "FAIL",
                }
            )
        return rows

    def to_metrics(self, registry) -> None:
        """Emit the report as ``repro_slo_*`` gauges on ``registry``."""
        target = registry.gauge(
            "repro_slo_target_seconds", "Configured latency target"
        )
        worst = registry.gauge(
            "repro_slo_worst_seconds",
            "Worst windowed quantile observed (NaN if never observed)",
        )
        bad = registry.gauge(
            "repro_slo_violation_windows",
            "Windows where the quantile exceeded its target",
        )
        for key, target_s in self.policy.targets().items():
            target.set(target_s, quantile=key)
            worst.set(self.worst.get(key, math.nan), quantile=key)
            bad.set(float(len(self.violations_for(key))), quantile=key)
        registry.gauge(
            "repro_slo_windows_total", "Window rows gated against the policy"
        ).set(float(self.n_evaluated))
        registry.gauge(
            "repro_slo_pass", "1 when every gated window met every target"
        ).set(1.0 if self.passed else 0.0)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy.to_dict(),
            "n_windows": self.n_windows,
            "n_evaluated": self.n_evaluated,
            "violations": [v.to_dict() for v in self.violations],
            "worst": {
                key: (None if math.isnan(value) else value)
                for key, value in self.worst.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SloReport":
        return cls(
            policy=SloPolicy.from_dict(payload["policy"]),
            n_windows=int(payload["n_windows"]),
            n_evaluated=int(payload["n_evaluated"]),
            violations=tuple(
                SloViolation.from_dict(v) for v in payload["violations"]
            ),
            worst={
                key: (math.nan if value is None else float(value))
                for key, value in payload["worst"].items()
            },
        )
