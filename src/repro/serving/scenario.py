"""Serving campaign cells: content-hashed configs, codec, matrices.

The serving counterpart of :mod:`repro.scenarios.orchestrate`: one
:class:`ServingConfig` fully determines one serving run (provider
incarnations, topology, arrival draws, compute noise — all from one
seeded generator), hashes to a stable ``srv-…`` id, and executes as a
:class:`~repro.runtime.cell.Cell` under every executor — serial,
process pool, the batched multistream driver (serving states ride
:func:`repro.simulator.multistream.run_cores` exactly like DAG
streams), or per-machine shard manifests via ``repro worker`` /
``repro merge``.

The experiment this layer exists for is the variability-meets-serving
question: the pseudo-provider ``"fixed"`` gives every node a
:class:`~repro.netmodel.base.ConstantRateModel` at the HPC-cloud-class
median rate — a *clean* fabric with the same mean capacity as the
resampling ``"hpccloud"`` incarnations — so a matrix over
``("hpccloud", "fixed")`` isolates whether shaper *variability* (not
mean bandwidth) turns a passing SLO into p99/p99.9 violation windows
under burst traffic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.cloud.providers import default_providers
from repro.measurement.repository import (
    TraceRepository,
    run_wrapping_corruption,
)
from repro.netmodel.base import ConstantRateModel
from repro.netmodel.state import model_from_state, model_state_dict
from repro.runtime.campaign import ArtifactCodec, CampaignRunner
from repro.runtime.cell import Cell
from repro.runtime.executors import ProcessPoolExecutor, SerialExecutor
from repro.runtime.worker import write_shard_manifests
from repro.serving.arrivals import (
    diurnal_process,
    flash_crowd_process,
    poisson_process,
)
from repro.serving.slo import SloPolicy, SloReport
from repro.serving.state import ServingState
from repro.serving.topology import ServiceTopology
from repro.simulator.cluster import Cluster, NodeSpec
from repro.simulator.engine import SparkEngine

__all__ = [
    "ServingConfig",
    "ServingCellResult",
    "ServingCampaign",
    "run_serving",
    "prepare_serving",
    "finish_serving",
    "run_servings_batched",
    "run_serving_payload",
    "run_serving_payloads_batched",
    "serving_batch_executor",
    "serving_matrix",
    "chain_serving",
    "serving_cells",
    "encode_serving_result",
    "decode_serving_result",
    "SERVING_CODEC",
    "SERVING_DEFAULT_INSTANCES",
    "FIXED_RATE_GBPS",
]

#: Clean-fabric egress rate for the ``"fixed"`` pseudo-provider: the
#: HPC-cloud-class median (its resampled marginals span ~7.7-10.4
#: Gbps), so fixed-vs-hpccloud contrasts variability, not mean capacity.
FIXED_RATE_GBPS = 9.0

#: Default instance type per provider for serving matrices.
SERVING_DEFAULT_INSTANCES: dict[str, str] = {
    "amazon": "c5.xlarge",
    "google": "gce-4core",
    "hpccloud": "hpccloud-8core",
    "fixed": "fixed-9gbps",
}

_ARRIVALS: tuple[str, ...] = ("poisson", "diurnal", "flash")
_TOPOLOGIES: tuple[str, ...] = ("line", "fanout", "three_tier")


@dataclass(frozen=True)
class ServingConfig:
    """One serving cell, fully determining its result."""

    provider_name: str = "hpccloud"
    instance_name: str = "hpccloud-8core"
    n_nodes: int = 8
    #: Call-tree shape (see :class:`~repro.serving.topology.ServiceTopology`).
    topology: str = "three_tier"
    #: Chain length for ``line``, tree depth for ``fanout``.
    depth: int = 3
    #: Fan-out per level for ``fanout`` (ignored otherwise).
    breadth: int = 2
    arrival: str = "poisson"
    #: Open-loop request rate (requests/second); 0 disables the
    #: arrival process (closed-loop-only cells).
    rate_rps: float = 20.0
    duration_s: float = 120.0
    #: Closed-loop user pool size (0 for open-loop-only cells).
    users: int = 0
    think_s: float = 1.0
    payload_scale: float = 1.0
    #: SLO targets in milliseconds; 0 disables that quantile's gate.
    slo_p50_ms: float = 0.0
    slo_p99_ms: float = 250.0
    slo_p999_ms: float = 0.0
    slo_window_s: float = 30.0
    seed: int = 0
    #: ``serving_id`` of the cell whose final fabric state seeds this
    #: cell's run (warm-fabric chains); ``None`` for a fresh fabric.
    predecessor: str | None = None

    def __post_init__(self) -> None:
        # Normalize numerics so equal configs hash equally (the same
        # contract as ScenarioConfig).
        for name in (
            "rate_rps",
            "duration_s",
            "think_s",
            "payload_scale",
            "slo_p50_ms",
            "slo_p99_ms",
            "slo_p999_ms",
            "slo_window_s",
        ):
            object.__setattr__(self, name, float(getattr(self, name)))
        for name in ("n_nodes", "depth", "breadth", "users", "seed"):
            object.__setattr__(self, name, int(getattr(self, name)))
        if self.arrival not in _ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"expected one of {_ARRIVALS}"
            )
        if self.topology not in _TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {_TOPOLOGIES}"
            )
        if self.n_nodes < 2:
            raise ValueError("n_nodes must be >= 2")
        if self.depth < 1 or self.breadth < 1:
            raise ValueError("depth and breadth must be >= 1")
        if self.rate_rps < 0 or self.users < 0:
            raise ValueError("rate_rps and users cannot be negative")
        if self.rate_rps == 0 and self.users == 0:
            raise ValueError("a serving cell needs load: rate_rps, users, or both")
        if self.duration_s <= 0 or self.payload_scale <= 0:
            raise ValueError("duration and payload scale must be positive")
        if self.think_s < 0:
            raise ValueError("think_s cannot be negative")
        if min(self.slo_p50_ms, self.slo_p99_ms, self.slo_p999_ms) < 0:
            raise ValueError("SLO targets cannot be negative")
        if self.slo_window_s <= 0:
            raise ValueError("slo_window_s must be positive")
        if self.predecessor is not None and not self.predecessor.startswith(
            "srv-"
        ):
            raise ValueError(
                f"predecessor must be a serving id, got {self.predecessor!r}"
            )

    @property
    def serving_id(self) -> str:
        """Content hash of the config: the repository cache key."""
        payload_dict = asdict(self)
        if self.predecessor is None:
            payload_dict.pop("predecessor")
        payload = json.dumps(payload_dict, sort_keys=True)
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return f"srv-{digest}"

    def build_topology(self) -> ServiceTopology:
        if self.topology == "line":
            return ServiceTopology.line(self.depth)
        if self.topology == "fanout":
            return ServiceTopology.fanout(self.breadth, self.depth)
        return ServiceTopology.three_tier()

    def slo_policy(self) -> SloPolicy | None:
        """The cell's gate, or ``None`` when every target is disabled."""
        if max(self.slo_p50_ms, self.slo_p99_ms, self.slo_p999_ms) == 0:
            return None
        return SloPolicy(
            p50_ms=self.slo_p50_ms,
            p99_ms=self.slo_p99_ms,
            p999_ms=self.slo_p999_ms,
            window_s=self.slo_window_s,
        )


@dataclass
class ServingCellResult:
    """One serving cell's outcome, store-round-trippable."""

    config: ServingConfig
    n_requests: int
    n_completed: int
    makespan_s: float
    #: Run-level latency summary (count/mean/max/sum + P² quantiles).
    latency: dict
    #: Tumbling-window quantile rows the SLO gate evaluated.
    windows: list
    slo: SloReport | None
    #: Per-node link-model snapshots at finish (chain seeds).
    fabric_state: list | None = None
    cached: bool = False
    #: Event-loop steps (provenance only; never stored in documents).
    n_steps: int | None = None

    @property
    def slo_violations(self) -> int:
        """Violation count (0 without a policy) — provenance hook."""
        return 0 if self.slo is None else len(self.slo.violations)

    @property
    def slo_passed(self) -> bool | None:
        return None if self.slo is None else self.slo.passed

    def aggregate_row(self) -> dict:
        """One sweep-table row: config axes plus latency/SLO verdicts."""

        def ms(key: str):
            value = self.latency.get(key)
            if value is None or (
                isinstance(value, float) and value != value
            ):
                return None
            return round(value * 1000.0, 3)

        return {
            "serving": self.config.serving_id,
            "provider": self.config.provider_name,
            "instance": self.config.instance_name,
            "topology": self.config.topology,
            "arrival": self.config.arrival,
            "rate_rps": self.config.rate_rps,
            "users": self.config.users,
            "chained": self.config.predecessor is not None,
            "n_requests": self.n_requests,
            "p50_ms": ms("p50"),
            "p99_ms": ms("p99"),
            "p999_ms": ms("p999"),
            "max_ms": ms("max_s"),
            "slo_pass": self.slo_passed,
            "slo_violations": self.slo_violations,
        }


def _build_arrivals(config: ServingConfig, rng: np.random.Generator):
    """The cell's open-loop arrival iterator (``None`` when rate is 0).

    The diurnal and flash shapes derive every parameter from the
    configured rate and duration — ``rate_rps`` is the *peak*: diurnal
    swings between a quarter of it and all of it over one full cycle;
    flash idles at a fifth of it and spikes to it for the middle fifth
    of the run.
    """
    if config.rate_rps == 0:
        return None
    if config.arrival == "diurnal":
        return diurnal_process(
            rng,
            base_rps=config.rate_rps / 4.0,
            peak_rps=config.rate_rps,
            period_s=config.duration_s,
            duration_s=config.duration_s,
        )
    if config.arrival == "flash":
        return flash_crowd_process(
            rng,
            base_rps=config.rate_rps / 5.0,
            spike_rps=config.rate_rps,
            spike_start_s=config.duration_s * 0.4,
            spike_len_s=config.duration_s * 0.2,
            duration_s=config.duration_s,
        )
    return poisson_process(rng, config.rate_rps, config.duration_s)


@dataclass
class _PreparedServing:
    """A cell built and ready to run: the prepare/finish seam.

    :func:`run_serving` is prepare → ``state.execute()`` → finish; the
    batched path swaps the middle for one
    :func:`~repro.simulator.multistream.run_cores` call over many
    cells' states.  All RNG-consuming construction happens in prepare,
    so the two paths are bit-identical per cell.
    """

    config: ServingConfig
    state: ServingState


def prepare_serving(
    config: ServingConfig, upstream: "ServingCellResult | None" = None
) -> _PreparedServing:
    """Build one cell's cluster, fabric, topology, and serving state."""
    rng = np.random.default_rng(config.seed)
    if config.predecessor is not None:
        if upstream is None:
            raise ValueError(
                f"cell {config.serving_id} chains after "
                f"{config.predecessor} but no upstream result was supplied"
            )
        if upstream.fabric_state is None:
            raise ValueError(
                f"predecessor {config.predecessor} carries no fabric state"
            )
        if (
            upstream.config.provider_name != config.provider_name
            or upstream.config.instance_name != config.instance_name
        ):
            raise ValueError(
                f"chained cell {config.serving_id} targets "
                f"{config.provider_name}/{config.instance_name} but its "
                f"predecessor ran {upstream.config.provider_name}/"
                f"{upstream.config.instance_name}; a warm-fabric chain "
                "stays on one provider incarnation"
            )
        if len(upstream.fabric_state) != config.n_nodes:
            raise ValueError(
                f"predecessor fabric has {len(upstream.fabric_state)} "
                f"nodes, this cell needs {config.n_nodes}"
            )
        models = [model_from_state(s) for s in upstream.fabric_state]
    elif config.provider_name == "fixed":
        models = [
            ConstantRateModel(FIXED_RATE_GBPS) for _ in range(config.n_nodes)
        ]
    else:
        provider = default_providers()[config.provider_name]
        models = [
            provider.link_model(config.instance_name, rng)
            for _ in range(config.n_nodes)
        ]
    cluster = Cluster(
        n_nodes=config.n_nodes,
        node_spec=NodeSpec(),
        link_model_factory=lambda node: models[node],
    )
    fabric = cluster.build_fabric()
    engine = SparkEngine(cluster, rng=rng)
    state = ServingState(
        engine,
        config.build_topology(),
        fabric,
        duration_s=config.duration_s,
        # Lazy: arrival gaps draw from the same cell generator as the
        # compute noise, interleaved in event order — deterministic,
        # and identical between the serial and batched drivers.
        arrivals=_build_arrivals(config, rng),
        users=config.users,
        think_s=config.think_s,
        payload_scale=config.payload_scale,
        slo_policy=config.slo_policy(),
    )
    return _PreparedServing(config=config, state=state)


def finish_serving(
    prepared: _PreparedServing, outcome
) -> ServingCellResult:
    """Assemble a :class:`ServingCellResult` from a finished run."""
    return ServingCellResult(
        config=prepared.config,
        n_requests=outcome.n_requests,
        n_completed=outcome.n_completed,
        makespan_s=outcome.makespan_s,
        latency=dict(outcome.latency),
        windows=list(outcome.windows),
        slo=outcome.slo,
        fabric_state=[
            model_state_dict(m) for m in prepared.state.fabric.egress_models
        ],
        n_steps=outcome.n_steps,
    )


def run_serving(
    config: ServingConfig, upstream: "ServingCellResult | None" = None
) -> ServingCellResult:
    """Execute one serving cell end to end (pure function of config)."""
    prepared = prepare_serving(config, upstream=upstream)
    return finish_serving(prepared, prepared.state.execute())


def run_servings_batched(
    configs: "list[ServingConfig]",
    upstreams: "list[ServingCellResult | None] | None" = None,
) -> "list[ServingCellResult]":
    """Run independent serving cells through the lockstep batched driver.

    Bit-identical to ``[run_serving(c, u) for ...]`` per cell; all
    cells' shaper-fleet work batches through one concatenated
    super-fleet per fleet class, exactly like
    :func:`repro.scenarios.orchestrate.run_scenarios_batched`.
    """
    from repro.simulator.multistream import run_cores

    if upstreams is None:
        upstreams = [None] * len(configs)
    if len(upstreams) != len(configs):
        raise ValueError("one upstream entry (or None) per config required")
    prepared = [
        prepare_serving(config, upstream=upstream)
        for config, upstream in zip(configs, upstreams)
    ]
    groups: dict[type, list[int]] = {}
    for index, prep in enumerate(prepared):
        groups.setdefault(type(prep.state.fabric.fleet), []).append(index)
    results: list[ServingCellResult | None] = [None] * len(configs)
    for indices in groups.values():
        outcomes = run_cores([prepared[i].state for i in indices])
        for i, outcome in zip(indices, outcomes):
            results[i] = finish_serving(prepared[i], outcome)
    return results  # type: ignore[return-value]


def chain_serving(base: ServingConfig, length: int) -> list[ServingConfig]:
    """A warm-fabric chain of ``length`` serving cells rooted at ``base``."""
    if length < 1:
        raise ValueError("a chain needs at least one cell")
    configs = [base]
    for i in range(1, length):
        configs.append(
            replace(
                base,
                seed=base.seed + i,
                predecessor=configs[-1].serving_id,
            )
        )
    return configs


def serving_matrix(
    providers: tuple[str, ...] = ("hpccloud", "fixed"),
    arrivals: tuple[str, ...] = ("poisson", "flash"),
    rates_rps: tuple[float, ...] = (20.0,),
    topologies: tuple[str, ...] = ("three_tier",),
    n_nodes: int = 8,
    duration_s: float = 120.0,
    users: int = 0,
    payload_scale: float = 1.0,
    slo_p99_ms: float = 250.0,
    slo_p999_ms: float = 0.0,
    slo_window_s: float = 30.0,
    seed: int = 0,
    instances: dict[str, str] | None = None,
    chain_length: int = 1,
) -> list[ServingConfig]:
    """Cross product of the serving axes, one config per cell.

    Cell seeds derive from the base seed and the cell's own axis values
    (not its position), so extending an axis later never changes a
    pre-existing cell's seed or cache key — the same stability contract
    as :func:`repro.scenarios.orchestrate.scenario_matrix`.
    """
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    instances = {**SERVING_DEFAULT_INSTANCES, **(instances or {})}
    configs = []
    for provider in providers:
        for arrival in arrivals:
            for rate in rates_rps:
                for topology in topologies:
                    cell_key = json.dumps(
                        [
                            int(seed),
                            provider,
                            instances[provider],
                            arrival,
                            float(rate),
                            topology,
                        ]
                    )
                    cell_seed = seed + int.from_bytes(
                        hashlib.sha256(cell_key.encode()).digest()[:4], "big"
                    )
                    base = ServingConfig(
                        provider_name=provider,
                        instance_name=instances[provider],
                        n_nodes=n_nodes,
                        topology=topology,
                        arrival=arrival,
                        rate_rps=rate,
                        duration_s=duration_s,
                        users=users,
                        payload_scale=payload_scale,
                        slo_p99_ms=slo_p99_ms,
                        slo_p999_ms=slo_p999_ms,
                        slo_window_s=slo_window_s,
                        seed=cell_seed,
                    )
                    configs.extend(chain_serving(base, chain_length))
    return configs


# ----------------------------------------------------------------------
# runtime plumbing: cells and the store codec
# ----------------------------------------------------------------------
def run_serving_payload(
    payload: Mapping, upstream: "ServingCellResult | None" = None
) -> ServingCellResult:
    """Cell function: reconstruct the config and run the cell."""
    config = ServingConfig(**payload)
    if upstream is None:
        return run_serving(config)
    return run_serving(config, upstream=upstream)


def run_serving_payloads_batched(
    payloads: "list[Mapping]", upstreams: "list[ServingCellResult | None]"
) -> "list[ServingCellResult]":
    """Batch-runner hook for :class:`repro.runtime.executors.BatchExecutor`."""
    configs = [ServingConfig(**payload) for payload in payloads]
    return run_servings_batched(configs, upstreams)


def serving_batch_executor(batch_size: int = 32):
    """A :class:`~repro.runtime.executors.BatchExecutor` wired for serving."""
    from repro.runtime.executors import BatchExecutor

    return BatchExecutor(run_serving_payloads_batched, batch_size=batch_size)


def encode_serving_result(result: ServingCellResult) -> tuple[dict, dict]:
    """Codec encoder: a serving cell as store documents.

    Everything the aggregate row and the SLO verdict need rides in one
    ``serving`` document; the fabric snapshot travels as its own
    document so chained successors can reload it (the scenario-layer
    convention).  Telemetry arrays and ``n_steps`` are deliberately
    not stored — stored bytes stay independent of sampling resolution
    and engine-internals accounting.
    """
    doc = {
        "n_requests": result.n_requests,
        "n_completed": result.n_completed,
        "makespan_s": result.makespan_s,
        "latency": result.latency,
        "windows": result.windows,
        "slo": None if result.slo is None else result.slo.to_dict(),
    }
    documents = {"serving": doc}
    if result.fabric_state is not None:
        documents["fabric"] = {"models": result.fabric_state}
    return documents, {}


def decode_serving_result(
    cell: Cell, documents: Mapping
) -> ServingCellResult:
    """Codec decoder: rebuild a :class:`ServingCellResult` from the store."""
    config = ServingConfig(**cell.payload)
    doc = documents["serving"]
    slo_doc = doc.get("slo")
    result = ServingCellResult(
        config=config,
        n_requests=int(doc["n_requests"]),
        n_completed=int(doc["n_completed"]),
        makespan_s=float(doc["makespan_s"]),
        latency=dict(doc["latency"]),
        windows=list(doc["windows"]),
        slo=None if slo_doc is None else SloReport.from_dict(slo_doc),
        cached=True,
    )
    fabric_doc = documents.get("fabric")
    if fabric_doc is not None:
        result.fabric_state = list(fabric_doc["models"])
    return result


#: The serving layer's store codec, referenced by import path so shard
#: manifests can name it across machines.
SERVING_CODEC = ArtifactCodec(
    encode_ref="repro.serving.scenario:encode_serving_result",
    decode_ref="repro.serving.scenario:decode_serving_result",
)


def serving_cells(configs: "list[ServingConfig]") -> "list[Cell]":
    """Map serving configs to runtime cells (keyed by ``serving_id``)."""
    return [
        Cell(
            fn="repro.serving.scenario:run_serving_payload",
            payload=asdict(config),
            key=config.serving_id,
            after=config.predecessor,
        )
        for config in configs
    ]


class ServingCampaign:
    """Runs a serving matrix, caching cells in a trace repository.

    The serving twin of
    :class:`~repro.scenarios.orchestrate.ScenarioCampaign`: a thin
    adapter over :class:`~repro.runtime.campaign.CampaignRunner` with
    the serving codec.  Pass ``executor=serving_batch_executor()`` to
    run independent cells through the lockstep batched driver, or use
    :meth:`shard_manifests` with the ``repro worker`` / ``repro
    merge`` CLI for multi-machine runs.
    """

    def __init__(
        self,
        configs: "list[ServingConfig]",
        repository: TraceRepository | None = None,
        workers: int = 1,
        executor=None,
    ) -> None:
        if not configs:
            raise ValueError("a campaign needs at least one serving cell")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        ids = [c.serving_id for c in configs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate serving configs in the matrix")
        self.configs = list(configs)
        self.repository = repository
        self.workers = workers
        if executor is None:
            executor = (
                SerialExecutor()
                if workers == 1
                else ProcessPoolExecutor(workers)
            )
        self.executor = executor

    @property
    def cells(self) -> "list[Cell]":
        return serving_cells(self.configs)

    def shard_manifests(
        self, directory: str | Path, n_shards: int
    ) -> "list[Path]":
        """Write per-machine shard manifests for this matrix."""
        return write_shard_manifests(
            self.cells,
            n_shards=n_shards,
            directory=directory,
            encode_ref=SERVING_CODEC.encode_ref,
            decode_ref=SERVING_CODEC.decode_ref,
        )

    def run(self) -> "dict[str, ServingCellResult]":
        """Execute pending cells, reload cached ones; results by id."""
        runner = CampaignRunner(
            self.cells,
            store=self.repository.artifacts if self.repository else None,
            codec=SERVING_CODEC,
            executor=self.executor,
        )
        outcome = run_wrapping_corruption(runner)
        return dict(outcome.results)
