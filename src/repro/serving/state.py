"""The serving workload over the event core: requests as call trees.

:class:`ServingState` implements the
:class:`~repro.simulator.core.WorkloadSource` hooks for
microservice-style request serving on the same fluid fabric the DAG
engine uses:

* **arrivals** are requests — open-loop from a lazy arrival-time
  iterator (:mod:`repro.serving.arrivals`; millions of requests never
  materialize a list), closed-loop from a pool of users that think for
  ``think_s`` between requests, or both at once;
* **timers** are service-compute completions and user think times;
* **flows** are RPC hops: a remote call's request payload travels
  ``caller-node -> callee-node`` on the fabric, the response travels
  back, and both contend with every other request's hops under the
  per-node egress shapers — which is precisely how shaper state turns
  into tail latency.

A request enters at the topology's entry service, each service
computes (lognormal around its mean, the engine's task-noise model)
then fans out to its children in parallel, and a call responds once
every child's response has arrived; the request completes when the
entry service responds.  Per-request latency (completion minus nominal
arrival — open-loop requests queue-squash included) streams into
:class:`~repro.obs.quantiles.WindowedQuantiles`, so the
:class:`~repro.serving.slo.SloPolicy` gate runs on P² estimates, never
on a stored latency list.

Replica placement is deterministic: every service is deployable on
every node, and call k to service s lands on node
``(s_index + k) % n_nodes`` — round-robin per service, offset by the
service's position so co-named tiers spread instead of stacking.
Compute is fluid (no per-node concurrency cap): the contended resource
in this model is the shaped network, matching the paper's focus.
Calls between co-located services skip the fabric entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.quantiles import WindowedQuantiles
from repro.simulator.core import EventCore
from repro.serving.slo import SloPolicy, SloReport
from repro.serving.topology import ServiceSpec, ServiceTopology

__all__ = ["ServingState", "ServingResult", "serve"]

#: Flow-direction markers for :attr:`_Call.phase`.
_REQ, _RESP = 0, 1


class _Request:
    """One end-user request: nominal arrival time plus its issuer."""

    __slots__ = ("t_arrival", "user")

    def __init__(self, t_arrival: float, user: "_User | None") -> None:
        self.t_arrival = t_arrival
        self.user = user


class _Call:
    """One service invocation inside a request's call tree.

    Doubles as the compute-completion timer payload and as the fabric
    flow tag for its request/response hops; ``cancelled`` is the timer
    contract (serving never withdraws timers, so it stays False).
    """

    __slots__ = ("request", "spec", "node", "parent", "pending_children", "phase")

    cancelled = False

    def __init__(
        self,
        request: _Request,
        spec: ServiceSpec,
        node: int,
        parent: "_Call | None",
    ) -> None:
        self.request = request
        self.spec = spec
        self.node = node
        self.parent = parent
        self.pending_children = 0
        self.phase = _REQ

    def fire(self, state: "ServingState") -> None:
        state._compute_done(self)


class _User:
    """One closed-loop user; its timer firing means 'done thinking'."""

    __slots__ = ()

    cancelled = False

    def fire(self, state: "ServingState") -> None:
        state._user_issue(self)


@dataclass
class ServingResult:
    """Everything one serving run produced."""

    #: Requests admitted (open-loop arrivals plus user issues).
    n_requests: int
    #: Requests that completed their full call tree.
    n_completed: int
    #: Sim time the last event finished (may exceed the load duration:
    #: in-flight requests drain after arrivals stop).
    makespan_s: float
    #: Run-level latency summary: ``count``, ``mean_s``, ``max_s``,
    #: ``sum_s``, and the whole-run P² ``p50``/``p99``/``p999``.
    latency: dict
    #: Tumbling-window quantile rows
    #: (:meth:`~repro.obs.quantiles.WindowedQuantiles.rows`).
    windows: list
    #: SLO verdict, or ``None`` when no policy gated the run.
    slo: SloReport | None
    sample_times: np.ndarray
    egress_rates: np.ndarray
    budgets: np.ndarray | None
    n_steps: int = 0

    @property
    def slo_violations(self) -> int:
        """Violation count (0 without a policy) — provenance hook."""
        return 0 if self.slo is None else len(self.slo.violations)


class ServingState(EventCore):
    """Event-core workload: open/closed-loop request serving.

    ``engine`` supplies the cluster, the RNG (compute-noise draws), and
    the telemetry sampling interval — the same
    :class:`~repro.simulator.engine.SparkEngine` container the DAG
    workload uses, so serving and batch cells mix in one campaign.
    ``arrivals`` is a lazily-consumed iterable of absolute request
    times (open loop); ``users``/``think_s`` add a closed-loop pool
    whose members issue at t=0 and re-issue after thinking, retiring
    once ``duration_s`` has passed.
    """

    def __init__(
        self,
        engine,
        topology: ServiceTopology,
        fabric,
        *,
        duration_s: float,
        arrivals=None,
        users: int = 0,
        think_s: float = 1.0,
        payload_scale: float = 1.0,
        slo_policy: SloPolicy | None = None,
    ) -> None:
        super().__init__(engine, fabric)
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if users < 0 or think_s < 0:
            raise ValueError("users and think_s cannot be negative")
        if payload_scale <= 0:
            raise ValueError("payload_scale must be positive")
        if arrivals is None and users == 0:
            raise ValueError(
                "a serving run needs load: an arrival process, users, or both"
            )
        self.topology = topology
        self._specs = topology.services
        self._entry = topology.entry
        self._duration_s = float(duration_s)
        self._think_s = float(think_s)
        self._payload_scale = float(payload_scale)
        self._slo_policy = slo_policy
        n_nodes = engine.cluster.n_nodes
        self._n_nodes = n_nodes
        # Deterministic replica placement: per-service round-robin
        # cursors, offset by service position (see module docstring).
        self._rr = {
            name: index % n_nodes
            for index, name in enumerate(topology.services)
        }
        # Open-loop arrivals: peek-ahead over the lazy iterator.
        self._arrival_iter = iter(arrivals) if arrivals is not None else None
        self._pending_arrival: float | None = (
            next(self._arrival_iter, None)
            if self._arrival_iter is not None
            else None
        )
        self._arrivals_done = self._pending_arrival is None
        # Closed-loop users issue their first request at t=0 via the
        # ordinary timer path, so begin()/epilogue ordering is shared
        # with every other event source.
        self._live_users = users
        for _ in range(users):
            self.schedule_timer(0.0, _User())
        self._in_flight = 0
        self._n_requests = 0
        self._n_completed = 0
        window_s = slo_policy.window_s if slo_policy is not None else 30.0
        self._latencies = WindowedQuantiles(window_s)
        self._lat_sum = 0.0
        self._lat_max = 0.0

    # -- placement & sampling ----------------------------------------------
    def _place(self, name: str) -> int:
        node = self._rr[name]
        self._rr[name] = (node + 1) % self._n_nodes
        return node

    def _sample_compute(self, spec: ServiceSpec) -> float:
        """Lognormal service time; the engine's task-noise model at ms scale."""
        mean_s = spec.compute_ms / 1000.0
        if mean_s == 0.0:
            return 0.0
        cov = spec.compute_cov
        if cov == 0.0:
            return mean_s
        sigma = math.sqrt(math.log(1.0 + cov**2))
        mu = math.log(mean_s) - sigma**2 / 2.0
        return float(self.engine.rng.lognormal(mean=mu, sigma=sigma))

    # -- request lifecycle -------------------------------------------------
    def _issue_request(self, t_nominal: float, user: "_User | None") -> None:
        request = _Request(t_nominal, user)
        self._n_requests += 1
        self._in_flight += 1
        # The root call arrives directly: the client sits off-fabric,
        # so only service-to-service hops consume shaped egress.
        root = _Call(request, self._specs[self._entry], self._place(self._entry), None)
        self._start_compute(root)

    def _start_compute(self, call: _Call) -> None:
        self.schedule_timer(self.now + self._sample_compute(call.spec), call)

    def _compute_done(self, call: _Call) -> None:
        children = call.spec.children
        if not children:
            self._respond(call)
            return
        call.pending_children = len(children)
        for name in children:
            spec = self._specs[name]
            child = _Call(call.request, spec, self._place(name), call)
            volume = spec.request_gbit * self._payload_scale
            if child.node != call.node and volume > 1e-12:
                self.fabric.add_flow(call.node, child.node, volume, tag=child)
            else:
                self._start_compute(child)

    def _respond(self, call: _Call) -> None:
        parent = call.parent
        if parent is None:
            self._finish_request(call.request)
            return
        volume = call.spec.response_gbit * self._payload_scale
        if call.node != parent.node and volume > 1e-12:
            call.phase = _RESP
            self.fabric.add_flow(call.node, parent.node, volume, tag=call)
        else:
            self._deliver_response(call)

    def _deliver_response(self, call: _Call) -> None:
        parent = call.parent
        parent.pending_children -= 1
        if parent.pending_children == 0:
            self._respond(parent)

    def _finish_request(self, request: _Request) -> None:
        latency = self.now - request.t_arrival
        self._latencies.add(self.now, latency)
        self._lat_sum += latency
        if latency > self._lat_max:
            self._lat_max = latency
        self._in_flight -= 1
        self._n_completed += 1
        user = request.user
        if user is not None:
            # Think, then re-issue; retirement happens at issue time so
            # a request in flight at the deadline still completes.
            self.schedule_timer(self.now + self._think_s, user)

    def _user_issue(self, user: _User) -> None:
        if self.now >= self._duration_s:
            self._live_users -= 1
            return
        self._issue_request(self.now, user)

    # -- WorkloadSource hooks ----------------------------------------------
    @property
    def all_done(self) -> bool:
        return (
            self._arrivals_done
            and self._in_flight == 0
            and self._live_users == 0
        )

    def _next_arrival_time(self) -> float:
        pending = self._pending_arrival
        return math.inf if pending is None else pending

    def _admit_arrivals(self) -> None:
        pending = self._pending_arrival
        while pending is not None and pending <= self.now + 1e-9:
            self._issue_request(pending, None)
            pending = next(self._arrival_iter, None)
        self._pending_arrival = pending
        if pending is None:
            self._arrivals_done = True

    def _on_timer(self, payload) -> None:
        payload.fire(self)

    def _on_flow_complete(self, flow) -> None:
        call = flow.tag
        if not isinstance(call, _Call):
            return
        if call.phase == _REQ:
            self._start_compute(call)
        else:
            self._deliver_response(call)

    def deadlock_error(self) -> RuntimeError:
        return RuntimeError(
            f"serving deadlock at t={self.now}: {self._in_flight} request(s) "
            f"in flight, {self._live_users} user(s) live, no flows, no "
            "timers, no arrivals"
        )

    def _build_result(self) -> ServingResult:
        k = self._n_samples
        budgets = None
        if self._budget_buf is not None:
            budgets = self._budget_buf[:k].copy().T
        n = self._n_completed
        latency = {
            "count": float(n),
            "mean_s": self._lat_sum / n if n else math.nan,
            "max_s": self._lat_max if n else math.nan,
            "sum_s": self._lat_sum,
        }
        latency.update(self._latencies.summary())
        windows = self._latencies.rows()
        slo = (
            self._slo_policy.evaluate(windows)
            if self._slo_policy is not None
            else None
        )
        return ServingResult(
            n_requests=self._n_requests,
            n_completed=self._n_completed,
            makespan_s=self.now,
            latency=latency,
            windows=windows,
            slo=slo,
            sample_times=self._t_buf[:k].copy(),
            egress_rates=self._rate_buf[:k].copy().T,
            budgets=budgets,
            n_steps=self._n_steps,
        )


def serve(
    engine,
    topology: ServiceTopology,
    *,
    duration_s: float,
    arrivals=None,
    users: int = 0,
    think_s: float = 1.0,
    payload_scale: float = 1.0,
    slo_policy: SloPolicy | None = None,
    fabric=None,
) -> ServingResult:
    """Run one serving workload to completion; the functional entry.

    Builds a fresh fabric from the engine's cluster unless one is
    passed (warm shaper carry-in, as everywhere else).
    """
    if fabric is None:
        fabric = engine.cluster.build_fabric()
    state = ServingState(
        engine,
        topology,
        fabric,
        duration_s=duration_s,
        arrivals=arrivals,
        users=users,
        think_s=think_s,
        payload_scale=payload_scale,
        slo_policy=slo_policy,
    )
    return state.execute()
