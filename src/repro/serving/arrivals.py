"""Open-loop arrival processes at request scale, generated lazily.

Production request rates mean millions of arrivals per run, so every
process here is a generator of absolute arrival times bounded by
``duration_s`` — O(1) memory however long the run, the request-rate
sibling of :func:`repro.scenarios.generate.poisson_arrivals_iter`.
Each process draws from an explicit :class:`numpy.random.Generator`
one scalar at a time, so the same seed reproduces the same stream and
consuming k arrivals advances the generator by a deterministic number
of draws.

The non-homogeneous processes (diurnal, flash crowd) use Lewis-Shedler
thinning: candidates are drawn at the peak rate and accepted with
probability ``rate(t) / peak``, which keeps the output an exact
non-homogeneous Poisson process without inverting the rate integral.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["poisson_process", "diurnal_process", "flash_crowd_process"]


def poisson_process(
    rng: np.random.Generator, rate_rps: float, duration_s: float
):
    """Homogeneous Poisson arrivals at ``rate_rps`` over ``duration_s``.

    Yields absolute times in ``(0, duration_s)``; the first arrival
    falls after the first exponential gap (a cold service receives its
    first request at a random instant, unlike the eager job-stream
    convention of a submit at t=0).
    """
    if rate_rps <= 0:
        raise ValueError("request rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    scale = 1.0 / rate_rps
    t = rng.exponential(scale=scale)
    while t < duration_s:
        yield t
        t += rng.exponential(scale=scale)


def _thinned(rng, peak_rps: float, duration_s: float, rate_fn):
    """Lewis-Shedler thinning against the constant majorant ``peak_rps``."""
    scale = 1.0 / peak_rps
    t = rng.exponential(scale=scale)
    while t < duration_s:
        if rng.uniform() * peak_rps < rate_fn(t):
            yield t
        t += rng.exponential(scale=scale)


def diurnal_process(
    rng: np.random.Generator,
    base_rps: float,
    peak_rps: float,
    period_s: float,
    duration_s: float,
):
    """A sinusoidal day/night cycle between ``base_rps`` and ``peak_rps``.

    The instantaneous rate is ``base + (peak - base) * sin²(πt/period)``:
    the run starts at the trough, crests at half a period, and returns —
    one full cycle per ``period_s``.
    """
    if base_rps <= 0 or peak_rps < base_rps:
        raise ValueError("need 0 < base_rps <= peak_rps")
    if period_s <= 0 or duration_s <= 0:
        raise ValueError("period and duration must be positive")
    swing = peak_rps - base_rps

    def rate(t: float) -> float:
        return base_rps + swing * math.sin(math.pi * t / period_s) ** 2

    return _thinned(rng, peak_rps, duration_s, rate)


def flash_crowd_process(
    rng: np.random.Generator,
    base_rps: float,
    spike_rps: float,
    spike_start_s: float,
    spike_len_s: float,
    duration_s: float,
):
    """Steady ``base_rps`` with one rectangular burst at ``spike_rps``.

    The flash-crowd shape: traffic jumps to ``spike_rps`` for
    ``spike_len_s`` seconds starting at ``spike_start_s``, then drops
    back.  The burst is where open-loop pressure meets depleted shaper
    budgets — the SLO-violation experiment's trigger.
    """
    if base_rps <= 0 or spike_rps < base_rps:
        raise ValueError("need 0 < base_rps <= spike_rps")
    if spike_start_s < 0 or spike_len_s <= 0 or duration_s <= 0:
        raise ValueError(
            "spike start cannot be negative; lengths must be positive"
        )
    spike_end_s = spike_start_s + spike_len_s

    def rate(t: float) -> float:
        return spike_rps if spike_start_s <= t < spike_end_s else base_rps

    return _thinned(rng, spike_rps, duration_s, rate)
