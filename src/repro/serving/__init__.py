"""Request serving over the shaped fabric: load, call trees, SLO gates.

The paper's lens is batch analytics, but the mechanism it isolates —
per-node egress shapers whose hidden state (token budgets, QoS tiers,
resampled rate processes) decides application performance — governs
*serving* workloads even more directly: a microservice request's tail
latency is the maximum over its fan-out's network hops, so one node's
depleted shaper becomes every request's p99.9.  This package asks the
paper's question at request scale: **is serving tail latency
reproducible on variable cloud networks?**

Built on the workload-agnostic event core
(:class:`repro.simulator.core.EventCore`), sharing the fabric, the
cluster model, and the campaign runtime with the DAG engine:

* :mod:`repro.serving.topology` — microservice call trees
  (:class:`ServiceTopology`: line / fanout / three-tier) with per-call
  compute cost and request/response payloads;
* :mod:`repro.serving.arrivals` — lazy open-loop arrival processes at
  production rates (Poisson, diurnal, flash crowd) that never
  materialize an arrival list;
* :mod:`repro.serving.state` — the serving engine: open-loop arrivals
  and/or closed-loop users with think time, per-hop fabric flows, P²
  streaming latency telemetry;
* :mod:`repro.serving.slo` — SLO gating: sliding-window p50/p99/p99.9
  targets, violation windows, ``repro_slo_*`` metrics;
* :mod:`repro.serving.scenario` — content-hashed campaign cells
  (``srv-…``), matrices, warm-fabric chains, and the store codec for
  ``repro worker`` / ``repro merge`` sharding.

Quickstart::

    import numpy as np
    from repro.cloud.providers import default_providers
    from repro.serving import (
        ServiceTopology, SloPolicy, poisson_process, serve,
    )
    from repro.simulator import Cluster, NodeSpec, SparkEngine

    rng = np.random.default_rng(7)
    provider = default_providers()["amazon"]
    cluster = Cluster(
        8, NodeSpec(), lambda n: provider.link_model("c5.xlarge", rng)
    )
    engine = SparkEngine(cluster, rng=rng)
    result = serve(
        engine,
        ServiceTopology.three_tier(),
        duration_s=60.0,
        arrivals=poisson_process(rng, rate_rps=20.0, duration_s=60.0),
        slo_policy=SloPolicy(p99_ms=250.0),
    )
    print(result.latency["p99"], result.slo.passed)

From the shell: ``python -m repro serve --fast`` (single run with an
SLO verdict table) or ``python -m repro scenario --workload serving``
(a whole provider x arrival matrix).
"""

from repro.serving.arrivals import (
    diurnal_process,
    flash_crowd_process,
    poisson_process,
)
from repro.serving.scenario import (
    FIXED_RATE_GBPS,
    SERVING_CODEC,
    SERVING_DEFAULT_INSTANCES,
    ServingCampaign,
    ServingCellResult,
    ServingConfig,
    chain_serving,
    run_serving,
    run_servings_batched,
    serving_batch_executor,
    serving_cells,
    serving_matrix,
)
from repro.serving.slo import SloPolicy, SloReport, SloViolation
from repro.serving.state import ServingResult, ServingState, serve
from repro.serving.topology import ServiceSpec, ServiceTopology

__all__ = [
    "ServiceSpec",
    "ServiceTopology",
    "poisson_process",
    "diurnal_process",
    "flash_crowd_process",
    "SloPolicy",
    "SloReport",
    "SloViolation",
    "ServingState",
    "ServingResult",
    "serve",
    "ServingConfig",
    "ServingCellResult",
    "ServingCampaign",
    "run_serving",
    "run_servings_batched",
    "serving_batch_executor",
    "serving_matrix",
    "chain_serving",
    "serving_cells",
    "SERVING_CODEC",
    "SERVING_DEFAULT_INSTANCES",
    "FIXED_RATE_GBPS",
]
