"""Microservice call trees: who calls whom, and what each hop costs.

A serving workload is shaped by its *call tree*: a user request hits
the entry service, which fans out RPCs to its children, which fan out
further, and the request completes only when every subtree has
responded.  :class:`ServiceTopology` describes that structure — one
:class:`ServiceSpec` per service with per-call compute cost and
request/response payload sizes — and validates it is a DAG reachable
from the entry service, so the serving engine can map every hop onto a
fabric flow without cycle checks at simulation time.

Topologies are JSON round-trippable (:meth:`ServiceTopology.to_dict` /
:meth:`ServiceTopology.from_dict`), which is what lets a serving
scenario cell ship its call tree through shard manifests.  The
constructors cover the shapes the serving experiments sweep:

* :meth:`ServiceTopology.line` — a depth-N proxy chain (each hop
  serialized behind the previous one);
* :meth:`ServiceTopology.fanout` — a breadth^depth RPC tree (the
  fan-out/fan-in pattern whose tail latency is governed by the
  *slowest* leaf — exactly where shaped-network variability bites);
* :meth:`ServiceTopology.three_tier` — the classic frontend / API /
  backing-store shape.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Mapping

__all__ = ["ServiceSpec", "ServiceTopology"]


@dataclass(frozen=True)
class ServiceSpec:
    """One service: per-call compute cost, payloads, and callees.

    ``compute_ms`` is the mean service time of one call (lognormal
    around it with CoV ``compute_cov``, matching the engine's task
    model); ``request_gbit``/``response_gbit`` are the payload volumes
    a remote call moves over the fabric in each direction.  Millisecond
    compute against multi-megabit responses is what makes serving
    network-bound under shaped egress.
    """

    name: str
    compute_ms: float = 2.0
    compute_cov: float = 0.3
    #: Request payload per remote call (Gbit); ~1 MB default.
    request_gbit: float = 0.008
    #: Response payload per remote call (Gbit); ~10 MB default.
    response_gbit: float = 0.08
    children: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a service needs a name")
        if self.compute_ms < 0 or self.compute_cov < 0:
            raise ValueError("compute mean and CoV cannot be negative")
        if self.request_gbit < 0 or self.response_gbit < 0:
            raise ValueError("payload volumes cannot be negative")
        object.__setattr__(self, "compute_ms", float(self.compute_ms))
        object.__setattr__(self, "compute_cov", float(self.compute_cov))
        object.__setattr__(self, "request_gbit", float(self.request_gbit))
        object.__setattr__(self, "response_gbit", float(self.response_gbit))
        object.__setattr__(self, "children", tuple(self.children))


class ServiceTopology:
    """An acyclic service call graph with a designated entry service.

    ``services`` keep their given order — a service's position is its
    *service index*, which the serving engine uses to stagger replica
    placement across nodes deterministically.
    """

    def __init__(self, services: Iterable[ServiceSpec], entry: str) -> None:
        self.services: dict[str, ServiceSpec] = {}
        for spec in services:
            if spec.name in self.services:
                raise ValueError(f"duplicate service {spec.name!r}")
            self.services[spec.name] = spec
        if entry not in self.services:
            raise ValueError(f"entry service {entry!r} is not defined")
        self.entry = entry
        for spec in self.services.values():
            for child in spec.children:
                if child not in self.services:
                    raise ValueError(
                        f"service {spec.name!r} calls undefined service "
                        f"{child!r}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        # Iterative three-color DFS: gray on the stack means a back
        # edge, i.e. a call cycle that would recurse forever.
        color: dict[str, int] = {}
        for root in self.services:
            if color.get(root):
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            while stack:
                name, child_index = stack.pop()
                if child_index == 0:
                    color[name] = 1
                children = self.services[name].children
                if child_index < len(children):
                    stack.append((name, child_index + 1))
                    child = children[child_index]
                    state = color.get(child, 0)
                    if state == 1:
                        raise ValueError(
                            f"service call cycle through {child!r}"
                        )
                    if state == 0:
                        stack.append((child, 0))
                else:
                    color[name] = 2

    # -- introspection -----------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.services)

    def spec(self, name: str) -> ServiceSpec:
        return self.services[name]

    def calls_per_request(self) -> int:
        """Service invocations one request triggers (entry included).

        Counts multiplicity: a service reachable along two paths is
        called twice per request, exactly as the engine executes it.
        """
        memo: dict[str, int] = {}

        def count(name: str) -> int:
            cached = memo.get(name)
            if cached is not None:
                return cached
            total = 1 + sum(
                count(child) for child in self.services[name].children
            )
            memo[name] = total
            return total

        return count(self.entry)

    # -- JSON round-trip ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "services": [asdict(spec) for spec in self.services.values()],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ServiceTopology":
        return cls(
            services=[
                ServiceSpec(
                    name=entry["name"],
                    compute_ms=entry["compute_ms"],
                    compute_cov=entry["compute_cov"],
                    request_gbit=entry["request_gbit"],
                    response_gbit=entry["response_gbit"],
                    children=tuple(entry["children"]),
                )
                for entry in payload["services"]
            ],
            entry=payload["entry"],
        )

    # -- stock shapes ------------------------------------------------------
    @classmethod
    def line(cls, depth: int = 3, **overrides) -> "ServiceTopology":
        """A proxy chain: ``svc0 -> svc1 -> ... -> svc{depth-1}``."""
        if depth < 1:
            raise ValueError("depth must be >= 1")
        services = [
            ServiceSpec(
                name=f"svc{i}",
                children=(f"svc{i + 1}",) if i + 1 < depth else (),
                **overrides,
            )
            for i in range(depth)
        ]
        return cls(services, entry="svc0")

    @classmethod
    def fanout(
        cls, breadth: int = 2, depth: int = 2, **overrides
    ) -> "ServiceTopology":
        """A full ``breadth``-ary RPC tree of the given ``depth``.

        ``depth`` counts levels below the root: ``fanout(2, 2)`` is a
        7-service tree (1 + 2 + 4).  The fan-in at each level makes
        request latency the *maximum* over subtree latencies — the
        tail-amplification shape.
        """
        if breadth < 1 or depth < 0:
            raise ValueError("breadth must be >= 1 and depth >= 0")
        services: list[ServiceSpec] = []

        def build(level: int, index: int) -> str:
            name = f"svc-{level}-{index}"
            children = ()
            if level < depth:
                children = tuple(
                    build(level + 1, index * breadth + k)
                    for k in range(breadth)
                )
            services.append(
                ServiceSpec(name=name, children=children, **overrides)
            )
            return name

        root = build(0, 0)
        services.reverse()  # parents before children, root first
        return cls(services, entry=root)

    @classmethod
    def three_tier(cls, **overrides) -> "ServiceTopology":
        """Frontend -> {auth, api}, api -> {db, cache}: five services."""
        return cls(
            [
                ServiceSpec(
                    name="frontend", children=("auth", "api"), **overrides
                ),
                ServiceSpec(name="auth", **overrides),
                ServiceSpec(name="api", children=("db", "cache"), **overrides),
                ServiceSpec(name="db", **overrides),
                ServiceSpec(name="cache", **overrides),
            ],
            entry="frontend",
        )
