"""Unit conventions and conversions used throughout :mod:`repro`.

The library follows a single set of conventions so that model code never
has to guess what a number means:

* **time** is measured in seconds (floats),
* **data volumes** are measured in gigabits (Gbit),
* **rates** are measured in gigabits per second (Gbps).

The paper mixes Mbps (Figure 2), Gbps (Figures 4-8), terabytes
(Figure 10) and gigabit token budgets (Figures 15-19); the helpers below
convert those presentation units to and from the internal convention.
"""

from __future__ import annotations

#: Bits per byte, spelled out so data-size conversions read naturally.
BITS_PER_BYTE = 8

#: Seconds in common presentation intervals.
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0
SECONDS_PER_WEEK = 604_800.0

#: The paper reports bandwidth as 10-second averages throughout Section 3.
REPORT_INTERVAL_S = 10.0


def mbps_to_gbps(mbps: float) -> float:
    """Convert megabits per second to gigabits per second."""
    return mbps / 1_000.0


def gbps_to_mbps(gbps: float) -> float:
    """Convert gigabits per second to megabits per second."""
    return gbps * 1_000.0


def gbit_to_gbyte(gbit: float) -> float:
    """Convert gigabits to gigabytes."""
    return gbit / BITS_PER_BYTE


def gbyte_to_gbit(gbyte: float) -> float:
    """Convert gigabytes to gigabits."""
    return gbyte * BITS_PER_BYTE


def gbit_to_tbyte(gbit: float) -> float:
    """Convert gigabits to terabytes (Figure 10 plots traffic in TB)."""
    return gbit / BITS_PER_BYTE / 1_000.0


def tbyte_to_gbit(tbyte: float) -> float:
    """Convert terabytes to gigabits."""
    return tbyte * 1_000.0 * BITS_PER_BYTE


def mbyte_to_gbit(mbyte: float) -> float:
    """Convert megabytes to gigabits (shuffle sizes are natural in MB)."""
    return mbyte / 1_000.0 * BITS_PER_BYTE


def gbit_to_mbyte(gbit: float) -> float:
    """Convert gigabits to megabytes."""
    return gbit / BITS_PER_BYTE * 1_000.0


def kbyte_to_gbit(kbyte: float) -> float:
    """Convert kilobytes to gigabits (write() sizes in Figure 12 are KB)."""
    return kbyte / 1_000_000.0 * BITS_PER_BYTE


def bytes_to_gbit(n_bytes: float) -> float:
    """Convert bytes to gigabits (packet sizes are natural in bytes)."""
    return n_bytes * BITS_PER_BYTE / 1e9


def gbit_to_bytes(gbit: float) -> float:
    """Convert gigabits to bytes."""
    return gbit * 1e9 / BITS_PER_BYTE


def ms_to_s(ms: float) -> float:
    """Convert milliseconds to seconds (RTTs are reported in ms)."""
    return ms / 1_000.0


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1_000.0


def weeks(n: float) -> float:
    """Duration of ``n`` weeks in seconds."""
    return n * SECONDS_PER_WEEK


def days(n: float) -> float:
    """Duration of ``n`` days in seconds."""
    return n * SECONDS_PER_DAY


def hours(n: float) -> float:
    """Duration of ``n`` hours in seconds."""
    return n * SECONDS_PER_HOUR


def minutes(n: float) -> float:
    """Duration of ``n`` minutes in seconds."""
    return n * SECONDS_PER_MINUTE
