"""Campaign orchestration: scenario matrices, caching, parallelism.

KheOps-style campaign economics: a variability study is only as broad
as the number of (provider, instance, arrival pattern, scheduler)
cells it can afford to run, so the orchestrator makes cells cheap —

* every :class:`ScenarioConfig` is content-hashed into a stable
  ``scenario_id``, so a :class:`~repro.measurement.repository.TraceRepository`
  can skip cells that already ran (re-running a sweep after adding one
  arrival rate only executes the new column);
* pending cells run through a pluggable :mod:`repro.runtime` executor —
  serial, a chunked ``multiprocessing`` pool, or per-machine shard
  manifests (``python -m repro worker``) — and each cell is a pure
  function of its config, so the execution strategy never changes the
  results, only the wall clock;
* per-cell results aggregate through :mod:`repro.stats` into CoV and
  CONFIRM-widening verdicts, the same statistics the paper reports.

:class:`ScenarioCampaign` is a thin adapter over
:class:`repro.runtime.campaign.CampaignRunner`: it maps configs to
:class:`~repro.runtime.cell.Cell`\\ s (keyed by ``scenario_id``, so
pre-runtime repositories stay warm) and decodes stored artifacts back
into :class:`ScenarioResult`\\ s.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.cloud.providers import default_providers
from repro.netmodel.state import model_from_state, model_state_dict
from repro.simulator.fabric import Fabric
from repro.measurement.campaign import CampaignConfig, CampaignResult
from repro.measurement.repository import (
    TraceRepository,
    campaign_from_documents,
    campaign_to_documents,
    run_wrapping_corruption,
)
from repro.runtime.campaign import ArtifactCodec, CampaignRunner
from repro.runtime.cell import Cell
from repro.runtime.executors import ProcessPoolExecutor, SerialExecutor
from repro.runtime.worker import write_shard_manifests
from repro.scenarios.generate import (
    RandomDagConfig,
    WorkloadMix,
    burst_arrivals,
    job_stream,
    poisson_arrivals,
    synthesize_deadlines,
)
from repro.simulator.cluster import Cluster, NodeSpec
from repro.simulator.engine import SCHEDULERS, SparkEngine
from repro.stats.confirm import confirm_curve
from repro.stats.cov import coefficient_of_variation
from repro.trace import BandwidthTrace

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioCampaign",
    "CampaignOutcome",
    "run_scenario",
    "run_scenarios_batched",
    "prepare_scenario",
    "finish_scenario",
    "run_scenario_payload",
    "run_scenario_payloads_batched",
    "batch_executor",
    "scenario_matrix",
    "chain_scenarios",
    "scenario_cells",
    "encode_scenario_result",
    "decode_scenario_result",
    "SCENARIO_CODEC",
    "DEFAULT_INSTANCES",
]

#: Default instance type per provider, matching the Table 3 catalog.
DEFAULT_INSTANCES: dict[str, str] = {
    "amazon": "c5.xlarge",
    "google": "gce-4core",
    "hpccloud": "hpccloud-8core",
}

#: Workload keyword -> generator mix.
_MIXES: dict[str, WorkloadMix] = {
    "mixed": WorkloadMix(),
    "random": WorkloadMix(1.0, 0.0, 0.0),
    "tpch": WorkloadMix(0.0, 1.0, 0.0),
    "hibench": WorkloadMix(0.0, 0.0, 1.0),
}

#: Arrival-process keywords.
_ARRIVALS: tuple[str, ...] = ("poisson", "burst")


@dataclass(frozen=True)
class ScenarioConfig:
    """One cell of a scenario matrix, fully determining its result."""

    provider_name: str = "amazon"
    instance_name: str = "c5.xlarge"
    n_nodes: int = 8
    slots: int = 4
    n_jobs: int = 4
    #: Poisson rate (jobs/minute) or burst cadence, per ``arrival``.
    arrival_rate_per_min: float = 2.0
    arrival: str = "poisson"
    scheduler: str = "fifo"
    workload: str = "mixed"
    data_scale: float = 1.0
    seed: int = 0
    #: Mean multiplicative deadline slack; 0 disables deadlines (jobs
    #: arrive without one and miss telemetry reports ``None``).
    deadline_slack: float = 0.0
    #: ``scenario_id`` of the cell whose final fabric/shaper state
    #: seeds this cell's run (warm-fabric chains); ``None`` for a
    #: fresh fabric.
    predecessor: str | None = None

    def __post_init__(self) -> None:
        # Normalize numeric fields so equal configs hash equally:
        # json.dumps renders 1 and 1.0 differently, and the scenario_id
        # contract is "same fields => same id".
        object.__setattr__(
            self, "arrival_rate_per_min", float(self.arrival_rate_per_min)
        )
        object.__setattr__(self, "data_scale", float(self.data_scale))
        object.__setattr__(self, "deadline_slack", float(self.deadline_slack))
        for name in ("n_nodes", "slots", "n_jobs", "seed"):
            object.__setattr__(self, name, int(getattr(self, name)))
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of {SCHEDULERS}"
            )
        if self.arrival not in _ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"expected one of {_ARRIVALS}"
            )
        if self.workload not in _MIXES:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {sorted(_MIXES)}"
            )
        if self.n_nodes < 2 or self.slots < 1 or self.n_jobs < 1:
            raise ValueError("n_nodes >= 2, slots >= 1, n_jobs >= 1 required")
        if self.arrival_rate_per_min <= 0 or self.data_scale <= 0:
            raise ValueError("rates and scales must be positive")
        if self.deadline_slack < 0:
            raise ValueError("deadline slack cannot be negative")
        if self.predecessor is not None and not self.predecessor.startswith(
            "scn-"
        ):
            raise ValueError(
                f"predecessor must be a scenario id, got {self.predecessor!r}"
            )

    @property
    def scenario_id(self) -> str:
        """Content hash of the config: the repository cache key.

        Two configs share an id exactly when every field matches, so a
        stored result can stand in for re-execution.  Fields still at
        their defaults that did not exist when a repository was
        populated (``deadline_slack``, ``predecessor``) are dropped
        from the hash, so pre-existing caches stay warm.
        """
        payload_dict = asdict(self)
        if self.deadline_slack == 0.0:
            payload_dict.pop("deadline_slack")
        if self.predecessor is None:
            payload_dict.pop("predecessor")
        payload = json.dumps(payload_dict, sort_keys=True)
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return f"scn-{digest}"


@dataclass
class ScenarioResult:
    """Per-job outcomes of one scenario cell."""

    config: ScenarioConfig
    #: Submission times, in submit order (seconds from stream start).
    submits: np.ndarray
    #: Per-job response times aligned with :attr:`submits`.
    runtimes: np.ndarray
    makespan_s: float
    #: Job names, absent when reloaded from a repository cache.
    job_names: tuple[str, ...] | None = None
    cached: bool = False
    #: Absolute per-job deadlines aligned with :attr:`submits`, or
    #: ``None`` when the cell ran without deadline synthesis.
    deadlines: np.ndarray | None = None
    #: Per-tenant slowdowns (response over ideal service time).
    slowdowns: np.ndarray | None = None
    #: Per-node link-model snapshots captured when the stream finished
    #: (:func:`repro.netmodel.state.model_state_dict`); what a chained
    #: successor cell seeds its fabric from.
    fabric_state: list[dict] | None = None
    #: Engine event-loop steps the cell cost (``None`` when reloaded
    #: from cache).  Deliberately *not* encoded into store documents —
    #: it feeds execution provenance (manifest meta), so stored bytes
    #: stay independent of engine-internals accounting.
    n_steps: int | None = None

    def deadline_miss_rate(self) -> float | None:
        """Fraction of deadlined jobs finishing late; None without deadlines."""
        if self.deadlines is None:
            return None
        finite = np.isfinite(self.deadlines)
        if not finite.any():
            return None
        finishes = self.submits[finite] + self.runtimes[finite]
        return float(np.mean(finishes > self.deadlines[finite] + 1e-9))

    def aggregate_row(self) -> dict:
        """One sweep-table row: config axes plus CoV/CONFIRM verdicts.

        Values are rounded so rows compare bit-for-bit across workers
        and across cache reload (JSON round-trips floats exactly).
        """
        cov = (
            coefficient_of_variation(self.runtimes)
            if self.runtimes.size > 1
            else 0.0
        )
        ci_widened = None
        if self.runtimes.size >= 12:
            ci_widened = confirm_curve(self.runtimes).widening_detected()
        miss_rate = self.deadline_miss_rate()
        return {
            "scenario": self.config.scenario_id,
            "provider": self.config.provider_name,
            "instance": self.config.instance_name,
            "arrival": self.config.arrival,
            "rate_per_min": self.config.arrival_rate_per_min,
            "scheduler": self.config.scheduler,
            "workload": self.config.workload,
            "chained": self.config.predecessor is not None,
            "n_jobs": int(self.runtimes.size),
            "mean_runtime_s": round(float(np.mean(self.runtimes)), 3),
            "p50_runtime_s": round(float(np.median(self.runtimes)), 3),
            "max_runtime_s": round(float(np.max(self.runtimes)), 3),
            "makespan_s": round(float(self.makespan_s), 3),
            "cov": round(float(cov), 4),
            "ci_widened": ci_widened,
            "miss_rate": None if miss_rate is None else round(miss_rate, 4),
            "mean_slowdown": (
                None
                if self.slowdowns is None
                else round(float(np.mean(self.slowdowns)), 3)
            ),
        }

    # -- repository round-trip ---------------------------------------------
    def to_campaign_result(self) -> CampaignResult:
        """Encode the cell as a storable campaign (runtimes as a trace).

        Deadlines and slowdowns ride along as extra traces when
        present, so a cache reload reproduces the same aggregate row a
        fresh computation would.
        """
        config = CampaignConfig(
            provider_name=self.config.provider_name,
            instance_name=self.config.instance_name,
            duration_s=float(self.makespan_s),
            patterns=(),
            seed=self.config.seed,
        )
        result = CampaignResult(config=config)
        extras = {"deadlines": self.deadlines, "slowdowns": self.slowdowns}
        for name, values in [("runtimes", self.runtimes), *extras.items()]:
            if values is None:
                continue
            result.traces[name] = BandwidthTrace(
                times=self.submits,
                values=np.asarray(values, dtype=float),
                label=f"scenario-{name}/{self.config.scenario_id}",
                durations=np.ones_like(self.runtimes),
            )
        return result

    @classmethod
    def from_campaign_result(
        cls, config: ScenarioConfig, stored: CampaignResult
    ) -> "ScenarioResult":
        """Rebuild a cell from its stored trace (cache hit)."""
        trace = stored.trace("runtimes")

        def optional(name: str) -> np.ndarray | None:
            if name not in stored.traces:
                return None
            return np.asarray(stored.trace(name).values, dtype=float)

        return cls(
            config=config,
            submits=np.asarray(trace.times, dtype=float),
            runtimes=np.asarray(trace.values, dtype=float),
            makespan_s=float(stored.config.duration_s),
            job_names=None,
            cached=True,
            deadlines=optional("deadlines"),
            slowdowns=optional("slowdowns"),
        )


def run_scenario(
    config: ScenarioConfig,
    upstream: "ScenarioResult | None" = None,
    recorder=None,
) -> ScenarioResult:
    """Execute one scenario cell end to end.

    A pure function of ``config`` (plus, for chained cells, the
    predecessor's result): provider incarnations, the arrival process,
    the job mix, and the engine's compute noise all derive from one
    seeded generator, so the same config always produces the same
    result regardless of where (or how parallel) it runs.  Deadlines
    draw from a *separate* generator derived from the seed, so turning
    deadline synthesis on never perturbs the workload stream itself.

    The fabric is built once, up front: a provider hands out one model
    class per instance type (token buckets for EC2 incarnations,
    per-core QoS for GCE, ...), so homogeneous cells get the vectorized
    shaper fleet (:func:`repro.netmodel.fleet.build_fleet`) and
    anything exotic falls back to the scalar adapter — either way the
    cell's result is bit-identical.

    When ``config.predecessor`` names another cell, ``upstream`` must
    be that cell's result: the fabric is rebuilt from its persisted
    per-node shaper snapshots (same incarnations, same budgets, same
    RNG positions — back-to-back tenants on a warm fabric, the
    Figure 19 carry-over at campaign scale) instead of drawing fresh
    VMs.

    ``recorder`` forwards to :meth:`SparkEngine.run_stream
    <repro.simulator.engine.SparkEngine.run_stream>` — an
    :class:`~repro.obs.ObsRecorder` observes the cell's stream without
    changing its result.
    """
    prepared = prepare_scenario(config, upstream=upstream)
    outcome = prepared.engine.run_stream(
        prepared.stream,
        scheduler=config.scheduler,
        fabric=prepared.fabric,
        recorder=recorder,
    )
    return finish_scenario(prepared, outcome)


@dataclass
class _PreparedScenario:
    """A cell built and ready to stream: the prepare/finish seam.

    :func:`run_scenario` is prepare → ``engine.run_stream`` → finish;
    the batched path (:func:`run_scenarios_batched`) swaps the middle
    for one :func:`repro.simulator.multistream.run_streams` call over
    many cells.  Everything up to and including engine construction —
    provider incarnations, arrival draws, the job stream, deadline
    synthesis — happens in prepare, in the exact serial RNG order, so
    the two paths are bit-identical per cell.
    """

    config: ScenarioConfig
    engine: SparkEngine
    stream: list
    fabric: Fabric


def prepare_scenario(
    config: ScenarioConfig, upstream: "ScenarioResult | None" = None
) -> _PreparedScenario:
    """Build one cell's engine, workload stream, and fabric."""
    rng = np.random.default_rng(config.seed)
    if config.predecessor is not None:
        if upstream is None:
            raise ValueError(
                f"cell {config.scenario_id} chains after "
                f"{config.predecessor} but no upstream result was supplied"
            )
        if upstream.fabric_state is None:
            raise ValueError(
                f"predecessor {config.predecessor} carries no fabric "
                "state (stored by an older version?); recompute it"
            )
        if (
            upstream.config.provider_name != config.provider_name
            or upstream.config.instance_name != config.instance_name
        ):
            # The inherited models ARE the predecessor's provider
            # incarnations; letting a cell labeled for another provider
            # run on them would poison rows and cache keys alike.
            raise ValueError(
                f"chained cell {config.scenario_id} targets "
                f"{config.provider_name}/{config.instance_name} but its "
                f"predecessor ran {upstream.config.provider_name}/"
                f"{upstream.config.instance_name}; a warm-fabric chain "
                "stays on one provider incarnation"
            )
        if len(upstream.fabric_state) != config.n_nodes:
            raise ValueError(
                f"predecessor fabric has {len(upstream.fabric_state)} "
                f"nodes, this cell needs {config.n_nodes}"
            )
        models = [model_from_state(s) for s in upstream.fabric_state]
    else:
        provider = default_providers()[config.provider_name]
        models = [
            provider.link_model(config.instance_name, rng)
            for _ in range(config.n_nodes)
        ]
    cluster = Cluster(
        n_nodes=config.n_nodes,
        node_spec=NodeSpec(slots=config.slots),
        link_model_factory=lambda node: models[node],
    )
    fabric = cluster.build_fabric()
    if config.arrival == "burst":
        per_burst = max(config.n_jobs // 2, 1)
        n_bursts = -(-config.n_jobs // per_burst)  # ceil
        times = burst_arrivals(
            rng,
            n_bursts=n_bursts,
            jobs_per_burst=per_burst,
            burst_spacing_s=60.0 / config.arrival_rate_per_min * per_burst,
        )[: config.n_jobs]
    else:
        times = poisson_arrivals(
            rng, rate_per_min=config.arrival_rate_per_min, n_jobs=config.n_jobs
        )
    stream = job_stream(
        rng,
        times,
        n_nodes=config.n_nodes,
        slots=config.slots,
        data_scale=config.data_scale,
        mix=_MIXES[config.workload],
        dag_config=RandomDagConfig(),
    )
    if config.deadline_slack > 0:
        deadline_rng = np.random.default_rng([config.seed, 0xDEAD11E5])
        stream = synthesize_deadlines(
            deadline_rng,
            stream,
            n_nodes=config.n_nodes,
            slots=config.slots,
            mean_slack=config.deadline_slack,
        )
    engine = SparkEngine(cluster, rng=rng)
    return _PreparedScenario(
        config=config, engine=engine, stream=list(stream), fabric=fabric
    )


def finish_scenario(prepared: _PreparedScenario, outcome) -> ScenarioResult:
    """Assemble a :class:`ScenarioResult` from a finished stream."""
    config = prepared.config
    deadlines = None
    if config.deadline_slack > 0:
        # Read back from the results (submit order) rather than the
        # stream, so alignment never depends on arrival-time ordering.
        deadlines = np.asarray([r.deadline_s for r in outcome.job_results])
    return ScenarioResult(
        config=config,
        submits=np.asarray([r.submit_s for r in outcome.job_results]),
        runtimes=outcome.runtimes(),
        makespan_s=outcome.makespan_s,
        job_names=tuple(r.job_name for r in outcome.job_results),
        deadlines=deadlines,
        slowdowns=outcome.slowdowns(),
        fabric_state=[
            model_state_dict(m) for m in prepared.fabric.egress_models
        ],
        n_steps=outcome.n_steps,
    )


def run_scenarios_batched(
    configs: "list[ScenarioConfig]",
    upstreams: "list[ScenarioResult | None] | None" = None,
) -> "list[ScenarioResult]":
    """Run independent cells through the batched multistream runner.

    Bit-identical to ``[run_scenario(c, u) for c, u in ...]`` — each
    cell's RNG draws, event order, and floats are unchanged — but all
    cells' shaper-fleet work batches through one concatenated
    super-fleet per fleet class (cells are grouped automatically, so
    mixed-provider matrices work; each group runs as one lockstep
    batch).  Cells must be independent of *each other* — chained cells
    may appear only with their upstream result supplied, like
    :func:`run_scenario`.
    """
    from repro.simulator.multistream import StreamTask, run_streams

    if upstreams is None:
        upstreams = [None] * len(configs)
    if len(upstreams) != len(configs):
        raise ValueError("one upstream entry (or None) per config required")
    prepared = [
        prepare_scenario(config, upstream=upstream)
        for config, upstream in zip(configs, upstreams)
    ]
    # Group by concrete fleet class: the super-fleet concatenation
    # requires homogeneity, and grouping preserves per-cell results
    # exactly (cells are independent).
    groups: dict[type, list[int]] = {}
    for index, prep in enumerate(prepared):
        groups.setdefault(type(prep.fabric.fleet), []).append(index)
    results: list[ScenarioResult | None] = [None] * len(configs)
    for indices in groups.values():
        outcomes = run_streams(
            [
                StreamTask(
                    engine=prepared[i].engine,
                    arrivals=prepared[i].stream,
                    scheduler=prepared[i].config.scheduler,
                    fabric=prepared[i].fabric,
                )
                for i in indices
            ]
        )
        for i, outcome in zip(indices, outcomes):
            results[i] = finish_scenario(prepared[i], outcome)
    return results  # type: ignore[return-value]


def chain_scenarios(base: ScenarioConfig, length: int) -> list[ScenarioConfig]:
    """A warm-fabric chain of ``length`` cells rooted at ``base``.

    Link ``i`` names link ``i-1`` as its predecessor and derives a
    distinct workload seed, so each link is a *different* tenant
    arriving on the fabric the previous tenant left warm — shaper
    budgets, stream ages, and RNG positions all carry over.  Chain ids
    are stable: each link's ``scenario_id`` covers its predecessor's,
    so extending a chain never invalidates its existing prefix.
    """
    if length < 1:
        raise ValueError("a chain needs at least one cell")
    configs = [base]
    for i in range(1, length):
        configs.append(
            replace(
                base,
                seed=base.seed + i,
                predecessor=configs[-1].scenario_id,
            )
        )
    return configs


def scenario_matrix(
    providers: tuple[str, ...] = ("amazon", "google"),
    arrival_rates: tuple[float, ...] = (1.0, 4.0),
    schedulers: tuple[str, ...] = ("fifo", "fair"),
    workloads: tuple[str, ...] = ("mixed",),
    n_jobs: int = 4,
    n_nodes: int = 8,
    slots: int = 4,
    data_scale: float = 1.0,
    seed: int = 0,
    instances: dict[str, str] | None = None,
    deadline_slack: float = 0.0,
    chain_length: int = 1,
) -> list[ScenarioConfig]:
    """Cross product of the requested axes, one config per cell.

    Each cell's seed derives from the base ``seed`` and the cell's own
    axis values (not its position in the cross product), so cells are
    statistically independent yet *stable*: extending an axis later
    leaves every pre-existing cell's seed — and therefore its
    ``scenario_id`` cache key — unchanged.

    ``deadline_slack`` > 0 synthesizes per-job deadlines in every cell
    (reported as miss rates; ordering-relevant under the "edf"
    scheduler), and ``chain_length`` > 1 expands every cell into a
    warm-fabric chain (see :func:`chain_scenarios`).
    """
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    instances = {**DEFAULT_INSTANCES, **(instances or {})}
    configs = []
    for provider in providers:
        for rate in arrival_rates:
            for scheduler in schedulers:
                for workload in workloads:
                    cell_key = json.dumps(
                        [
                            int(seed),
                            provider,
                            instances[provider],
                            float(rate),
                            scheduler,
                            workload,
                        ]
                    )
                    cell_seed = seed + int.from_bytes(
                        hashlib.sha256(cell_key.encode()).digest()[:4], "big"
                    )
                    base = ScenarioConfig(
                        provider_name=provider,
                        instance_name=instances[provider],
                        n_nodes=n_nodes,
                        slots=slots,
                        n_jobs=n_jobs,
                        arrival_rate_per_min=rate,
                        scheduler=scheduler,
                        workload=workload,
                        data_scale=data_scale,
                        seed=cell_seed,
                        deadline_slack=deadline_slack,
                    )
                    configs.extend(chain_scenarios(base, chain_length))
    return configs


# ----------------------------------------------------------------------
# runtime plumbing: cells and the store codec
# ----------------------------------------------------------------------
def run_scenario_payload(
    payload: Mapping, upstream: ScenarioResult | None = None
) -> ScenarioResult:
    """Cell function: reconstruct the config and run the scenario.

    The module-global :func:`run_scenario` is looked up at call time
    (not captured), so tests and instrumentation that patch it keep
    working when cells execute in-process.  ``upstream`` is the
    predecessor's decoded result for chained cells (the runtime passes
    it when the cell's ``after`` is set); unchained cells call through
    with the historical single-argument shape, so patches that take
    only a config keep working.
    """
    config = ScenarioConfig(**payload)
    if upstream is None:
        return run_scenario(config)
    return run_scenario(config, upstream=upstream)


def run_scenario_payloads_batched(
    payloads: "list[Mapping]", upstreams: "list[ScenarioResult | None]"
) -> "list[ScenarioResult]":
    """Batch-runner hook for :class:`repro.runtime.executors.BatchExecutor`.

    The batched counterpart of :func:`run_scenario_payload`: decodes
    each cell payload and runs the whole group through the multistream
    runner, returning results in payload order — bit-identical to the
    per-cell path.
    """
    configs = [ScenarioConfig(**payload) for payload in payloads]
    return run_scenarios_batched(configs, upstreams)


def batch_executor(batch_size: int = 32):
    """A :class:`~repro.runtime.executors.BatchExecutor` wired for scenarios.

    Pass to :class:`ScenarioCampaign` (or a raw
    :class:`~repro.runtime.campaign.CampaignRunner`) to run a matrix's
    independent cells through the batched multistream engine::

        ScenarioCampaign(configs, executor=batch_executor()).run()

    Results — rows, checksums, cache keys — are bit-identical to the
    serial default; only the wall clock changes.
    """
    from repro.runtime.executors import BatchExecutor

    return BatchExecutor(run_scenario_payloads_batched, batch_size=batch_size)


def encode_scenario_result(result: ScenarioResult) -> tuple[dict, dict]:
    """Codec encoder: a scenario cell as trace-repository documents.

    The per-node fabric snapshot travels as an extra ``fabric``
    document (not a trace), so chained successors can reload it and
    legacy readers that only walk ``patterns`` are unaffected.
    """
    documents, meta = campaign_to_documents(result.to_campaign_result())
    if result.fabric_state is not None:
        documents["fabric"] = {"models": result.fabric_state}
    return documents, meta


def decode_scenario_result(cell: Cell, documents: Mapping) -> ScenarioResult:
    """Codec decoder: rebuild a :class:`ScenarioResult` from the store."""
    config = ScenarioConfig(**cell.payload)
    result = ScenarioResult.from_campaign_result(
        config, campaign_from_documents(documents)
    )
    fabric_doc = documents.get("fabric")
    if fabric_doc is not None:
        result.fabric_state = list(fabric_doc["models"])
    return result


#: The scenario layer's store codec, referenced by import path so shard
#: manifests can name it across machines.
SCENARIO_CODEC = ArtifactCodec(
    encode_ref="repro.scenarios.orchestrate:encode_scenario_result",
    decode_ref="repro.scenarios.orchestrate:decode_scenario_result",
)


def scenario_cells(configs: list[ScenarioConfig]) -> list[Cell]:
    """Map scenario configs to runtime cells.

    Cells keep ``scenario_id`` as their key, so repositories populated
    before the runtime refactor keep serving cache hits; a config's
    ``predecessor`` becomes the cell's ``after`` link, which is what
    keeps a warm-fabric chain ordered (and on one shard) under every
    executor.
    """
    return [
        Cell(
            fn="repro.scenarios.orchestrate:run_scenario_payload",
            payload=asdict(config),
            key=config.scenario_id,
            after=config.predecessor,
        )
        for config in configs
    ]


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced, cache hits included."""

    results: dict[str, ScenarioResult]
    cached_ids: tuple[str, ...]
    computed_ids: tuple[str, ...]

    def aggregate_rows(self) -> list[dict]:
        """Sweep-table rows, deterministically ordered by scenario id."""
        return [
            self.results[sid].aggregate_row() for sid in sorted(self.results)
        ]

    @property
    def cache_hit_fraction(self) -> float:
        total = len(self.cached_ids) + len(self.computed_ids)
        return len(self.cached_ids) / total if total else 0.0


class ScenarioCampaign:
    """Runs a scenario matrix, caching cells in a trace repository.

    A thin adapter over :class:`repro.runtime.campaign.CampaignRunner`:
    cells store as they complete, so an interrupted or partially
    failing sweep keeps its finished work, and the repository's
    manifest writes are atomic (single coordinating writer per
    executor; shard workers write their own stores and merge).

    ``executor`` overrides the strategy derived from ``workers``
    (serial for 1, a chunked process pool otherwise) — pass a
    :class:`repro.runtime.executors.ShardExecutor` to split the matrix
    into per-machine manifests, or use :meth:`shard_manifests` and the
    ``repro worker`` / ``repro merge`` CLI directly.
    """

    def __init__(
        self,
        configs: list[ScenarioConfig],
        repository: TraceRepository | None = None,
        workers: int = 1,
        executor=None,
    ) -> None:
        if not configs:
            raise ValueError("a campaign needs at least one scenario")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        ids = [c.scenario_id for c in configs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate scenario configs in the matrix")
        self.configs = list(configs)
        self.repository = repository
        self.workers = workers
        if executor is None:
            executor = (
                SerialExecutor()
                if workers == 1
                else ProcessPoolExecutor(workers)
            )
        self.executor = executor

    @property
    def cells(self) -> list[Cell]:
        """The matrix as runtime cells (keyed by ``scenario_id``)."""
        return scenario_cells(self.configs)

    def shard_manifests(
        self, directory: str | Path, n_shards: int
    ) -> list[Path]:
        """Write per-machine shard manifests for this matrix.

        Each manifest runs via ``python -m repro worker <manifest>
        --store <dir>``; the resulting stores merge back with
        ``python -m repro merge``.
        """
        return write_shard_manifests(
            self.cells,
            n_shards=n_shards,
            directory=directory,
            encode_ref=SCENARIO_CODEC.encode_ref,
            decode_ref=SCENARIO_CODEC.decode_ref,
        )

    def run(self) -> CampaignOutcome:
        """Execute pending cells (per the executor), reload cached ones.

        Raises :class:`~repro.measurement.repository.RepositoryCorruptionError`
        when a cached cell's files have gone missing behind the
        manifest's back, exactly as the pre-runtime campaign did.
        """
        runner = CampaignRunner(
            self.cells,
            store=self.repository.artifacts if self.repository else None,
            codec=SCENARIO_CODEC,
            executor=self.executor,
        )
        outcome = run_wrapping_corruption(runner)
        return CampaignOutcome(
            results=dict(outcome.results),
            cached_ids=outcome.cached_keys,
            computed_ids=outcome.computed_keys,
        )
