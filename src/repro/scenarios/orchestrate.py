"""Campaign orchestration: scenario matrices, caching, parallelism.

KheOps-style campaign economics: a variability study is only as broad
as the number of (provider, instance, arrival pattern, scheduler)
cells it can afford to run, so the orchestrator makes cells cheap —

* every :class:`ScenarioConfig` is content-hashed into a stable
  ``scenario_id``, so a :class:`~repro.measurement.repository.TraceRepository`
  can skip cells that already ran (re-running a sweep after adding one
  arrival rate only executes the new column);
* pending cells run through a pluggable :mod:`repro.runtime` executor —
  serial, a chunked ``multiprocessing`` pool, or per-machine shard
  manifests (``python -m repro worker``) — and each cell is a pure
  function of its config, so the execution strategy never changes the
  results, only the wall clock;
* per-cell results aggregate through :mod:`repro.stats` into CoV and
  CONFIRM-widening verdicts, the same statistics the paper reports.

:class:`ScenarioCampaign` is a thin adapter over
:class:`repro.runtime.campaign.CampaignRunner`: it maps configs to
:class:`~repro.runtime.cell.Cell`\\ s (keyed by ``scenario_id``, so
pre-runtime repositories stay warm) and decodes stored artifacts back
into :class:`ScenarioResult`\\ s.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.cloud.providers import default_providers
from repro.measurement.campaign import CampaignConfig, CampaignResult
from repro.measurement.repository import (
    TraceRepository,
    campaign_from_documents,
    campaign_to_documents,
    run_wrapping_corruption,
)
from repro.runtime.campaign import ArtifactCodec, CampaignRunner
from repro.runtime.cell import Cell
from repro.runtime.executors import ProcessPoolExecutor, SerialExecutor
from repro.runtime.worker import write_shard_manifests
from repro.scenarios.generate import (
    RandomDagConfig,
    WorkloadMix,
    burst_arrivals,
    job_stream,
    poisson_arrivals,
)
from repro.simulator.cluster import Cluster, NodeSpec
from repro.simulator.engine import SCHEDULERS, SparkEngine
from repro.stats.confirm import confirm_curve
from repro.stats.cov import coefficient_of_variation
from repro.trace import BandwidthTrace

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioCampaign",
    "CampaignOutcome",
    "run_scenario",
    "run_scenario_payload",
    "scenario_matrix",
    "scenario_cells",
    "encode_scenario_result",
    "decode_scenario_result",
    "SCENARIO_CODEC",
    "DEFAULT_INSTANCES",
]

#: Default instance type per provider, matching the Table 3 catalog.
DEFAULT_INSTANCES: dict[str, str] = {
    "amazon": "c5.xlarge",
    "google": "gce-4core",
    "hpccloud": "hpccloud-8core",
}

#: Workload keyword -> generator mix.
_MIXES: dict[str, WorkloadMix] = {
    "mixed": WorkloadMix(),
    "random": WorkloadMix(1.0, 0.0, 0.0),
    "tpch": WorkloadMix(0.0, 1.0, 0.0),
    "hibench": WorkloadMix(0.0, 0.0, 1.0),
}

#: Arrival-process keywords.
_ARRIVALS: tuple[str, ...] = ("poisson", "burst")


@dataclass(frozen=True)
class ScenarioConfig:
    """One cell of a scenario matrix, fully determining its result."""

    provider_name: str = "amazon"
    instance_name: str = "c5.xlarge"
    n_nodes: int = 8
    slots: int = 4
    n_jobs: int = 4
    #: Poisson rate (jobs/minute) or burst cadence, per ``arrival``.
    arrival_rate_per_min: float = 2.0
    arrival: str = "poisson"
    scheduler: str = "fifo"
    workload: str = "mixed"
    data_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        # Normalize numeric fields so equal configs hash equally:
        # json.dumps renders 1 and 1.0 differently, and the scenario_id
        # contract is "same fields => same id".
        object.__setattr__(
            self, "arrival_rate_per_min", float(self.arrival_rate_per_min)
        )
        object.__setattr__(self, "data_scale", float(self.data_scale))
        for name in ("n_nodes", "slots", "n_jobs", "seed"):
            object.__setattr__(self, name, int(getattr(self, name)))
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of {SCHEDULERS}"
            )
        if self.arrival not in _ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"expected one of {_ARRIVALS}"
            )
        if self.workload not in _MIXES:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {sorted(_MIXES)}"
            )
        if self.n_nodes < 2 or self.slots < 1 or self.n_jobs < 1:
            raise ValueError("n_nodes >= 2, slots >= 1, n_jobs >= 1 required")
        if self.arrival_rate_per_min <= 0 or self.data_scale <= 0:
            raise ValueError("rates and scales must be positive")

    @property
    def scenario_id(self) -> str:
        """Content hash of the config: the repository cache key.

        Two configs share an id exactly when every field matches, so a
        stored result can stand in for re-execution.
        """
        payload = json.dumps(asdict(self), sort_keys=True)
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return f"scn-{digest}"


@dataclass
class ScenarioResult:
    """Per-job outcomes of one scenario cell."""

    config: ScenarioConfig
    #: Submission times, in submit order (seconds from stream start).
    submits: np.ndarray
    #: Per-job response times aligned with :attr:`submits`.
    runtimes: np.ndarray
    makespan_s: float
    #: Job names, absent when reloaded from a repository cache.
    job_names: tuple[str, ...] | None = None
    cached: bool = False

    def aggregate_row(self) -> dict:
        """One sweep-table row: config axes plus CoV/CONFIRM verdicts.

        Values are rounded so rows compare bit-for-bit across workers
        and across cache reload (JSON round-trips floats exactly).
        """
        cov = (
            coefficient_of_variation(self.runtimes)
            if self.runtimes.size > 1 and float(np.mean(self.runtimes)) != 0.0
            else 0.0
        )
        ci_widened = None
        if self.runtimes.size >= 12:
            ci_widened = confirm_curve(self.runtimes).widening_detected()
        return {
            "scenario": self.config.scenario_id,
            "provider": self.config.provider_name,
            "instance": self.config.instance_name,
            "arrival": self.config.arrival,
            "rate_per_min": self.config.arrival_rate_per_min,
            "scheduler": self.config.scheduler,
            "workload": self.config.workload,
            "n_jobs": int(self.runtimes.size),
            "mean_runtime_s": round(float(np.mean(self.runtimes)), 3),
            "p50_runtime_s": round(float(np.median(self.runtimes)), 3),
            "max_runtime_s": round(float(np.max(self.runtimes)), 3),
            "makespan_s": round(float(self.makespan_s), 3),
            "cov": round(float(cov), 4),
            "ci_widened": ci_widened,
        }

    # -- repository round-trip ---------------------------------------------
    def to_campaign_result(self) -> CampaignResult:
        """Encode the cell as a storable campaign (runtimes as a trace)."""
        config = CampaignConfig(
            provider_name=self.config.provider_name,
            instance_name=self.config.instance_name,
            duration_s=float(self.makespan_s),
            patterns=(),
            seed=self.config.seed,
        )
        trace = BandwidthTrace(
            times=self.submits,
            values=self.runtimes,
            label=f"scenario-runtimes/{self.config.scenario_id}",
            durations=np.ones_like(self.runtimes),
        )
        result = CampaignResult(config=config)
        result.traces["runtimes"] = trace
        return result

    @classmethod
    def from_campaign_result(
        cls, config: ScenarioConfig, stored: CampaignResult
    ) -> "ScenarioResult":
        """Rebuild a cell from its stored trace (cache hit)."""
        trace = stored.trace("runtimes")
        return cls(
            config=config,
            submits=np.asarray(trace.times, dtype=float),
            runtimes=np.asarray(trace.values, dtype=float),
            makespan_s=float(stored.config.duration_s),
            job_names=None,
            cached=True,
        )


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Execute one scenario cell end to end.

    A pure function of ``config``: provider incarnations, the arrival
    process, the job mix, and the engine's compute noise all derive
    from one seeded generator, so the same config always produces the
    same result regardless of where (or how parallel) it runs.

    The fabric is built once, up front: a provider hands out one model
    class per instance type (token buckets for EC2 incarnations,
    per-core QoS for GCE, ...), so homogeneous cells get the vectorized
    shaper fleet (:func:`repro.netmodel.fleet.build_fleet`) and
    anything exotic falls back to the scalar adapter — either way the
    cell's result is bit-identical.
    """
    rng = np.random.default_rng(config.seed)
    provider = default_providers()[config.provider_name]
    models = [
        provider.link_model(config.instance_name, rng)
        for _ in range(config.n_nodes)
    ]
    cluster = Cluster(
        n_nodes=config.n_nodes,
        node_spec=NodeSpec(slots=config.slots),
        link_model_factory=lambda node: models[node],
    )
    fabric = cluster.build_fabric()
    if config.arrival == "burst":
        per_burst = max(config.n_jobs // 2, 1)
        n_bursts = -(-config.n_jobs // per_burst)  # ceil
        times = burst_arrivals(
            rng,
            n_bursts=n_bursts,
            jobs_per_burst=per_burst,
            burst_spacing_s=60.0 / config.arrival_rate_per_min * per_burst,
        )[: config.n_jobs]
    else:
        times = poisson_arrivals(
            rng, rate_per_min=config.arrival_rate_per_min, n_jobs=config.n_jobs
        )
    stream = job_stream(
        rng,
        times,
        n_nodes=config.n_nodes,
        slots=config.slots,
        data_scale=config.data_scale,
        mix=_MIXES[config.workload],
        dag_config=RandomDagConfig(),
    )
    engine = SparkEngine(cluster, rng=rng)
    outcome = engine.run_stream(stream, scheduler=config.scheduler, fabric=fabric)
    return ScenarioResult(
        config=config,
        submits=np.asarray([r.submit_s for r in outcome.job_results]),
        runtimes=outcome.runtimes(),
        makespan_s=outcome.makespan_s,
        job_names=tuple(r.job_name for r in outcome.job_results),
    )


def scenario_matrix(
    providers: tuple[str, ...] = ("amazon", "google"),
    arrival_rates: tuple[float, ...] = (1.0, 4.0),
    schedulers: tuple[str, ...] = SCHEDULERS,
    workloads: tuple[str, ...] = ("mixed",),
    n_jobs: int = 4,
    n_nodes: int = 8,
    slots: int = 4,
    data_scale: float = 1.0,
    seed: int = 0,
    instances: dict[str, str] | None = None,
) -> list[ScenarioConfig]:
    """Cross product of the requested axes, one config per cell.

    Each cell's seed derives from the base ``seed`` and the cell's own
    axis values (not its position in the cross product), so cells are
    statistically independent yet *stable*: extending an axis later
    leaves every pre-existing cell's seed — and therefore its
    ``scenario_id`` cache key — unchanged.
    """
    instances = {**DEFAULT_INSTANCES, **(instances or {})}
    configs = []
    for provider in providers:
        for rate in arrival_rates:
            for scheduler in schedulers:
                for workload in workloads:
                    cell_key = json.dumps(
                        [
                            int(seed),
                            provider,
                            instances[provider],
                            float(rate),
                            scheduler,
                            workload,
                        ]
                    )
                    cell_seed = seed + int.from_bytes(
                        hashlib.sha256(cell_key.encode()).digest()[:4], "big"
                    )
                    configs.append(
                        ScenarioConfig(
                            provider_name=provider,
                            instance_name=instances[provider],
                            n_nodes=n_nodes,
                            slots=slots,
                            n_jobs=n_jobs,
                            arrival_rate_per_min=rate,
                            scheduler=scheduler,
                            workload=workload,
                            data_scale=data_scale,
                            seed=cell_seed,
                        )
                    )
    return configs


# ----------------------------------------------------------------------
# runtime plumbing: cells and the store codec
# ----------------------------------------------------------------------
def run_scenario_payload(payload: Mapping) -> ScenarioResult:
    """Cell function: reconstruct the config and run the scenario.

    The module-global :func:`run_scenario` is looked up at call time
    (not captured), so tests and instrumentation that patch it keep
    working when cells execute in-process.
    """
    return run_scenario(ScenarioConfig(**payload))


def encode_scenario_result(result: ScenarioResult) -> tuple[dict, dict]:
    """Codec encoder: a scenario cell as trace-repository documents."""
    return campaign_to_documents(result.to_campaign_result())


def decode_scenario_result(cell: Cell, documents: Mapping) -> ScenarioResult:
    """Codec decoder: rebuild a :class:`ScenarioResult` from the store."""
    config = ScenarioConfig(**cell.payload)
    return ScenarioResult.from_campaign_result(
        config, campaign_from_documents(documents)
    )


#: The scenario layer's store codec, referenced by import path so shard
#: manifests can name it across machines.
SCENARIO_CODEC = ArtifactCodec(
    encode_ref="repro.scenarios.orchestrate:encode_scenario_result",
    decode_ref="repro.scenarios.orchestrate:decode_scenario_result",
)


def scenario_cells(configs: list[ScenarioConfig]) -> list[Cell]:
    """Map scenario configs to runtime cells.

    Cells keep ``scenario_id`` as their key, so repositories populated
    before the runtime refactor keep serving cache hits.
    """
    return [
        Cell(
            fn="repro.scenarios.orchestrate:run_scenario_payload",
            payload=asdict(config),
            key=config.scenario_id,
        )
        for config in configs
    ]


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced, cache hits included."""

    results: dict[str, ScenarioResult]
    cached_ids: tuple[str, ...]
    computed_ids: tuple[str, ...]

    def aggregate_rows(self) -> list[dict]:
        """Sweep-table rows, deterministically ordered by scenario id."""
        return [
            self.results[sid].aggregate_row() for sid in sorted(self.results)
        ]

    @property
    def cache_hit_fraction(self) -> float:
        total = len(self.cached_ids) + len(self.computed_ids)
        return len(self.cached_ids) / total if total else 0.0


class ScenarioCampaign:
    """Runs a scenario matrix, caching cells in a trace repository.

    A thin adapter over :class:`repro.runtime.campaign.CampaignRunner`:
    cells store as they complete, so an interrupted or partially
    failing sweep keeps its finished work, and the repository's
    manifest writes are atomic (single coordinating writer per
    executor; shard workers write their own stores and merge).

    ``executor`` overrides the strategy derived from ``workers``
    (serial for 1, a chunked process pool otherwise) — pass a
    :class:`repro.runtime.executors.ShardExecutor` to split the matrix
    into per-machine manifests, or use :meth:`shard_manifests` and the
    ``repro worker`` / ``repro merge`` CLI directly.
    """

    def __init__(
        self,
        configs: list[ScenarioConfig],
        repository: TraceRepository | None = None,
        workers: int = 1,
        executor=None,
    ) -> None:
        if not configs:
            raise ValueError("a campaign needs at least one scenario")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        ids = [c.scenario_id for c in configs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate scenario configs in the matrix")
        self.configs = list(configs)
        self.repository = repository
        self.workers = workers
        if executor is None:
            executor = (
                SerialExecutor()
                if workers == 1
                else ProcessPoolExecutor(workers)
            )
        self.executor = executor

    @property
    def cells(self) -> list[Cell]:
        """The matrix as runtime cells (keyed by ``scenario_id``)."""
        return scenario_cells(self.configs)

    def shard_manifests(
        self, directory: str | Path, n_shards: int
    ) -> list[Path]:
        """Write per-machine shard manifests for this matrix.

        Each manifest runs via ``python -m repro worker <manifest>
        --store <dir>``; the resulting stores merge back with
        ``python -m repro merge``.
        """
        return write_shard_manifests(
            self.cells,
            n_shards=n_shards,
            directory=directory,
            encode_ref=SCENARIO_CODEC.encode_ref,
        )

    def run(self) -> CampaignOutcome:
        """Execute pending cells (per the executor), reload cached ones.

        Raises :class:`~repro.measurement.repository.RepositoryCorruptionError`
        when a cached cell's files have gone missing behind the
        manifest's back, exactly as the pre-runtime campaign did.
        """
        runner = CampaignRunner(
            self.cells,
            store=self.repository.artifacts if self.repository else None,
            codec=SCENARIO_CODEC,
            executor=self.executor,
        )
        outcome = run_wrapping_corruption(runner)
        return CampaignOutcome(
            results=dict(outcome.results),
            cached_ids=outcome.cached_keys,
            computed_ids=outcome.computed_keys,
        )
