"""Scenario subsystem: randomized workloads, streams, and campaigns.

The paper's fixed suites (Terasort, HiBench, TPC-DS) demonstrate that
token-bucket state decides application performance; this package asks
the follow-up question — *does that hold across workloads, timings,
and schedulers we didn't hand-pick?* — by generating scenarios instead
of replaying them:

* :mod:`repro.scenarios.generate` — seeded random DAG jobs,
  TPC-H-like query templates, and Poisson/burst arrival processes;
* :mod:`repro.scenarios.orchestrate` — content-hashed scenario cells
  executed through the :mod:`repro.runtime` layer (serial, chunked
  process pool, or per-machine shard manifests via ``repro worker`` /
  ``repro merge``), cached in a
  :class:`~repro.measurement.repository.TraceRepository`, and
  aggregated into CoV/CONFIRM sweep tables.

Quickstart::

    import numpy as np
    from repro.scenarios import (
        ScenarioCampaign, poisson_arrivals, job_stream, scenario_matrix,
    )

    # One multi-tenant stream, by hand:
    rng = np.random.default_rng(7)
    stream = job_stream(rng, poisson_arrivals(rng, rate_per_min=2.0, n_jobs=4),
                        n_nodes=8, data_scale=0.05)
    # ... run it with SparkEngine(cluster).run_stream(stream, scheduler="fair")

    # Or a whole provider x rate x scheduler sweep, cached and parallel:
    configs = scenario_matrix(providers=("amazon", "google"), seed=7)
    outcome = ScenarioCampaign(configs, workers=4).run()
    for row in outcome.aggregate_rows():
        print(row)

From the shell: ``python -m repro scenario --fast --seed 7``.
"""

from repro.scenarios.generate import (
    TPCH_LIKE_QUERIES,
    RandomDagConfig,
    WorkloadMix,
    burst_arrivals,
    burst_arrivals_iter,
    job_stream,
    poisson_arrivals,
    poisson_arrivals_iter,
    random_job,
    synthesize_deadlines,
    tpch_like_job,
)
from repro.scenarios.orchestrate import (
    DEFAULT_INSTANCES,
    SCENARIO_CODEC,
    CampaignOutcome,
    ScenarioCampaign,
    ScenarioConfig,
    ScenarioResult,
    chain_scenarios,
    run_scenario,
    run_scenario_payload,
    scenario_cells,
    scenario_matrix,
)

# Service-scenario generation lives in repro.serving (it builds on the
# event core, not the DAG engine) but is part of the scenario surface:
# serving cells are content-hashed, chain- and batch-executor
# compatible, and mix with DAG cells in one campaign directory.
from repro.serving.scenario import (
    SERVING_CODEC,
    ServingCampaign,
    ServingConfig,
    run_serving,
    serving_cells,
    serving_matrix,
)

__all__ = [
    "RandomDagConfig",
    "WorkloadMix",
    "random_job",
    "tpch_like_job",
    "TPCH_LIKE_QUERIES",
    "poisson_arrivals",
    "burst_arrivals",
    "poisson_arrivals_iter",
    "burst_arrivals_iter",
    "job_stream",
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioCampaign",
    "CampaignOutcome",
    "run_scenario",
    "run_scenario_payload",
    "scenario_cells",
    "chain_scenarios",
    "scenario_matrix",
    "synthesize_deadlines",
    "SCENARIO_CODEC",
    "DEFAULT_INSTANCES",
    "ServingConfig",
    "ServingCampaign",
    "run_serving",
    "serving_cells",
    "serving_matrix",
    "SERVING_CODEC",
]
