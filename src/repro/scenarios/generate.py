"""Randomized workload generation: job DAGs and arrival processes.

The paper's application-level findings come from three fixed suites
(Terasort, HiBench, TPC-DS).  Whether those findings generalize
depends on *which* workload meets *which* network state, so the
scenario layer manufactures diversity on demand:

* :func:`random_job` — a seeded random DAG generator producing
  layered fan-in/fan-out stage graphs with skewed (lognormal) task
  sizes and shuffle volumes;
* :func:`tpch_like_job` — template-based analytic queries shaped like
  the TPC-H catalog (scan -> join trees -> aggregate), jittered per
  incarnation;
* :func:`poisson_arrivals` / :func:`burst_arrivals` — arrival
  processes turning individual jobs into multi-tenant streams, plus
  lazy ``duration_s``-bounded generator forms
  (:func:`poisson_arrivals_iter` / :func:`burst_arrivals_iter`) for
  open-loop streams at production rates that must not allocate
  O(arrivals) lists up front;
* :func:`job_stream` — the combinator: a seeded mix of random,
  TPC-H-like, and HiBench jobs attached to an arrival process, ready
  for :meth:`repro.simulator.engine.SparkEngine.run_stream`;
* :func:`synthesize_deadlines` — attaches seeded per-job completion
  deadlines to a stream (slack drawn relative to each job's ideal
  service time), feeding the engine's EDF scheduler and the
  deadline-miss telemetry every scheduler reports.

Everything is driven by an explicit :class:`numpy.random.Generator`,
so the same seed always reproduces the same stream bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.tasks import JobSpec, StageSpec
from repro.workloads.hibench import HIBENCH_APPS

__all__ = [
    "RandomDagConfig",
    "WorkloadMix",
    "random_job",
    "tpch_like_job",
    "TPCH_LIKE_QUERIES",
    "poisson_arrivals",
    "burst_arrivals",
    "poisson_arrivals_iter",
    "burst_arrivals_iter",
    "job_stream",
    "synthesize_deadlines",
]


@dataclass(frozen=True)
class RandomDagConfig:
    """Knobs of the random DAG generator.

    Defaults produce jobs in the same size class as the HiBench models:
    a handful of stages, one or two scheduling waves per stage, tens of
    seconds of compute per task, and shuffle volumes whose lognormal
    skew spans compute-bound to heavily network-bound stages.
    """

    min_stages: int = 3
    max_stages: int = 7
    #: Most fan-in a join-like stage may have.
    max_fan_in: int = 3
    #: Most scheduling waves a stage's task count may span.
    max_waves: int = 2
    #: Per-task mean compute range (seconds).
    compute_range: tuple[float, float] = (5.0, 45.0)
    #: Lognormal CoV of per-task compute times within a stage.
    compute_cov: float = 0.12
    #: Median shuffle volume per reduce-like stage (Gbit) before skew.
    shuffle_median_gbit: float = 400.0
    #: Sigma of the lognormal skew on shuffle volumes; ~1.0 spans two
    #: orders of magnitude, covering K-Means-like to Terasort-like.
    shuffle_sigma: float = 1.0
    #: Median input read by source stages (Gbit).
    input_median_gbit: float = 800.0
    #: Probability a non-root stage also reads fresh input (side scan).
    p_side_input: float = 0.2
    #: HDFS locality of input reads.
    input_locality: float = 0.95

    def __post_init__(self) -> None:
        if self.min_stages < 1 or self.max_stages < self.min_stages:
            raise ValueError("need 1 <= min_stages <= max_stages")
        if self.max_fan_in < 1 or self.max_waves < 1:
            raise ValueError("fan-in and waves must be >= 1")
        if self.compute_range[0] < 0 or self.compute_range[1] < self.compute_range[0]:
            raise ValueError("compute range must be ordered and non-negative")
        if self.shuffle_median_gbit < 0 or self.input_median_gbit < 0:
            raise ValueError("volumes cannot be negative")
        if not 0.0 <= self.p_side_input <= 1.0:
            raise ValueError("p_side_input must be a probability")
        if not 0.0 <= self.input_locality <= 1.0:
            raise ValueError("locality must be a fraction")


def random_job(
    rng: np.random.Generator,
    name: str = "rand",
    n_nodes: int = 12,
    slots: int = 4,
    data_scale: float = 1.0,
    config: RandomDagConfig | None = None,
) -> JobSpec:
    """Draw one random DAG job.

    The DAG is layered: stage 0 is always a source scan; every later
    stage picks 1..``max_fan_in`` parents among its predecessors
    (fan-in), and a predecessor feeding several later stages gives
    fan-out.  Shuffle volumes are lognormally skewed so the generated
    population spans the paper's compute-bound-to-network-bound axis.
    """
    cfg = config or RandomDagConfig()
    if data_scale <= 0:
        raise ValueError("data_scale must be positive")
    n_stages = int(rng.integers(cfg.min_stages, cfg.max_stages + 1))
    base_tasks = n_nodes * slots
    stages: list[StageSpec] = []
    for i in range(n_stages):
        waves = int(rng.integers(1, cfg.max_waves + 1))
        compute_s = float(rng.uniform(*cfg.compute_range))
        if i == 0:
            parents: tuple[int, ...] = ()
            shuffle = 0.0
        else:
            fan_in = int(rng.integers(1, min(i, cfg.max_fan_in) + 1))
            parents = tuple(
                sorted(rng.choice(i, size=fan_in, replace=False).tolist())
            )
            shuffle = float(
                cfg.shuffle_median_gbit
                * data_scale
                * rng.lognormal(mean=0.0, sigma=cfg.shuffle_sigma)
            )
        reads_input = i == 0 or rng.uniform() < cfg.p_side_input
        input_gbit = (
            float(
                cfg.input_median_gbit
                * data_scale
                * rng.lognormal(mean=0.0, sigma=cfg.shuffle_sigma / 2.0)
            )
            if reads_input
            else 0.0
        )
        stages.append(
            StageSpec(
                name=f"s{i}",
                num_tasks=base_tasks * waves,
                compute_s=compute_s,
                compute_cov=cfg.compute_cov,
                shuffle_gbit=shuffle,
                input_gbit=input_gbit,
                input_locality=cfg.input_locality,
                parents=parents,
            )
        )
    return JobSpec(name=name, stages=tuple(stages))


#: TPC-H-like query templates: canonical analytic DAG shapes.  Each
#: stage is (name, parents, compute_s, shuffle_gbit, input_gbit); the
#: shapes follow the TPC-H catalog's archetypes — single-table
#: aggregation (Q1), selective join (Q12), star joins of increasing
#: width (Q3, Q5), and join-heavy reporting queries (Q18, Q21).
#: Volumes are nominal Gbit at ``data_scale=1`` and jittered per call.
TPCH_LIKE_QUERIES: dict[int, tuple[tuple[str, tuple[int, ...], float, float, float], ...]] = {
    1: (
        ("scan-lineitem", (), 30.0, 0.0, 2_400.0),
        ("aggregate", (0,), 20.0, 120.0, 0.0),
    ),
    3: (
        ("scan-customer", (), 8.0, 0.0, 200.0),
        ("scan-orders", (), 14.0, 0.0, 600.0),
        ("scan-lineitem", (), 24.0, 0.0, 2_400.0),
        ("join-cust-ord", (0, 1), 16.0, 500.0, 0.0),
        ("join-lineitem", (2, 3), 28.0, 1_400.0, 0.0),
        ("topk", (4,), 8.0, 60.0, 0.0),
    ),
    5: (
        ("scan-region", (), 2.0, 0.0, 10.0),
        ("scan-nation", (), 2.0, 0.0, 10.0),
        ("scan-customer", (), 8.0, 0.0, 200.0),
        ("scan-supplier", (), 6.0, 0.0, 100.0),
        ("scan-orders", (), 14.0, 0.0, 600.0),
        ("scan-lineitem", (), 24.0, 0.0, 2_400.0),
        ("join-dims", (0, 1, 2), 10.0, 220.0, 0.0),
        ("join-facts", (4, 5), 26.0, 1_600.0, 0.0),
        ("join-all", (3, 6, 7), 20.0, 800.0, 0.0),
        ("aggregate", (8,), 10.0, 90.0, 0.0),
    ),
    12: (
        ("scan-orders", (), 14.0, 0.0, 600.0),
        ("scan-lineitem", (), 22.0, 0.0, 2_400.0),
        ("join", (0, 1), 20.0, 700.0, 0.0),
        ("aggregate", (2,), 8.0, 50.0, 0.0),
    ),
    18: (
        ("scan-lineitem", (), 24.0, 0.0, 2_400.0),
        ("group-lineitem", (0,), 18.0, 1_200.0, 0.0),
        ("scan-orders", (), 14.0, 0.0, 600.0),
        ("scan-customer", (), 8.0, 0.0, 200.0),
        ("join-big", (1, 2, 3), 24.0, 900.0, 0.0),
        ("topk", (4,), 6.0, 40.0, 0.0),
    ),
    21: (
        ("scan-supplier", (), 6.0, 0.0, 100.0),
        ("scan-lineitem-1", (), 22.0, 0.0, 2_400.0),
        ("scan-orders", (), 14.0, 0.0, 600.0),
        ("scan-nation", (), 2.0, 0.0, 10.0),
        ("self-join-l1", (1,), 20.0, 1_100.0, 0.0),
        ("join-sup", (0, 3, 4), 16.0, 500.0, 0.0),
        ("join-ord", (2, 5), 18.0, 600.0, 0.0),
        ("aggregate", (6,), 8.0, 60.0, 0.0),
    ),
}


def tpch_like_job(
    query: int,
    rng: np.random.Generator,
    n_nodes: int = 12,
    slots: int = 4,
    data_scale: float = 1.0,
    volume_jitter: float = 0.2,
) -> JobSpec:
    """Build one incarnation of a TPC-H-like template query.

    Data volumes jitter uniformly by ``±volume_jitter`` per call,
    modeling scale-factor and selectivity differences between
    incarnations of the "same" query.
    """
    try:
        template = TPCH_LIKE_QUERIES[query]
    except KeyError:
        raise KeyError(
            f"no TPC-H-like template for query {query}; "
            f"available: {sorted(TPCH_LIKE_QUERIES)}"
        ) from None
    if data_scale <= 0:
        raise ValueError("data_scale must be positive")
    if not 0.0 <= volume_jitter < 1.0:
        raise ValueError("volume_jitter must be in [0, 1)")
    base_tasks = n_nodes * slots
    stages = []
    for name, parents, compute_s, shuffle, input_gbit in template:
        jitter = float(rng.uniform(1.0 - volume_jitter, 1.0 + volume_jitter))
        # Scans get a full wave; small dimension stages less compute
        # but task count stays a wave so placement spreads evenly.
        stages.append(
            StageSpec(
                name=name,
                num_tasks=base_tasks,
                compute_s=compute_s,
                compute_cov=0.12,
                shuffle_gbit=shuffle * data_scale * jitter,
                input_gbit=input_gbit * data_scale * jitter,
                input_locality=0.95,
                parents=parents,
            )
        )
    return JobSpec(name=f"tpch-q{query}", stages=tuple(stages))


def poisson_arrivals(
    rng: np.random.Generator,
    rate_per_min: float,
    n_jobs: int,
) -> np.ndarray:
    """Job submission times of a Poisson process (exponential gaps).

    The first job arrives at t=0 so every stream does work immediately;
    subsequent gaps are exponential with mean ``60 / rate_per_min``.
    """
    if rate_per_min <= 0:
        raise ValueError("arrival rate must be positive")
    if n_jobs < 1:
        raise ValueError("need at least one job")
    gaps = rng.exponential(scale=60.0 / rate_per_min, size=n_jobs - 1)
    return np.concatenate([[0.0], np.cumsum(gaps)])


def burst_arrivals(
    rng: np.random.Generator,
    n_bursts: int,
    jobs_per_burst: int,
    burst_spacing_s: float,
    jitter_s: float = 2.0,
) -> np.ndarray:
    """Bursty submissions: batches of near-simultaneous jobs.

    Models the nightly-ETL pattern: every ``burst_spacing_s`` a batch
    of ``jobs_per_burst`` jobs lands within ``jitter_s`` of the burst
    start — the worst case for slot contention and bucket depletion.
    """
    if n_bursts < 1 or jobs_per_burst < 1:
        raise ValueError("need at least one burst with one job")
    if burst_spacing_s <= 0 or jitter_s < 0:
        raise ValueError("spacing must be positive, jitter non-negative")
    times = []
    for b in range(n_bursts):
        base = b * burst_spacing_s
        offsets = np.sort(rng.uniform(0.0, jitter_s, size=jobs_per_burst))
        times.extend(base + offsets)
    arr = np.asarray(times)
    return arr - arr[0]


def poisson_arrivals_iter(
    rng: np.random.Generator,
    rate_per_min: float,
    duration_s: float,
):
    """Lazy :func:`poisson_arrivals`: yield times strictly below ``duration_s``.

    The generator form for open-loop streams at production rates: a
    million-request arrival process costs O(1) memory because times are
    drawn one gap at a time and never materialize a list.  The first
    arrival is t=0 (as in the eager form) and each subsequent gap is
    one scalar exponential draw, so consuming ``k`` arrivals advances
    the RNG by exactly ``k - 1`` draws regardless of ``duration_s``.
    """
    if rate_per_min <= 0:
        raise ValueError("arrival rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    scale = 60.0 / rate_per_min
    t = 0.0
    while t < duration_s:
        yield t
        t += rng.exponential(scale=scale)


def burst_arrivals_iter(
    rng: np.random.Generator,
    jobs_per_burst: int,
    burst_spacing_s: float,
    duration_s: float,
    jitter_s: float = 2.0,
):
    """Lazy :func:`burst_arrivals`: bursts forever, bounded by ``duration_s``.

    Yields the same shape of process as the eager form — every
    ``burst_spacing_s`` a batch of ``jobs_per_burst`` near-simultaneous
    arrivals, normalized so the first arrival is t=0 — but generates
    one burst at a time and stops at the first arrival at or past
    ``duration_s``, so unbounded streams never allocate O(arrivals)
    up front.
    """
    if jobs_per_burst < 1:
        raise ValueError("need at least one job per burst")
    if burst_spacing_s <= 0 or jitter_s < 0:
        raise ValueError("spacing must be positive, jitter non-negative")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    origin = None
    b = 0
    while True:
        base = b * burst_spacing_s
        offsets = np.sort(rng.uniform(0.0, jitter_s, size=jobs_per_burst))
        for offset in offsets:
            t = base + offset
            if origin is None:
                # Normalization only depends on the very first arrival,
                # so laziness survives it.
                origin = t
            t -= origin
            if t >= duration_s:
                return
            yield t
        b += 1


@dataclass(frozen=True)
class WorkloadMix:
    """Relative weights of the three job sources in a stream."""

    random_weight: float = 1.0
    tpch_weight: float = 1.0
    hibench_weight: float = 1.0

    def __post_init__(self) -> None:
        weights = (self.random_weight, self.tpch_weight, self.hibench_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("mix weights must be non-negative and not all zero")

    @property
    def probabilities(self) -> np.ndarray:
        weights = np.asarray(
            [self.random_weight, self.tpch_weight, self.hibench_weight]
        )
        return weights / weights.sum()


def job_stream(
    rng: np.random.Generator,
    arrival_times: np.ndarray,
    n_nodes: int = 12,
    slots: int = 4,
    data_scale: float = 1.0,
    mix: WorkloadMix | None = None,
    dag_config: RandomDagConfig | None = None,
) -> list[tuple[float, JobSpec]]:
    """Attach a seeded job to every arrival time.

    Each arrival draws its source (random DAG, TPC-H-like template, or
    HiBench application) from ``mix``, then draws the job itself; the
    whole stream is a pure function of ``rng``'s state.
    """
    mix = mix or WorkloadMix()
    probs = mix.probabilities
    hibench_names = sorted(HIBENCH_APPS)
    tpch_numbers = sorted(TPCH_LIKE_QUERIES)
    stream: list[tuple[float, JobSpec]] = []
    for i, t in enumerate(np.asarray(arrival_times, dtype=float)):
        source = int(rng.choice(3, p=probs))
        if source == 0:
            job = random_job(
                rng,
                name=f"rand-{i}",
                n_nodes=n_nodes,
                slots=slots,
                data_scale=data_scale,
                config=dag_config,
            )
        elif source == 1:
            query = int(rng.choice(tpch_numbers))
            job = tpch_like_job(
                query, rng, n_nodes=n_nodes, slots=slots, data_scale=data_scale
            )
        else:
            name = hibench_names[int(rng.integers(len(hibench_names)))]
            job = HIBENCH_APPS[name](
                n_nodes=n_nodes, slots=slots, data_scale=data_scale
            )
        stream.append((float(t), job))
    return stream


def _ideal_service_s(
    job: JobSpec, total_slots: int, n_nodes: int, bandwidth_gbps: float
) -> float:
    """Contention-free runtime lower bound for one job.

    The max of two classic bounds — total compute work spread over
    every slot, and the DAG critical path with each stage taking
    ``ceil(tasks / slots)`` waves of its mean task time — plus the
    job's network volume spread over every NIC.  Tighter than either
    bound alone: wide jobs are slot-bound, deep jobs path-bound.
    """
    work_bound = job.total_compute_s / total_slots
    path: list[float] = []
    for stage in job.stages:
        waves = -(-stage.num_tasks // total_slots)  # ceil
        longest_parent = max((path[p] for p in stage.parents), default=0.0)
        path.append(longest_parent + waves * stage.compute_s)
    transfer = job.total_network_gbit / (n_nodes * bandwidth_gbps)
    return max(work_bound, max(path)) + transfer


def synthesize_deadlines(
    rng: np.random.Generator,
    stream: list[tuple[float, JobSpec]],
    n_nodes: int,
    slots: int,
    mean_slack: float = 1.0,
    bandwidth_gbps: float = 10.0,
) -> list[tuple[float, JobSpec, float]]:
    """Attach a completion deadline to every job of an arrival stream.

    Each job's deadline is its submission time plus its *ideal service
    time* (see :func:`_ideal_service_s`: slot-parallel work or DAG
    critical path, whichever binds, plus transfer time) inflated by a
    multiplicative slack factor ``1 + Exp(mean_slack)``.  Exponential
    slack makes some deadlines barely feasible (tight tail near 1.0,
    missed under any contention) and others generous, so deadline-miss
    rates discriminate between schedulers instead of saturating at 0
    or 1.  Deadlines are a pure function of ``rng``; drive it with a
    generator independent of the workload's so attaching deadlines
    never perturbs the stream itself.
    """
    if n_nodes < 1 or slots < 1:
        raise ValueError("n_nodes and slots must be >= 1")
    if mean_slack <= 0:
        raise ValueError("mean slack must be positive")
    if bandwidth_gbps <= 0:
        raise ValueError("bandwidth must be positive")
    total_slots = n_nodes * slots
    out: list[tuple[float, JobSpec, float]] = []
    for t, job in stream:
        service = _ideal_service_s(job, total_slots, n_nodes, bandwidth_gbps)
        factor = 1.0 + float(rng.exponential(scale=mean_slack))
        out.append((t, job, t + service * factor))
    return out
