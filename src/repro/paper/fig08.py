"""Figure 8: observed Google Cloud latency for 10-second TCP samples.

A 4-core GCE instance: RTTs sit at milliseconds with an upper limit
around 10 ms, and the bandwidth varies more sample-to-sample than
EC2's (no throttling regime exists).

Claims the output must satisfy (Section 3.2): millisecond-scale
median, maximum at or below ~10 ms, no bandwidth collapse over time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.providers import GceProvider
from repro.emulator.link import EmulatedLink
from repro.emulator.patterns import FULL_SPEED
from repro.measurement.rtt import LatencyProbe
from repro.trace import RttTrace, TimeSeries

__all__ = ["Figure8Result", "reproduce"]


@dataclass
class Figure8Result:
    """RTT samples and the accompanying bandwidth series."""

    rtt: RttTrace
    bandwidth: TimeSeries

    def rows(self) -> list[dict]:
        """Printable summary."""
        return [
            {
                "rtt_samples": len(self.rtt),
                "rtt_median_ms": round(self.rtt.median(), 2),
                "rtt_max_ms": round(float(self.rtt.values.max()), 2),
                "bandwidth_mean_gbps": round(self.bandwidth.mean(), 2),
                "bandwidth_cov_pct": round(
                    100.0 * self.bandwidth.coefficient_of_variation(), 1
                ),
            }
        ]


def reproduce(
    stream_s: float = 10.0, max_samples: int = 100_000, seed: int = 0
) -> Figure8Result:
    """One 10-second stream on a GCE 4-core pair."""
    provider = GceProvider()
    rng = np.random.default_rng(seed)
    model = provider.link_model("gce-4core", rng)
    link = EmulatedLink(model, FULL_SPEED, report_interval_s=1.0)
    samples = link.run(stream_s)
    bandwidth = TimeSeries(
        np.array([s.t_start for s in samples]),
        np.array([s.bandwidth_gbps for s in samples]),
        label="iperf",
    )
    probe = LatencyProbe(
        provider.latency_model(), packet_bytes=65_536, max_samples=max_samples
    )
    rtt = probe.run(bandwidth.mean(), duration_s=stream_s, rng=rng)
    return Figure8Result(rtt=rtt, bandwidth=bandwidth)
