"""Reproductions of every figure and table in the paper.

One module per artifact; each exposes a ``reproduce(...)`` function
returning plain data structures (the rows/series the paper plots), so
the benchmark harness can print them and tests can assert on their
shape.  Module-level docstrings state which paper claims the output
must satisfy.

Figure index:

========  ====================================================
fig01     survey reporting practices (Section 2)
fig02     Ballani bandwidth distributions for clouds A-H
fig03     few-repetition medians vs 50-run gold CIs
fig04     HPCCloud bandwidth variability
fig05     Google Cloud bandwidth by access pattern
fig06     Amazon EC2 bandwidth CDF and CoV
fig07     EC2 RTT, normal vs throttled
fig08     GCE RTT
fig09     retransmission analysis
fig10     cumulative traffic by pattern
fig11     EC2 token-bucket parameter identification
fig12     latency/bandwidth vs write() size
fig13     CONFIRM repetitions analysis
fig14     emulator validation against the EC2 policy
fig15     Terasort traffic vs initial budget
fig16     HiBench runtime and variability vs budget
fig17     TPC-DS slowdown and variability per query
fig18     token-bucket-induced straggler
fig19     CI evolution under budget depletion
tables    Tables 1-4
========  ====================================================
"""
