"""Figure 10: total traffic transferred per access pattern.

Cumulative data moved between the VM pairs over the campaign, per
pattern, for Amazon EC2 (a) and Google Cloud (b).

Claims the output must satisfy (Section 3.3):

* on Google Cloud, full-speed moves orders of magnitude more data
  than the intermittent patterns (the duty cycle dominates);
* on Amazon EC2 the three totals are roughly equal — the fingerprint
  of the token bucket: resting refills the budget, so the intermittent
  patterns send at 10 Gbps while full-speed is pinned near 1 Gbps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measurement.campaign import CampaignConfig, run_campaign
from repro.units import SECONDS_PER_WEEK, gbit_to_tbyte

__all__ = ["Figure10Result", "reproduce"]


@dataclass
class Figure10Result:
    """Cumulative-traffic series (TB) per cloud and pattern."""

    #: ``{cloud: {pattern: cumulative TB array}}``
    cumulative_tb: dict[str, dict[str, np.ndarray]]

    def totals_tb(self) -> dict[str, dict[str, float]]:
        """Final totals per cloud/pattern."""
        return {
            cloud: {
                pattern: float(series[-1]) if series.size else 0.0
                for pattern, series in patterns.items()
            }
            for cloud, patterns in self.cumulative_tb.items()
        }

    def rows(self) -> list[dict]:
        """One printable row per cloud/pattern."""
        out = []
        for cloud, patterns in self.totals_tb().items():
            for pattern, total in patterns.items():
                out.append(
                    {"cloud": cloud, "pattern": pattern, "total_tb": round(total, 2)}
                )
        return out

    def ec2_totals_roughly_equal(self, tolerance: float = 0.5) -> bool:
        """The EC2 claim: all three totals within ~2x of each other."""
        totals = list(self.totals_tb()["amazon"].values())
        return min(totals) >= max(totals) * tolerance

    def gce_full_speed_dominates(self, factor: float = 3.0) -> bool:
        """The GCE claim: full-speed moves far more data."""
        totals = self.totals_tb()["google"]
        others = [v for k, v in totals.items() if k != "full-speed"]
        return totals["full-speed"] > factor * max(others)


def reproduce(
    duration_s: float = SECONDS_PER_WEEK, seed: int = 0
) -> Figure10Result:
    """Run the EC2 and GCE campaigns and accumulate traffic."""
    cumulative: dict[str, dict[str, np.ndarray]] = {}
    for cloud, instance in (("amazon", "c5.xlarge"), ("google", "gce-8core")):
        config = CampaignConfig(
            provider_name=cloud,
            instance_name=instance,
            duration_s=duration_s,
            seed=seed,
        )
        result = run_campaign(config)
        cumulative[cloud] = {
            name: np.array(
                [gbit_to_tbyte(g) for g in trace.cumulative_traffic_gbit()]
            )
            for name, trace in result.traces.items()
        }
    return Figure10Result(cumulative_tb=cumulative)
