"""Figure 6: variable network bandwidth in Amazon EC2.

One week per access pattern on a c5.xlarge pair, presented as an
empirical CDF plus the coefficient of variation per pattern.

Claims the output must satisfy (Section 3.1):

* the *opposite* of GCE: heavier streams achieve less, because
  intermittent patterns let the token bucket refill while full-speed
  drains it — mean(5-30) > mean(10-30) > mean(full-speed);
* "approximately 3x and 7x slowdowns between 10-30 and 5-30 and
  full-speed, respectively": 10-30 achieves ~3x and 5-30 ~7x the
  full-speed mean;
* achieved bandwidth spans roughly 1-10 Gbps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.providers import Ec2Provider
from repro.emulator.patterns import FIVE_THIRTY, FULL_SPEED, TEN_THIRTY
from repro.measurement.iperf import BandwidthProbe
from repro.trace import BandwidthTrace
from repro.units import SECONDS_PER_WEEK

__all__ = ["Figure6Result", "reproduce"]

_PATTERNS = (FULL_SPEED, TEN_THIRTY, FIVE_THIRTY)


@dataclass
class Figure6Result:
    """Per-pattern traces, CDFs, and CoVs."""

    traces: dict[str, BandwidthTrace]

    def cdf(self, pattern: str) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF for one pattern (the left panel)."""
        return self.traces[pattern].cdf()

    def cov(self, pattern: str) -> float:
        """Coefficient of variation for one pattern (the right panel)."""
        return self.traces[pattern].coefficient_of_variation()

    def mean(self, pattern: str) -> float:
        """Mean achieved bandwidth for one pattern."""
        return self.traces[pattern].mean()

    def rows(self) -> list[dict]:
        """One printable row per pattern."""
        return [
            {
                "pattern": name,
                "samples": len(trace),
                "mean_gbps": round(self.mean(name), 2),
                "min_gbps": round(float(trace.values.min()), 2),
                "max_gbps": round(float(trace.values.max()), 2),
                "cov_pct": round(100.0 * self.cov(name), 1),
            }
            for name, trace in self.traces.items()
        ]

    def slowdowns(self) -> dict[str, float]:
        """Mean-bandwidth ratios over full-speed (the paper's ~3x/~7x)."""
        base = self.mean("full-speed")
        return {
            "ten_thirty_vs_full_speed": self.mean("10-30") / base,
            "five_thirty_vs_full_speed": self.mean("5-30") / base,
        }


def reproduce(
    duration_s: float = SECONDS_PER_WEEK, seed: int = 0
) -> Figure6Result:
    """Measure an EC2 c5.xlarge pair under all three patterns."""
    provider = Ec2Provider()
    rng = np.random.default_rng(seed)
    traces: dict[str, BandwidthTrace] = {}
    for pattern in _PATTERNS:
        model = provider.link_model("c5.xlarge", rng)
        probe = BandwidthProbe(model, pattern)
        traces[pattern.name] = probe.run(
            duration_s, rng=rng, label=f"ec2/{pattern.name}"
        )
    return Figure6Result(traces=traces)
