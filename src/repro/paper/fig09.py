"""Figure 9: TCP retransmission analysis across all three clouds.

Left: per-cloud retransmission distributions (IQR boxes, 1st/99th
whiskers) over the week-long campaigns.  Right: the per-pattern violin
for Google Cloud.

Claims the output must satisfy (Section 3.3):

* Amazon EC2 and HPCCloud see negligible retransmissions;
* Google Cloud sees roughly 2 % of segments retransmitted — hundreds
  of thousands per 10-second reporting window at full speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measurement.campaign import CampaignConfig, run_campaign
from repro.trace import BoxSummary, summarize_box

__all__ = ["Figure9Result", "reproduce"]


@dataclass
class Figure9Result:
    """Per-cloud boxes and the GCE per-pattern distributions."""

    cloud_boxes: dict[str, BoxSummary]
    gce_pattern_counts: dict[str, np.ndarray]

    def rows(self) -> list[dict]:
        """One printable row per cloud."""
        return [
            {
                "cloud": cloud,
                **{k: round(v, 1) for k, v in box.as_dict().items()},
            }
            for cloud, box in self.cloud_boxes.items()
        ]

    def violin_rows(self) -> list[dict]:
        """GCE per-pattern spread (the violin panel)."""
        return [
            {
                "pattern": name,
                "mean_retrans": round(float(counts.mean()), 1),
                "p99_retrans": round(float(np.percentile(counts, 99)), 1),
            }
            for name, counts in self.gce_pattern_counts.items()
        ]


def reproduce(duration_s: float = 86_400.0, seed: int = 0) -> Figure9Result:
    """Run one campaign per cloud and collect retransmission counts.

    ``duration_s`` defaults to one day per cloud — the distributions
    stabilize well before a week and the full campaigns are available
    through :func:`repro.measurement.campaign.table3_campaigns`.
    """
    configs = {
        "amazon": CampaignConfig(
            provider_name="amazon", instance_name="c5.xlarge",
            duration_s=duration_s, seed=seed,
        ),
        "google": CampaignConfig(
            provider_name="google", instance_name="gce-8core",
            duration_s=duration_s, seed=seed + 1,
        ),
        "hpccloud": CampaignConfig(
            provider_name="hpccloud", instance_name="hpccloud-8core",
            duration_s=duration_s, seed=seed + 2,
        ),
    }
    cloud_boxes: dict[str, BoxSummary] = {}
    gce_patterns: dict[str, np.ndarray] = {}
    for cloud, config in configs.items():
        result = run_campaign(config)
        counts = np.concatenate(
            [trace.retransmissions for trace in result.traces.values()]
        )
        cloud_boxes[cloud] = summarize_box(counts)
        if cloud == "google":
            gce_patterns = {
                name: trace.retransmissions
                for name, trace in result.traces.items()
            }
    return Figure9Result(cloud_boxes=cloud_boxes, gce_pattern_counts=gce_patterns)
