"""Figure 18: token-bucket-induced stragglers.

A long TPC-DS stream on the 12-node cluster with an initial budget of
2500 Gbit per node.  Scheduling/data imbalance concentrates extra
egress on one node (here the node co-hosting the driver and HDFS
master): every other node's budget stays above zero and keeps the
10 Gbps QoS, while the loaded node depletes, drops to 1 Gbps, and then
*oscillates* between high and low rates as its bucket scrapes along
the resume threshold.

Claims the output must satisfy (F4.3):

* exactly the skewed node (and no other) becomes a straggler;
* the straggler's bandwidth oscillates between the two QoS levels in
  short periods rather than settling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.paper._common import token_bucket_cluster
from repro.simulator.engine import SparkEngine
from repro.trace import TimeSeries, concat_series
from repro.workloads.tpcds import tpcds_job

__all__ = ["Figure18Result", "reproduce"]

#: A network-leaning query mix for the stream (heavy + medium).
DEFAULT_STREAM: tuple[int, ...] = (65, 19, 68, 59, 46, 79, 70, 7, 27, 89)


@dataclass
class Figure18Result:
    """Per-node series plus straggler diagnosis."""

    bandwidth: dict[int, TimeSeries]
    budget: dict[int, TimeSeries]
    skewed_node: int
    straggler_nodes: list[int]
    throttled_fraction: dict[int, float]

    def rows(self) -> list[dict]:
        """Printable per-node summary (regular vs straggler)."""
        out = []
        for node in sorted(self.bandwidth):
            out.append(
                {
                    "node": node,
                    "role": "straggler" if node in self.straggler_nodes
                    else "regular",
                    "min_budget_gbit": round(
                        float(self.budget[node].values.min()), 1
                    ),
                    "throttled_pct": round(
                        100.0 * self.throttled_fraction[node], 1
                    ),
                }
            )
        return out

    def straggler_oscillates(self) -> bool:
        """The straggler flips between high and low rates repeatedly."""
        if not self.straggler_nodes:
            return False
        series = self.bandwidth[self.straggler_nodes[0]].values
        low = series <= 1.5
        high = series >= 5.0
        state = np.zeros(series.size, dtype=int)
        state[low] = -1
        state[high] = 1
        meaningful = state[state != 0]
        transitions = int(np.sum(meaningful[1:] != meaningful[:-1]))
        return transitions >= 4


def reproduce(
    budget_gbit: float = 2_500.0,
    stream: tuple[int, ...] = DEFAULT_STREAM,
    stream_repeats: int = 3,
    skewed_node: int = 0,
    skew_factor: float = 2.0,
    seed: int = 0,
) -> Figure18Result:
    """Run the query stream on one fabric with a skewed node."""
    if stream_repeats < 1:
        raise ValueError("need at least one pass over the stream")
    cluster = token_bucket_cluster(budget_gbit)
    skew = [1.0] * cluster.n_nodes
    skew[skewed_node] = skew_factor
    engine = SparkEngine(
        cluster, rng=np.random.default_rng(seed), node_data_skew=skew
    )
    fabric = cluster.build_fabric()
    for model in fabric.egress_models:
        model.set_budget(budget_gbit)

    bandwidth_parts: dict[int, list[TimeSeries]] = {
        n: [] for n in range(cluster.n_nodes)
    }
    budget_parts: dict[int, list[TimeSeries]] = {
        n: [] for n in range(cluster.n_nodes)
    }
    throttled_samples: dict[int, list[np.ndarray]] = {
        n: [] for n in range(cluster.n_nodes)
    }
    offset = 0.0
    for _ in range(stream_repeats):
        for query in stream:
            result = engine.run(tpcds_job(query, n_nodes=12, slots=4), fabric=fabric)
            for node in range(cluster.n_nodes):
                bw = result.node_bandwidth_series(node)
                bd = result.node_budget_series(node)
                bandwidth_parts[node].append(
                    TimeSeries(bw.times + offset, bw.values)
                )
                budget_parts[node].append(
                    TimeSeries(bd.times + offset, bd.values)
                )
                throttled_samples[node].append(result.budgets[node] <= 1.0)
            offset += result.runtime_s

    bandwidth = {
        n: concat_series(parts, label=f"node{n}-bw")
        for n, parts in bandwidth_parts.items()
    }
    budget = {
        n: concat_series(parts, label=f"node{n}-budget")
        for n, parts in budget_parts.items()
    }
    throttled_fraction = {
        n: float(np.mean(np.concatenate(samples)))
        for n, samples in throttled_samples.items()
    }
    median_frac = float(np.median(list(throttled_fraction.values())))
    stragglers = [
        n
        for n, frac in throttled_fraction.items()
        if frac > 0.05 and frac > 4 * max(median_frac, 0.005)
    ]
    return Figure18Result(
        bandwidth=bandwidth,
        budget=budget,
        skewed_node=skewed_node,
        straggler_nodes=stragglers,
        throttled_fraction=throttled_fraction,
    )
