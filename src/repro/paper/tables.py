"""Tables 1-4 of the paper.

* Table 1 — survey parameters (static);
* Table 2 — the survey funnel, computed by the pipeline;
* Table 3 — the measurement-campaign summary, computed by running
  (scaled) campaigns;
* Table 4 — the big-data experiment setup (static).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.measurement.campaign import (
    CampaignConfig,
    run_campaign,
    table3_campaigns,
)
from repro.survey.corpus import (
    SURVEY_KEYWORDS,
    SURVEY_VENUES,
    SURVEY_YEARS,
    generate_corpus,
)
from repro.survey.filters import survey_funnel

__all__ = ["table1", "table2", "table3", "table4"]


def table1() -> dict:
    """Survey parameters (Table 1)."""
    return {
        "venues": list(SURVEY_VENUES),
        "keywords": list(SURVEY_KEYWORDS),
        "years": f"{SURVEY_YEARS[0]} - {SURVEY_YEARS[1]}",
    }


def table2(seed: int = 0) -> dict:
    """The survey funnel (Table 2), computed from the corpus.

    Must show 1,867 total articles, 138 keyword matches, and 44 cloud
    articles (15 NSDI, 7 OSDI, 7 SOSP, 15 SC) cited 11,203 times.
    """
    return survey_funnel(generate_corpus(seed=seed)).as_row()


def table3(duration_scale: float = 1.0 / 168.0, seed: int = 0) -> list[dict]:
    """The campaign summary (Table 3), computed by running campaigns.

    ``duration_scale`` defaults to 1/168 (hours instead of weeks) so
    the table regenerates quickly; every configuration must still show
    "exhibits variability = True", as in the paper.
    """
    rows = []
    for config in table3_campaigns(duration_scale=duration_scale, seed=seed):
        result = run_campaign(config)
        rows.append(result.summary_row())
    return rows


def table4() -> list[dict]:
    """The big-data experiment setup (Table 4)."""
    return [
        {
            "workload": "HiBench",
            "size": "BigData",
            "network": "token-bucket (Figure 14 emulator)",
            "software": "Spark 2.4.0 / Hadoop 2.7.3 (modeled)",
            "nodes": 12,
        },
        {
            "workload": "TPC-DS",
            "size": "SF-2000",
            "network": "token-bucket (Figure 14 emulator)",
            "software": "Spark 2.4.0 / Hadoop 2.7.3 (modeled)",
            "nodes": 12,
        },
    ]
