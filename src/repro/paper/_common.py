"""Shared helpers for the figure reproductions."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.cloud.providers import Ec2Provider, GceProvider, HpcCloudProvider
from repro.netmodel.base import LinkModel
from repro.netmodel.distributions import QuantileDistribution
from repro.netmodel.stochastic import UniformQuantileSamplingModel
from repro.netmodel.token_bucket import TokenBucketModel, TokenBucketParams
from repro.runtime.campaign import CampaignRunner
from repro.runtime.cell import Cell
from repro.runtime.executors import ProcessPoolExecutor, SerialExecutor
from repro.simulator.cluster import Cluster

__all__ = [
    "C5_XLARGE_BUCKET",
    "token_bucket_cluster",
    "ballani_cluster",
    "gce_cluster",
    "hpccloud_cluster",
    "run_replay_cells",
]


def run_replay_cells(
    fn_ref: str, payloads: Sequence[dict], workers: int = 1
) -> list:
    """Run a figure's replay sweep through the :mod:`repro.runtime` layer.

    ``fn_ref`` names a module-level cell function (``"module:callable"``)
    and each payload fully determines one sweep cell (budgets, seeds,
    repetition counts); results come back in payload order.  Because
    every cell seeds its own generator from the payload, ``workers``
    changes only the wall clock, never the numbers — the same contract
    ``--seed`` gives the CLI everywhere else.  Payloads must be
    distinct (they are content-hashed into cell keys).
    """
    cells = [Cell(fn=fn_ref, payload=payload) for payload in payloads]
    executor = SerialExecutor() if workers <= 1 else ProcessPoolExecutor(workers)
    outcome = CampaignRunner(cells, executor=executor).run()
    return [outcome.results[cell.key] for cell in cells]

#: The c5.xlarge shaper constants used throughout Section 4's
#: emulation (high 10 Gbps, low 1 Gbps, ~1 Gbit/s replenish).
C5_XLARGE_BUCKET = TokenBucketParams(
    peak_gbps=10.0,
    capped_gbps=1.0,
    replenish_gbps=0.95,
    capacity_gbit=5_400.0,
)


def token_bucket_cluster(
    budget_gbit: float,
    n_nodes: int = 12,
    params: TokenBucketParams = C5_XLARGE_BUCKET,
    slots: int = 4,
) -> Cluster:
    """The Section 4 testbed: per-node c5.xlarge-style token buckets."""

    def factory(node: int) -> LinkModel:
        return TokenBucketModel(params.with_budget(budget_gbit))

    return Cluster.emulation_testbed(n_nodes, factory, slots=slots)


def ballani_cluster(
    distribution: QuantileDistribution,
    sample_interval_s: float = 5.0,
    n_nodes: int = 16,
    seed: int = 0,
    slots: int = 4,
) -> Cluster:
    """The Section 2.1 emulation: 16 machines, per-node bandwidth
    redrawn from a Ballani distribution every ``sample_interval_s``."""

    def factory(node: int) -> LinkModel:
        return UniformQuantileSamplingModel(
            distribution, interval_s=sample_interval_s, seed=seed * 1_000 + node
        )

    return Cluster.emulation_testbed(n_nodes, factory, slots=slots)


def gce_cluster(
    cores: int = 8, n_nodes: int = 12, seed: int = 0, slots: int = 4
) -> Cluster:
    """A cluster of GCE instances (per-core QoS egress models)."""
    provider = GceProvider()
    instance = f"gce-{cores}core"

    def factory(node: int) -> LinkModel:
        rng = np.random.default_rng(seed * 1_000 + node)
        return provider.link_model(instance, rng)

    return Cluster.emulation_testbed(n_nodes, factory, slots=slots)


def hpccloud_cluster(
    cores: int = 8, n_nodes: int = 12, seed: int = 0, slots: int = 4
) -> Cluster:
    """A cluster of HPCCloud nodes (AR(1) contention egress models)."""
    provider = HpcCloudProvider()
    instance = f"hpccloud-{cores}core"

    def factory(node: int) -> LinkModel:
        rng = np.random.default_rng(seed * 1_000 + node)
        return provider.link_model(instance, rng)

    return Cluster.emulation_testbed(n_nodes, factory, slots=slots)
