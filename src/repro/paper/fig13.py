"""Figure 13: CONFIRM analysis — how many repetitions are needed?

K-Means run repeatedly on Google Cloud and TPC-DS Q65 on HPCCloud
(fresh VMs per repetition, so variability is the stochastic kind);
the CONFIRM curves show the 95 % nonparametric CI of the median as
repetitions accumulate, against 1 % error bounds.

Claims the output must satisfy (Section 4.1):

* CIs tighten as repetitions accumulate (stochastic variability is
  tameable with enough repetitions, F4.1);
* reaching 1 %-of-median bounds takes tens of repetitions — far more
  than the 3-10 found in the literature (the paper reports 70+).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.runner import SimulatorExperiment
from repro.paper._common import gce_cluster, hpccloud_cluster
from repro.stats.confirm import ConfirmCurve, confirm_curve
from repro.workloads.hibench import build_kmeans
from repro.workloads.tpcds import tpcds_job

__all__ = ["ConfirmPanel", "Figure13Result", "reproduce"]


@dataclass
class ConfirmPanel:
    """One panel: samples, the CONFIRM curve, repetitions needed."""

    title: str
    samples: np.ndarray
    curve: ConfirmCurve
    error_bound: float

    @property
    def repetitions_needed(self) -> Optional[int]:
        """First n where the CI fits the error bound."""
        return self.curve.first_n_within(self.error_bound)

    def summary(self) -> dict:
        """Printable row."""
        final = self.curve.final_ci() if len(self.curve) else None
        return {
            "panel": self.title,
            "repetitions_run": int(self.samples.size),
            "median_s": round(float(np.median(self.samples)), 1),
            "final_ci": (
                (round(final.low, 1), round(final.high, 1)) if final else None
            ),
            "reps_needed_for_bound": self.repetitions_needed,
            "ci_widening": self.curve.widening_detected(),
        }


@dataclass
class Figure13Result:
    """Both panels of Figure 13."""

    kmeans_gce: ConfirmPanel
    q65_hpccloud: ConfirmPanel

    def rows(self) -> list[dict]:
        """Printable rows."""
        return [self.kmeans_gce.summary(), self.q65_hpccloud.summary()]


def _collect(experiment: SimulatorExperiment, n: int) -> np.ndarray:
    samples = np.empty(n)
    for i in range(n):
        if i > 0:
            experiment.reset()
        samples[i] = experiment.measure()
    return samples


def reproduce(
    repetitions: int = 100, error_bound: float = 0.01, seed: int = 0
) -> Figure13Result:
    """Run both panels with fresh-VM repetitions."""
    if repetitions < 10:
        raise ValueError("CONFIRM analysis needs a meaningful sample")

    # These experiments ran *directly* on the clouds, so CPU/memory/IO
    # contention contributes run-level variance on top of the network
    # models — run_noise_cov makes that explicit (Section 4.1 notes
    # direct runs "cannot differentiate the effects of network
    # variability from other sources of variability").
    km_cluster = gce_cluster(cores=8, n_nodes=12, seed=seed)
    km_job = build_kmeans(n_nodes=12, slots=4, data_scale=4.0, iterations=4)
    km_samples = _collect(
        SimulatorExperiment(
            km_cluster,
            km_job,
            rng=np.random.default_rng(seed),
            run_noise_cov=0.03,
        ),
        repetitions,
    )

    q_cluster = hpccloud_cluster(cores=8, n_nodes=12, seed=seed + 1)
    q_job = tpcds_job(65, n_nodes=12, slots=4)
    q_samples = _collect(
        SimulatorExperiment(
            q_cluster,
            q_job,
            rng=np.random.default_rng(seed + 1),
            run_noise_cov=0.03,
        ),
        repetitions,
    )

    return Figure13Result(
        kmeans_gce=ConfirmPanel(
            title="kmeans-google-cloud",
            samples=km_samples,
            curve=confirm_curve(km_samples),
            error_bound=error_bound,
        ),
        q65_hpccloud=ConfirmPanel(
            title="tpcds-q65-hpccloud",
            samples=q_samples,
            curve=confirm_curve(q_samples),
            error_bound=error_bound,
        ),
    )
