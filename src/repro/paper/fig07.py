"""Figure 7: observed Amazon EC2 latency for 10-second TCP samples.

Top: regular behaviour (sub-millisecond RTTs at ~10 Gbps).  Bottom:
after ~10 minutes of full-speed transfer the shaper engages, bandwidth
drops to ~1 Gbps, and RTTs rise by two orders of magnitude (queueing
in the virtual device driver).

Claims the output must satisfy (Section 3.2): median RTT in the
normal regime is sub-millisecond; in the throttled regime the median
is at least ~30x higher, with excursions toward 20 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.providers import Ec2Provider
from repro.emulator.link import EmulatedLink
from repro.emulator.patterns import FULL_SPEED
from repro.measurement.rtt import LatencyProbe
from repro.trace import RttTrace, TimeSeries

__all__ = ["LatencyPanel", "Figure7Result", "reproduce"]


@dataclass
class LatencyPanel:
    """One half of Figure 7: RTT samples plus the iperf bandwidth."""

    rtt: RttTrace
    bandwidth: TimeSeries

    def summary(self) -> dict:
        """Printable panel summary."""
        return {
            "rtt_samples": len(self.rtt),
            "rtt_median_ms": round(self.rtt.median(), 3),
            "rtt_p99_ms": round(self.rtt.tail_latency_ms(99), 2),
            "bandwidth_mean_gbps": round(self.bandwidth.mean(), 2),
        }


@dataclass
class Figure7Result:
    """Both regimes."""

    normal: LatencyPanel
    throttled: LatencyPanel

    def rows(self) -> list[dict]:
        """One printable row per regime."""
        return [
            {"regime": "normal", **self.normal.summary()},
            {"regime": "throttled", **self.throttled.summary()},
        ]

    @property
    def latency_inflation(self) -> float:
        """Throttled/normal median RTT ratio (the two orders of
        magnitude the paper describes, at the median tens of x)."""
        return self.throttled.rtt.median() / self.normal.rtt.median()


def _panel(
    provider: Ec2Provider,
    throttled: bool,
    seed: int,
    stream_s: float,
    max_samples: int,
) -> LatencyPanel:
    rng = np.random.default_rng(seed)
    model = provider.link_model("c5.xlarge", rng)
    if throttled:
        # Drain the bucket first: ~10 minutes of full-speed transfer.
        EmulatedLink(model, FULL_SPEED).run(
            model.params.time_to_empty_s + 60.0
        )
    link = EmulatedLink(model, FULL_SPEED, report_interval_s=1.0)
    samples = link.run(stream_s)
    bandwidth = TimeSeries(
        np.array([s.t_start for s in samples]),
        np.array([s.bandwidth_gbps for s in samples]),
        label="iperf",
    )
    probe = LatencyProbe(
        provider.latency_model(throttled=throttled),
        packet_bytes=9_000,
        max_samples=max_samples,
    )
    rtt = probe.run(bandwidth.mean(), duration_s=stream_s, rng=rng)
    return LatencyPanel(rtt=rtt, bandwidth=bandwidth)


def reproduce(
    stream_s: float = 10.0, max_samples: int = 400_000, seed: int = 0
) -> Figure7Result:
    """Both panels: a fresh pair and a drained pair."""
    provider = Ec2Provider()
    return Figure7Result(
        normal=_panel(provider, False, seed, stream_s, max_samples),
        throttled=_panel(provider, True, seed + 1, stream_s, max_samples),
    )
