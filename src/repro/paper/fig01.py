"""Figure 1: state-of-practice in big-data articles with cloud experiments.

(a) Percentages of the 44 selected articles reporting averages/medians,
reporting variability, and having no/poor specification; (b) the
repetition-count histogram for the well-specified subset.

Claims the output must satisfy (Section 2):

* over 60 % of articles are severely under-specified;
* of the center-reporting articles, only ~37 % report variability;
* ~76 % of properly-specified studies use <= 15 repetitions;
* reviewer agreement (Cohen's Kappa) above 0.8 in every category.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.survey.corpus import generate_corpus
from repro.survey.filters import SurveyFunnel, survey_funnel, keyword_filter, manual_cloud_filter
from repro.survey.review import Figure1Summary, aggregate_figure1, run_double_review

__all__ = ["Figure1Result", "reproduce"]


@dataclass
class Figure1Result:
    """Everything Figure 1 plots, plus the Table 2 funnel."""

    funnel: SurveyFunnel
    summary: Figure1Summary

    def rows(self) -> list[dict]:
        """Figure 1a as printable rows."""
        s = self.summary
        return [
            {"category": "reporting average or median",
             "pct_articles": round(s.pct_reporting_center, 1)},
            {"category": "reporting variability",
             "pct_articles": round(s.pct_reporting_variability, 1)},
            {"category": "no or poor specification",
             "pct_articles": round(s.pct_underspecified, 1)},
        ]

    def histogram_rows(self) -> list[dict]:
        """Figure 1b as printable rows."""
        return [
            {"repetitions": reps, "pct_articles": round(pct, 1)}
            for reps, pct in self.summary.repetition_histogram_pct.items()
        ]


def reproduce(seed: int = 0) -> Figure1Result:
    """Run the full survey pipeline and aggregate Figure 1."""
    corpus = generate_corpus(seed=seed)
    funnel = survey_funnel(corpus)
    selected = manual_cloud_filter(keyword_filter(corpus))
    outcome = run_double_review(selected)
    summary = aggregate_figure1(selected, outcome)
    return Figure1Result(funnel=funnel, summary=summary)
