"""Figure 5: variable network bandwidth in Google Cloud.

One week per access pattern (full-speed, 10-30, 5-30) on an 8-core
pair (16 Gbps advertised QoS), as 10-second averages plus IQR boxes.

Claims the output must satisfy (Section 3.1):

* overall bandwidth between roughly 13 and 15.8 Gbps;
* longer streams are *more* stable and faster: full-speed has the
  highest median and the narrowest spread, 5-30 has a long lower tail;
* consecutive-sample variability for 5-30 can reach ~114 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.providers import GceProvider
from repro.emulator.patterns import FIVE_THIRTY, FULL_SPEED, TEN_THIRTY
from repro.measurement.capture import RetransmissionModel
from repro.measurement.iperf import BandwidthProbe
from repro.trace import BandwidthTrace, BoxSummary
from repro.units import SECONDS_PER_WEEK

__all__ = ["Figure5Result", "reproduce"]

_PATTERNS = (FULL_SPEED, TEN_THIRTY, FIVE_THIRTY)


@dataclass
class Figure5Result:
    """Per-pattern traces and boxes."""

    traces: dict[str, BandwidthTrace]
    boxes: dict[str, BoxSummary]

    def rows(self) -> list[dict]:
        """One printable row per pattern."""
        out = []
        for name, box in self.boxes.items():
            trace = self.traces[name]
            changes = trace.consecutive_relative_change()
            out.append(
                {
                    "pattern": name,
                    "samples": len(trace),
                    **{k: round(v, 2) for k, v in box.as_dict().items()},
                    "max_consecutive_change_pct": round(
                        100.0 * float(changes.max()), 1
                    )
                    if changes.size
                    else 0.0,
                }
            )
        return out


def reproduce(
    duration_s: float = SECONDS_PER_WEEK, seed: int = 0
) -> Figure5Result:
    """Measure a GCE 8-core pair under all three patterns."""
    provider = GceProvider()
    rng = np.random.default_rng(seed)
    retrans = RetransmissionModel(
        rate=provider.retransmission_rate(131_072), dispersion=1.15
    )
    traces: dict[str, BandwidthTrace] = {}
    boxes: dict[str, BoxSummary] = {}
    for pattern in _PATTERNS:
        model = provider.link_model("gce-8core", rng)
        probe = BandwidthProbe(model, pattern, retransmissions=retrans)
        trace = probe.run(duration_s, rng=rng, label=f"gce/{pattern.name}")
        traces[pattern.name] = trace
        boxes[pattern.name] = trace.box_summary()
    return Figure5Result(traces=traces, boxes=boxes)
