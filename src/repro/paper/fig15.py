"""Figure 15: Terasort traffic on a token-bucket network, by budget.

Five consecutive Terasort runs per initial budget (5000, 1000, 100,
10 Gbit) on the 12-node emulated cluster; each panel shows one node's
link utilization (left axis) against its bucket budget (right axis).

Claims the output must satisfy (Section 4.2):

* with large budgets (1000, 5000) the node transmits at the 10 Gbps
  link capacity throughout; budgets visibly drain during shuffles and
  refill between them;
* with small budgets (10, 100) the node spends most of the shuffle at
  the capped 1 Gbps rate, and bandwidth varies run to run — "much more
  variability for budgets in {10, 100}".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.runner import SimulatorExperiment
from repro.paper._common import run_replay_cells, token_bucket_cluster
from repro.trace import TimeSeries, concat_series
from repro.workloads.hibench import build_terasort

__all__ = ["BudgetPanel", "Figure15Result", "reproduce", "DEFAULT_BUDGETS"]

DEFAULT_BUDGETS: tuple[float, ...] = (5_000.0, 1_000.0, 100.0, 10.0)


@dataclass
class BudgetPanel:
    """One budget's panel: node-0 utilization and budget over 5 runs."""

    budget_gbit: float
    bandwidth: TimeSeries
    budget: TimeSeries
    runtimes_s: list[float]

    def summary(self) -> dict:
        """Printable row."""
        values = self.bandwidth.values
        transmitting = values > 0.05
        if np.any(transmitting):
            low_share = float(
                np.mean(values[transmitting] <= 1.2)
            )
        else:
            low_share = 0.0
        return {
            "initial_budget_gbit": self.budget_gbit,
            "runs": len(self.runtimes_s),
            "mean_runtime_s": round(float(np.mean(self.runtimes_s)), 1),
            "runtime_spread_s": round(
                float(np.max(self.runtimes_s) - np.min(self.runtimes_s)), 1
            ),
            "mean_bandwidth_gbps": round(self.bandwidth.mean(), 2),
            #: Share of *transmitting* samples pinned at the capped rate.
            "transmit_at_low_rate_pct": round(100.0 * low_share, 1),
            "min_budget_gbit": round(float(self.budget.values.min()), 1),
        }


@dataclass
class Figure15Result:
    """All four budget panels."""

    panels: dict[float, BudgetPanel]

    def rows(self) -> list[dict]:
        """One printable row per budget."""
        return [self.panels[b].summary() for b in sorted(self.panels, reverse=True)]

    def small_budgets_more_variable(self) -> bool:
        """The figure's headline: {10,100} vary more than {1000,5000}."""
        small = [
            self.panels[b].summary()["runtime_spread_s"]
            for b in self.panels
            if b <= 100.0
        ]
        large = [
            self.panels[b].summary()["runtime_spread_s"]
            for b in self.panels
            if b >= 1_000.0
        ]
        return min(small) >= max(large)


def _budget_cell(payload: dict) -> BudgetPanel:
    """Runtime cell: one budget's consecutive-run panel."""
    budget = float(payload["budget_gbit"])
    node = int(payload["node"])
    cluster = token_bucket_cluster(budget)
    experiment = SimulatorExperiment(
        cluster,
        build_terasort(n_nodes=12, slots=4),
        rng=np.random.default_rng(payload["rng_seed"]),
        budget_gbit=budget,
    )
    bandwidth_parts: list[TimeSeries] = []
    budget_parts: list[TimeSeries] = []
    runtimes: list[float] = []
    offset = 0.0
    for _ in range(payload["runs"]):
        result = experiment.engine.run(
            experiment.job, fabric=experiment.fabric
        )
        runtimes.append(result.runtime_s)
        bw = result.node_bandwidth_series(node)
        bd = result.node_budget_series(node)
        bandwidth_parts.append(
            TimeSeries(bw.times + offset, bw.values, label=bw.label)
        )
        budget_parts.append(
            TimeSeries(bd.times + offset, bd.values, label=bd.label)
        )
        offset += result.runtime_s
    return BudgetPanel(
        budget_gbit=budget,
        bandwidth=concat_series(bandwidth_parts, label=f"node{node}-bw"),
        budget=concat_series(budget_parts, label=f"node{node}-budget"),
        runtimes_s=runtimes,
    )


def reproduce(
    budgets: tuple[float, ...] = DEFAULT_BUDGETS,
    consecutive_runs: int = 5,
    node: int = 0,
    seed: int = 0,
    workers: int = 1,
) -> Figure15Result:
    """Run the consecutive-Terasort traffic study per budget."""
    if consecutive_runs < 1:
        raise ValueError("need at least one run")
    payloads = [
        {
            "budget_gbit": float(budget),
            "runs": int(consecutive_runs),
            "node": int(node),
            "rng_seed": seed,
        }
        for budget in budgets
    ]
    panels_list = run_replay_cells(
        "repro.paper.fig15:_budget_cell", payloads, workers=workers
    )
    panels = {
        payload["budget_gbit"]: panel
        for payload, panel in zip(payloads, panels_list)
    }
    return Figure15Result(panels=panels)
