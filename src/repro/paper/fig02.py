"""Figure 2: bandwidth distributions for eight real-world clouds.

Box-and-whiskers (1st/25th/50th/75th/99th percentiles) of the Ballani
et al. distributions, in Mb/s as the paper plots them.

Claims the output must satisfy: eight clouds spanning roughly
0-1000 Mb/s, with clouds F and G showing the widest relative spread
(the basis for the fine sampling rates used in Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.ballani import BALLANI_CLOUDS, CLOUD_LABELS
from repro.trace import BoxSummary
from repro.units import gbps_to_mbps

__all__ = ["Figure2Result", "reproduce"]


@dataclass
class Figure2Result:
    """Per-cloud box summaries in Mb/s."""

    boxes: dict[str, BoxSummary]

    def rows(self) -> list[dict]:
        """One printable row per cloud."""
        return [
            {
                "cloud": label,
                **{k: round(v, 1) for k, v in self.boxes[label].as_dict().items()},
            }
            for label in CLOUD_LABELS
        ]


def reproduce() -> Figure2Result:
    """Project the A-H quantile distributions back to box summaries."""
    boxes = {}
    for label in CLOUD_LABELS:
        box = BALLANI_CLOUDS[label].box_summary()
        boxes[label] = BoxSummary(
            p01=gbps_to_mbps(box.p01),
            p25=gbps_to_mbps(box.p25),
            p50=gbps_to_mbps(box.p50),
            p75=gbps_to_mbps(box.p75),
            p99=gbps_to_mbps(box.p99),
            p999=gbps_to_mbps(box.p999),
        )
    return Figure2Result(boxes=boxes)
