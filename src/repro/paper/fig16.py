"""Figure 16: HiBench runtime and variability under token budgets.

Ten fresh-VM runs of each HiBench application at each initial budget
in {10, 100, 1000, 5000} Gbit: (a) average runtime per budget, (b) the
per-application distribution over all budgets (IQR box, 1st/99th
whiskers).

Claims the output must satisfy (Section 4.2 / F4.2):

* network-intensive applications (TS, WC) slow down 25 %+ as budgets
  shrink; compute-bound ones (KM, BS) barely move;
* variability (box width) over budgets is largest for TS and WC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.runner import SimulatorExperiment
from repro.paper._common import run_replay_cells, token_bucket_cluster
from repro.trace import BoxSummary, summarize_box
from repro.workloads.hibench import HIBENCH_CODES, hibench_job

__all__ = ["Figure16Result", "reproduce", "DEFAULT_BUDGETS"]

DEFAULT_BUDGETS: tuple[float, ...] = (5_000.0, 1_000.0, 100.0, 10.0)

#: Figure 16's application order (left panel legend).
APP_CODES: tuple[str, ...] = ("TS", "WC", "BS", "KM", "S")


@dataclass
class Figure16Result:
    """Runtimes per (application, budget)."""

    #: ``{code: {budget: runtimes array}}``
    runtimes: dict[str, dict[float, np.ndarray]]

    def average_rows(self) -> list[dict]:
        """Figure 16a: average runtime per app and budget."""
        out = []
        for code, by_budget in self.runtimes.items():
            row: dict = {"app": code}
            for budget in sorted(by_budget, reverse=True):
                row[f"budget_{int(budget)}"] = round(
                    float(by_budget[budget].mean()), 1
                )
            out.append(row)
        return out

    def variability_boxes(self) -> dict[str, BoxSummary]:
        """Figure 16b: per-app distribution pooled over budgets."""
        return {
            code: summarize_box(np.concatenate(list(by_budget.values())))
            for code, by_budget in self.runtimes.items()
        }

    def budget_impact(self, code: str) -> float:
        """Relative slowdown of the smallest vs largest budget."""
        by_budget = self.runtimes[code]
        large = float(by_budget[max(by_budget)].mean())
        small = float(by_budget[min(by_budget)].mean())
        return small / large - 1.0

    def network_apps_most_affected(self) -> bool:
        """TS and WC must lead the budget-impact ordering."""
        impacts = {code: self.budget_impact(code) for code in self.runtimes}
        ranked = sorted(impacts, key=impacts.get, reverse=True)
        return set(ranked[:2]) == {"TS", "WC"}


def _budget_cell(payload: dict) -> np.ndarray:
    """Runtime cell: one (application, budget) configuration's samples.

    Pure in its payload — the experiment RNG seeds from it directly —
    so the sweep parallelizes across workers without changing a digit.
    """
    budget = float(payload["budget_gbit"])
    job = hibench_job(payload["app"], n_nodes=12, slots=4)
    cluster = token_bucket_cluster(budget)
    experiment = SimulatorExperiment(
        cluster,
        job,
        rng=np.random.default_rng(payload["rng_seed"]),
        budget_gbit=budget,
    )
    samples = np.empty(payload["runs"])
    for i in range(payload["runs"]):
        if i > 0:
            experiment.reset()
        samples[i] = experiment.measure()
    return samples


def reproduce(
    budgets: tuple[float, ...] = DEFAULT_BUDGETS,
    runs_per_config: int = 10,
    apps: tuple[str, ...] = APP_CODES,
    seed: int = 0,
    workers: int = 1,
) -> Figure16Result:
    """Run the full budget sweep for the requested applications."""
    if runs_per_config < 1:
        raise ValueError("need at least one run per configuration")
    payloads = [
        {
            "app": code,
            "budget_gbit": float(budget),
            "runs": int(runs_per_config),
            "rng_seed": seed + 97 * a_index + b_index,
        }
        for a_index, code in enumerate(apps)
        for b_index, budget in enumerate(budgets)
    ]
    samples = run_replay_cells(
        "repro.paper.fig16:_budget_cell", payloads, workers=workers
    )
    runtimes: dict[str, dict[float, np.ndarray]] = {code: {} for code in apps}
    for payload, cell_samples in zip(payloads, samples):
        runtimes[payload["app"]][payload["budget_gbit"]] = cell_samples
    return Figure16Result(runtimes=runtimes)
