"""Figure 4: network bandwidth variability in HPCCloud.

One week of continuous (full-speed) transfer between an 8-core VM
pair, reported as 10-second averages, plus the IQR box with 1st/99th
percentile whiskers.

Claims the output must satisfy (Section 3.1): bandwidth ranges roughly
7.7-10.4 Gbps with high measurement-to-measurement variability (up to
~33 % between consecutive 10-second samples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.providers import HpcCloudProvider
from repro.emulator.patterns import FULL_SPEED
from repro.measurement.iperf import BandwidthProbe
from repro.trace import BandwidthTrace, BoxSummary
from repro.units import SECONDS_PER_WEEK

__all__ = ["Figure4Result", "reproduce"]


@dataclass
class Figure4Result:
    """The timeseries panel and box panel of Figure 4."""

    trace: BandwidthTrace
    box: BoxSummary
    max_consecutive_change: float

    def rows(self) -> list[dict]:
        """Summary rows for the harness."""
        return [
            {
                "samples": len(self.trace),
                "min_gbps": round(float(self.trace.values.min()), 2),
                "max_gbps": round(float(self.trace.values.max()), 2),
                **{k: round(v, 2) for k, v in self.box.as_dict().items()},
                "max_consecutive_change_pct": round(
                    100.0 * self.max_consecutive_change, 1
                ),
            }
        ]


def reproduce(
    duration_s: float = SECONDS_PER_WEEK, seed: int = 0
) -> Figure4Result:
    """Measure one HPCCloud 8-core pair at full speed."""
    provider = HpcCloudProvider()
    rng = np.random.default_rng(seed)
    model = provider.link_model("hpccloud-8core", rng)
    probe = BandwidthProbe(model, FULL_SPEED)
    trace = probe.run(duration_s, rng=rng, label="hpccloud/full-speed")
    changes = trace.consecutive_relative_change()
    return Figure4Result(
        trace=trace,
        box=trace.box_summary(),
        max_consecutive_change=float(changes.max()) if changes.size else 0.0,
    )
