"""Figure 12: latency and bandwidth as functions of the write() size.

EC2 (c5.xlarge, 9000-byte MTU) against GCE (4-core, TSO up to 64 KB),
swept across application write sizes.

Claims the output must satisfy (Section 3.3):

* on EC2 the "packet" tops out at 9 KB, so latency flattens beyond it
  and stays low;
* on GCE, packets grow to 64 KB: perceived latency climbs toward
  ~10 ms and retransmissions climb steeply (near-zero at 9 KB writes,
  ~2-3 % at the 128 KB default);
* tiny writes are throughput-limited by per-write overhead on both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netmodel.nic import EC2_NIC, GCE_NIC, VirtualNic, WriteSizeEffect

__all__ = ["Figure12Result", "reproduce", "DEFAULT_WRITE_SIZES"]

DEFAULT_WRITE_SIZES: tuple[int, ...] = (
    1_024, 2_048, 4_096, 9_000, 16_384, 32_768, 65_536, 131_072, 262_144
)


@dataclass
class Figure12Result:
    """Write-size sweeps for both NICs."""

    ec2: list[WriteSizeEffect]
    gce: list[WriteSizeEffect]

    def rows(self) -> list[dict]:
        """One printable row per (cloud, write size)."""
        out = []
        for cloud, sweep in (("ec2", self.ec2), ("gce", self.gce)):
            for effect in sweep:
                out.append(
                    {
                        "cloud": cloud,
                        "write_bytes": effect.write_size_bytes,
                        "packet_bytes": effect.packet_bytes,
                        "mean_rtt_ms": round(effect.mean_rtt_ms, 3),
                        "retrans_rate": round(effect.retransmission_rate, 5),
                        "achieved_gbps": round(effect.achieved_gbps, 2),
                    }
                )
        return out


def reproduce(
    write_sizes: tuple[int, ...] = DEFAULT_WRITE_SIZES, seed: int = 0
) -> Figure12Result:
    """Sweep both virtual NICs across the write sizes."""
    rng = np.random.default_rng(seed)
    return Figure12Result(
        ec2=VirtualNic(EC2_NIC).sweep(list(write_sizes), rng=rng),
        gce=VirtualNic(GCE_NIC).sweep(list(write_sizes), rng=rng),
    )
