"""Figure 3: how credible are experiments with few repetitions?

K-Means (a, medians, 5 s sampling) and TPC-DS Q68 (b, 90th
percentiles, 50 s sampling) run on a 16-machine emulated cluster whose
per-node bandwidth is redrawn uniformly from each Ballani cloud's
distribution.  For every cloud, the 50-run "gold standard" yields a
95 % nonparametric CI; 3- and 10-run estimates are marked accurate
when they fall inside it.

Claims the output must satisfy (Section 2.1):

* a substantial fraction of 3-run medians fall outside the gold CIs
  (6/8 clouds in the paper) and 10-run medians still miss for some
  (3/8);
* tail (90th percentile) estimates are harder than medians — at least
  as many misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cloud.ballani import BALLANI_CLOUDS, CLOUD_LABELS
from repro.core.runner import SimulatorExperiment
from repro.paper._common import ballani_cluster
from repro.stats.quantiles import QuantileCI, quantile_ci
from repro.workloads.hibench import build_kmeans
from repro.workloads.tpcds import tpcds_job

__all__ = ["CloudEstimate", "Figure3Result", "reproduce"]


@dataclass
class CloudEstimate:
    """One cloud's column in Figure 3."""

    cloud: str
    gold_ci: QuantileCI
    estimate_3run: float
    estimate_10run: float

    @property
    def accurate_3run(self) -> bool:
        """Check-mark vs X for the 3-run estimate."""
        return self.gold_ci.contains(self.estimate_3run)

    @property
    def accurate_10run(self) -> bool:
        """Check-mark vs X for the 10-run estimate."""
        return self.gold_ci.contains(self.estimate_10run)


@dataclass
class Figure3Result:
    """Both panels of Figure 3."""

    kmeans: dict[str, CloudEstimate]
    q68_tail: dict[str, CloudEstimate]

    def miss_counts(self) -> dict[str, int]:
        """How many clouds each low-repetition protocol got wrong."""
        return {
            "kmeans_3run_misses": sum(
                1 for e in self.kmeans.values() if not e.accurate_3run
            ),
            "kmeans_10run_misses": sum(
                1 for e in self.kmeans.values() if not e.accurate_10run
            ),
            "q68_3run_misses": sum(
                1 for e in self.q68_tail.values() if not e.accurate_3run
            ),
            "q68_10run_misses": sum(
                1 for e in self.q68_tail.values() if not e.accurate_10run
            ),
        }

    def rows(self) -> list[dict]:
        """Printable per-cloud rows for both panels."""
        out = []
        for label in sorted(self.kmeans):
            km = self.kmeans[label]
            q68 = self.q68_tail[label]
            out.append(
                {
                    "cloud": label,
                    "km_gold_median": round(km.gold_ci.estimate, 1),
                    "km_gold_ci": (round(km.gold_ci.low, 1), round(km.gold_ci.high, 1)),
                    "km_3run": round(km.estimate_3run, 1),
                    "km_3run_ok": km.accurate_3run,
                    "km_10run_ok": km.accurate_10run,
                    "q68_gold_p90": round(q68.gold_ci.estimate, 1),
                    "q68_3run_ok": q68.accurate_3run,
                    "q68_10run_ok": q68.accurate_10run,
                }
            )
        return out


def _collect_runtimes(
    cloud_label: str,
    workload: str,
    n_runs: int,
    sample_interval_s: float,
    seed: int,
) -> np.ndarray:
    distribution = BALLANI_CLOUDS[cloud_label]
    cluster = ballani_cluster(
        distribution,
        sample_interval_s=sample_interval_s,
        seed=seed,
    )
    if workload == "kmeans":
        # On sub-Gbps Ballani-era links even K-Means' per-iteration
        # aggregation is network-visible; the scale is chosen so the
        # network claims a comparable share of the runtime to the
        # paper's HiBench BigData inputs on those clusters.
        job = build_kmeans(n_nodes=16, slots=4, data_scale=8.0, iterations=4)
    else:
        job = tpcds_job(68, n_nodes=16, slots=4, scale_factor=100.0)
    experiment = SimulatorExperiment(
        cluster, job, rng=np.random.default_rng(seed)
    )
    samples = np.empty(n_runs)
    for i in range(n_runs):
        if i > 0:
            experiment.reset()
        samples[i] = experiment.measure()
    return samples


def reproduce(
    n_gold: int = 50,
    clouds: tuple[str, ...] = CLOUD_LABELS,
    seed: int = 0,
) -> Figure3Result:
    """Run the emulation for both panels across the requested clouds."""
    if n_gold < 12:
        raise ValueError("the gold standard needs enough runs for tail CIs")
    kmeans: dict[str, CloudEstimate] = {}
    q68: dict[str, CloudEstimate] = {}
    for index, label in enumerate(clouds):
        km_samples = _collect_runtimes(
            label, "kmeans", n_gold, sample_interval_s=5.0, seed=seed + index
        )
        km_ci = quantile_ci(km_samples, quantile=0.5)
        kmeans[label] = CloudEstimate(
            cloud=label,
            gold_ci=km_ci,
            estimate_3run=float(np.median(km_samples[:3])),
            estimate_10run=float(np.median(km_samples[:10])),
        )

        q_samples = _collect_runtimes(
            label, "q68", n_gold, sample_interval_s=50.0, seed=seed + 100 + index
        )
        q_ci = quantile_ci(q_samples, quantile=0.9)
        if q_ci is None:
            # Not enough runs for a tail CI: fall back to the median CI
            # and record point estimates at the 90th percentile.
            q_ci = quantile_ci(q_samples, quantile=0.5)
        q68[label] = CloudEstimate(
            cloud=label,
            gold_ci=q_ci,
            estimate_3run=float(np.percentile(q_samples[:3], 90)),
            estimate_10run=float(np.percentile(q_samples[:10], 90)),
        )
    return Figure3Result(kmeans=kmeans, q68_tail=q68)
