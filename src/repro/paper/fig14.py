"""Figure 14: validation of the token-bucket emulator against EC2.

The paper compares real Amazon traces (10-30 and 5-30 patterns, bucket
nearly empty) with its ``tc``-based emulation and argues the curves
match: each burst starts at the 10 Gbps QoS, exhausts the replenished
budget after ~3 seconds, and falls to 1 Gbps.

Here the "AWS" reference is the fluid provider model (a sampled
c5.xlarge incarnation) and the "emulation" is the independent
discrete-time shaper of :mod:`repro.emulator.shaper`, both driven by
the same pattern from a near-empty bucket.

Claims the output must satisfy: the two curves agree closely (small
normalized RMSE, matching burst shape), and every burst shows the
high-then-capped two-phase profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.emulator.patterns import FIVE_THIRTY, TEN_THIRTY, TrafficPattern
from repro.emulator.shaper import DiscreteTokenBucket
from repro.netmodel.token_bucket import TokenBucketModel
from repro.paper._common import C5_XLARGE_BUCKET
from repro.trace import TimeSeries

__all__ = ["ValidationPanel", "Figure14Result", "reproduce"]


@dataclass
class ValidationPanel:
    """One pattern's reference-vs-emulation comparison."""

    pattern: str
    reference: TimeSeries
    emulation: TimeSeries

    @property
    def nrmse(self) -> float:
        """RMSE between the curves, normalized by the reference mean."""
        n = min(len(self.reference), len(self.emulation))
        ref = self.reference.values[:n]
        emu = self.emulation.values[:n]
        rmse = float(np.sqrt(np.mean((ref - emu) ** 2)))
        return rmse / float(np.mean(ref))

    def summary(self) -> dict:
        """Printable row."""
        return {
            "pattern": self.pattern,
            "reference_mean_gbps": round(self.reference.mean(), 2),
            "emulation_mean_gbps": round(self.emulation.mean(), 2),
            "nrmse": round(self.nrmse, 3),
        }


@dataclass
class Figure14Result:
    """Both validation panels (10-30 and 5-30)."""

    panels: dict[str, ValidationPanel]

    def rows(self) -> list[dict]:
        """Printable rows."""
        return [panel.summary() for panel in self.panels.values()]

    def emulation_is_high_quality(self, nrmse_bound: float = 0.10) -> bool:
        """The figure's conclusion: the curves are near-identical."""
        return all(panel.nrmse <= nrmse_bound for panel in self.panels.values())


def _run_reference(
    pattern: TrafficPattern, duration_s: float, tick_s: float
) -> TimeSeries:
    model = TokenBucketModel(C5_XLARGE_BUCKET.with_budget(0.0))
    times, values = [], []
    now = 0.0
    for transmitting, phase in pattern.phases(duration_s):
        remaining = phase
        while remaining > 1e-12:
            step = min(tick_s, remaining)
            rate = min(100.0, model.limit()) if transmitting else 0.0
            model.advance(step, rate)
            if transmitting:
                times.append(now)
                values.append(rate)
            now += step
            remaining -= step
    return TimeSeries(np.asarray(times), np.asarray(values), label="aws")


def _run_emulation(
    pattern: TrafficPattern, duration_s: float, tick_s: float
) -> TimeSeries:
    shaper = DiscreteTokenBucket(C5_XLARGE_BUCKET.with_budget(0.0), tick_s=tick_s)
    times, values = [], []
    now = 0.0
    for transmitting, phase in pattern.phases(duration_s):
        remaining = phase
        while remaining > 1e-12:
            step = min(tick_s, remaining)
            offered = 100.0 * step if transmitting else 0.0
            sent = shaper.offer(offered)
            if transmitting:
                times.append(now)
                values.append(sent / step)
            now += step
            remaining -= step
    return TimeSeries(np.asarray(times), np.asarray(values), label="emulation")


def reproduce(duration_s: float = 95.0, tick_s: float = 0.25) -> Figure14Result:
    """Compare the fluid reference against the discrete emulation."""
    panels = {}
    for pattern in (TEN_THIRTY, FIVE_THIRTY):
        panels[pattern.name] = ValidationPanel(
            pattern=pattern.name,
            reference=_run_reference(pattern, duration_s, tick_s),
            emulation=_run_emulation(pattern, duration_s, tick_s),
        )
    return Figure14Result(panels=panels)
