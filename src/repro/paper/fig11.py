"""Figure 11: token-bucket parameters across the EC2 c5.* family.

For each of c5.large, c5.xlarge, c5.2xlarge and c5.4xlarge, fifteen
fresh incarnations are probed with the Section 3.3 methodology (run
iperf until the rate drops and stabilizes): the time to empty the
bucket (box plots), and the high/low bandwidths (bars with whiskers).

Claims the output must satisfy:

* time-to-empty and the low (capped) bandwidth grow with instance
  size;
* parameters are *not* consistent across incarnations of the same
  type (visible box/whisker spread);
* c5.xlarge empties in roughly 10 minutes and drops 10 -> ~1 Gbps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.providers import Ec2Provider
from repro.measurement.fingerprint import identify_token_bucket
from repro.trace import BoxSummary, summarize_box

__all__ = ["InstanceIdentification", "Figure11Result", "reproduce"]

#: The machine types on Figure 11's horizontal axis.
C5_FAMILY: tuple[str, ...] = ("c5.large", "c5.xlarge", "c5.2xlarge", "c5.4xlarge")


@dataclass
class InstanceIdentification:
    """Fifteen identification runs for one instance type."""

    instance: str
    time_to_empty_s: np.ndarray
    high_gbps: np.ndarray
    low_gbps: np.ndarray

    def time_box(self) -> BoxSummary:
        """Box plot of the time-to-empty samples."""
        return summarize_box(self.time_to_empty_s)

    def summary(self) -> dict:
        """Printable row."""
        box = self.time_box()
        return {
            "instance": self.instance,
            "empty_time_median_s": round(box.p50, 0),
            "empty_time_iqr_s": round(box.iqr, 0),
            "high_gbps_mean": round(float(self.high_gbps.mean()), 2),
            "low_gbps_mean": round(float(self.low_gbps.mean()), 2),
        }


@dataclass
class Figure11Result:
    """Identification results per instance type."""

    identifications: dict[str, InstanceIdentification]

    def rows(self) -> list[dict]:
        """One printable row per instance type, in axis order."""
        return [self.identifications[name].summary() for name in C5_FAMILY]

    def monotone_in_size(self) -> bool:
        """Bucket size and low rate grow with the instance type."""
        medians = [
            self.identifications[name].time_box().p50 for name in C5_FAMILY
        ]
        lows = [
            float(self.identifications[name].low_gbps.mean())
            for name in C5_FAMILY
        ]
        return medians == sorted(medians) and lows == sorted(lows)

    def incarnations_inconsistent(self) -> bool:
        """Every type shows nontrivial spread across incarnations."""
        return all(
            ident.time_box().iqr > 0.05 * ident.time_box().p50
            for ident in self.identifications.values()
        )


def reproduce(
    tests_per_type: int = 15,
    era: str = "pre-2019-08",
    seed: int = 0,
) -> Figure11Result:
    """Probe ``tests_per_type`` incarnations of each c5.* type."""
    if tests_per_type < 2:
        raise ValueError("need at least 2 tests per type for spread")
    provider = Ec2Provider(era=era)
    rng = np.random.default_rng(seed)
    identifications: dict[str, InstanceIdentification] = {}
    for instance in C5_FAMILY:
        times, highs, lows = [], [], []
        for _ in range(tests_per_type):
            model = provider.link_model(instance, rng)
            estimate = identify_token_bucket(model, max_duration_s=14_400.0)
            times.append(estimate.time_to_empty_s)
            highs.append(estimate.high_gbps)
            lows.append(estimate.low_gbps)
        identifications[instance] = InstanceIdentification(
            instance=instance,
            time_to_empty_s=np.asarray(times),
            high_gbps=np.asarray(highs),
            low_gbps=np.asarray(lows),
        )
    return Figure11Result(identifications=identifications)
