"""Figure 17: TPC-DS budget sensitivity per query.

Ten fresh-VM runs of each of the 21 queries at each initial budget:
(a) average runtime slowdown per query at budgets {10, 100, 1000}
relative to the 5000-Gbit budget; (b) per-query distribution over all
budgets (IQR box, 1st/99th whiskers).

Claims the output must satisfy (Section 4.2):

* for all queries, larger budgets lead to better (or equal)
  performance;
* queries with higher network demands show more sensitivity — the
  heavy joins (Q19, Q46, Q59, Q65, Q68) lead the slowdown ranking
  while Q82 stays flat;
* slowdowns reach roughly 2-3x at budget 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.runner import SimulatorExperiment
from repro.paper._common import run_replay_cells, token_bucket_cluster
from repro.trace import BoxSummary, summarize_box
from repro.workloads.tpcds import TPCDS_QUERIES, tpcds_catalog, tpcds_job

__all__ = ["Figure17Result", "reproduce", "DEFAULT_BUDGETS"]

DEFAULT_BUDGETS: tuple[float, ...] = (5_000.0, 1_000.0, 100.0, 10.0)


@dataclass
class Figure17Result:
    """Runtimes per (query, budget)."""

    #: ``{query: {budget: runtimes array}}``
    runtimes: dict[int, dict[float, np.ndarray]]
    baseline_budget: float = 5_000.0

    def slowdown(self, query: int, budget: float) -> float:
        """Mean-runtime slowdown of ``budget`` vs the baseline budget."""
        by_budget = self.runtimes[query]
        return float(by_budget[budget].mean() / by_budget[self.baseline_budget].mean())

    def slowdown_rows(self) -> list[dict]:
        """Figure 17a: slowdown per query per budget."""
        out = []
        for query in self.runtimes:
            row: dict = {"query": query}
            for budget in sorted(self.runtimes[query], reverse=True):
                if budget == self.baseline_budget:
                    continue
                row[f"slowdown_b{int(budget)}"] = round(
                    self.slowdown(query, budget), 2
                )
            out.append(row)
        return out

    def variability_boxes(self) -> dict[int, BoxSummary]:
        """Figure 17b: per-query distribution pooled over budgets."""
        return {
            query: summarize_box(np.concatenate(list(by_budget.values())))
            for query, by_budget in self.runtimes.items()
        }

    def all_queries_monotone_in_budget(self, tolerance: float = 0.05) -> bool:
        """Larger budgets never meaningfully hurt."""
        for query, by_budget in self.runtimes.items():
            budgets = sorted(by_budget, reverse=True)  # large -> small
            means = [float(by_budget[b].mean()) for b in budgets]
            for larger, smaller in zip(means, means[1:]):
                if smaller < larger * (1.0 - tolerance):
                    return False
        return True

    def heavy_queries_lead(self) -> bool:
        """The heavy class dominates the slowdown ranking at budget 10."""
        catalog = tpcds_catalog()
        slowdowns = {
            q: self.slowdown(q, min(self.runtimes[q]))
            for q in self.runtimes
        }
        ranked = sorted(slowdowns, key=slowdowns.get, reverse=True)
        heavy = {q for q, p in catalog.items() if p.network_class == "heavy"}
        return set(ranked[: len(heavy)]) == heavy


def _budget_cell(payload: dict) -> np.ndarray:
    """Runtime cell: one (query, budget) configuration's samples."""
    budget = float(payload["budget_gbit"])
    job = tpcds_job(payload["query"], n_nodes=12, slots=4)
    cluster = token_bucket_cluster(budget)
    experiment = SimulatorExperiment(
        cluster,
        job,
        rng=np.random.default_rng(payload["rng_seed"]),
        budget_gbit=budget,
    )
    samples = np.empty(payload["runs"])
    for i in range(payload["runs"]):
        if i > 0:
            experiment.reset()
        samples[i] = experiment.measure()
    return samples


def reproduce(
    budgets: tuple[float, ...] = DEFAULT_BUDGETS,
    runs_per_config: int = 10,
    queries: tuple[int, ...] = TPCDS_QUERIES,
    seed: int = 0,
    workers: int = 1,
) -> Figure17Result:
    """Run the per-query budget sweep."""
    if runs_per_config < 1:
        raise ValueError("need at least one run per configuration")
    payloads = [
        {
            "query": int(query),
            "budget_gbit": float(budget),
            "runs": int(runs_per_config),
            "rng_seed": seed + 131 * q_index + b_index,
        }
        for q_index, query in enumerate(queries)
        for b_index, budget in enumerate(budgets)
    ]
    samples = run_replay_cells(
        "repro.paper.fig17:_budget_cell", payloads, workers=workers
    )
    runtimes: dict[int, dict[float, np.ndarray]] = {
        int(query): {} for query in queries
    }
    for payload, cell_samples in zip(payloads, samples):
        runtimes[payload["query"]][payload["budget_gbit"]] = cell_samples
    return Figure17Result(runtimes=runtimes)
