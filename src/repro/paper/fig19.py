"""Figure 19: repeatable experiments and token buckets.

Repetitions of two TPC-DS queries run on fresh machines, but with the
initial token budget *reduced over time* (5000, 2500, 1000, 100, 10 —
ten repetitions each), modeling back-to-back experimentation in the
same VMs.  Median estimates and 95 % nonparametric CIs are computed
over the *cumulative* measurement sequence, with 10 % error bounds.

Claims the output must satisfy (Section 4.2 / F4.4):

* Q82 is budget-agnostic: its CI tightens as repetitions accumulate,
  as classic analysis expects;
* Q65 is budget-dependent: the cumulative median drifts upward and
  the CI *widens* with more repetitions — the iid assumption is
  broken;
* across the whole TPC-DS catalog, a large majority (~80 % in the
  paper) of queries end up with median estimates more than 10 % off
  their fresh-budget medians.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.runner import SimulatorExperiment
from repro.paper._common import token_bucket_cluster
from repro.stats.confirm import ConfirmCurve, confirm_curve
from repro.workloads.tpcds import TPCDS_QUERIES, tpcds_job

__all__ = ["QueryDepletionPanel", "Figure19Result", "reproduce", "DEFAULT_LADDER"]

#: The budget ladder: fresh -> depleted, ten repetitions each in the
#: paper's protocol.
DEFAULT_LADDER: tuple[float, ...] = (5_000.0, 2_500.0, 1_000.0, 100.0, 10.0)


@dataclass
class QueryDepletionPanel:
    """One query's cumulative-measurement panel."""

    query: int
    #: Runtimes in collection order (budgets decreasing along the way).
    samples: np.ndarray
    #: Budget applied to each repetition, aligned with ``samples``.
    budgets: np.ndarray
    curve: ConfirmCurve
    error_bound: float

    @property
    def fresh_median(self) -> float:
        """Median at the largest (fresh) budget."""
        top = self.budgets == self.budgets.max()
        return float(np.median(self.samples[top]))

    @property
    def depleted_median(self) -> float:
        """True median at the final (depleted) budget."""
        bottom = self.budgets == self.budgets.min()
        return float(np.median(self.samples[bottom]))

    @property
    def final_median(self) -> float:
        """Cumulative median estimate over the whole sequence."""
        return float(np.median(self.samples))

    @property
    def median_estimate_poor(self) -> bool:
        """The cumulative estimate is >10 % wrong at full depletion.

        "Most produce median estimates that are more than 10% incorrect
        by the time we fully deplete the budget": the estimate the
        experimenter holds (the cumulative median, dominated by early
        fresh-budget runs) no longer describes what the system actually
        delivers once the hidden budget is gone.
        """
        depleted = self.depleted_median
        return abs(self.final_median - depleted) / depleted > self.error_bound

    @property
    def ci_widened(self) -> bool:
        """Final CI is wider than the fresh-phase CI (non-iid signature).

        Under iid sampling the CI narrows with more repetitions; budget
        carry-over makes it *widen* instead (the paper: "the CIs widen
        with more repetitions, which is unexpected for this type of
        analysis").
        """
        n_fresh = int(np.sum(self.budgets == self.budgets.max()))
        widths = self.curve.ci_high - self.curve.ci_low
        if widths.size == 0:
            return False
        i0 = int(np.searchsorted(self.curve.ns, n_fresh))
        i0 = min(i0, widths.size - 1)
        return float(widths[-1]) > float(widths[i0]) * 1.1

    def summary(self) -> dict:
        """Printable row."""
        return {
            "query": self.query,
            "fresh_median_s": round(self.fresh_median, 1),
            "depleted_median_s": round(self.depleted_median, 1),
            "cumulative_median_s": round(self.final_median, 1),
            "median_poor": self.median_estimate_poor,
            "ci_widened": self.ci_widened,
        }


@dataclass
class Figure19Result:
    """The two headline panels plus the catalog-wide poor-median scan."""

    q82: QueryDepletionPanel
    q65: QueryDepletionPanel
    all_queries: dict[int, QueryDepletionPanel]

    def rows(self) -> list[dict]:
        """Printable rows for the headline panels."""
        return [self.q82.summary(), self.q65.summary()]

    @property
    def poor_median_fraction(self) -> float:
        """Share of queries with poor median estimates (paper: ~80 %)."""
        if not self.all_queries:
            return 0.0
        poor = sum(1 for p in self.all_queries.values() if p.median_estimate_poor)
        return poor / len(self.all_queries)


def _run_ladder(
    query: int,
    ladder: tuple[float, ...],
    reps_per_budget: int,
    error_bound: float,
    seed: int,
) -> QueryDepletionPanel:
    cluster = token_bucket_cluster(ladder[0])
    experiment = SimulatorExperiment(
        cluster,
        tpcds_job(query, n_nodes=12, slots=4),
        rng=np.random.default_rng(seed),
        budget_gbit=ladder[0],
    )
    samples: list[float] = []
    budgets: list[float] = []
    for budget in ladder:
        for _ in range(reps_per_budget):
            experiment.reset()
            experiment.set_budget(budget)
            samples.append(experiment.measure())
            budgets.append(budget)
    arr = np.asarray(samples)
    return QueryDepletionPanel(
        query=query,
        samples=arr,
        budgets=np.asarray(budgets),
        curve=confirm_curve(arr),
        error_bound=error_bound,
    )


def reproduce(
    ladder: tuple[float, ...] = DEFAULT_LADDER,
    reps_per_budget: int = 10,
    scan_reps_per_budget: int = 3,
    queries: tuple[int, ...] = TPCDS_QUERIES,
    error_bound: float = 0.10,
    seed: int = 0,
) -> Figure19Result:
    """Run the depletion ladder for the panels and the full scan."""
    if reps_per_budget < 2 or scan_reps_per_budget < 1:
        raise ValueError("repetition counts too small")
    q82 = _run_ladder(82, ladder, reps_per_budget, error_bound, seed)
    q65 = _run_ladder(65, ladder, reps_per_budget, error_bound, seed + 1)
    all_queries: dict[int, QueryDepletionPanel] = {}
    for index, query in enumerate(queries):
        all_queries[query] = _run_ladder(
            query, ladder, scan_reps_per_budget, error_bound, seed + 10 + index
        )
    return Figure19Result(q82=q82, q65=q65, all_queries=all_queries)
