"""repro — Is Big Data Performance Reproducible in Modern Cloud Networks?

A full reproduction of the NSDI 2020 measurement/methodology study by
Uta et al., packaged as a reusable library:

* :mod:`repro.netmodel` — generative models of cloud network behaviour
  (EC2 token buckets, GCE per-core QoS, private-cloud contention,
  virtual-NIC effects);
* :mod:`repro.cloud` — provider profiles and instance catalogs;
* :mod:`repro.emulator` — the ``tc``-style bandwidth emulation rig;
* :mod:`repro.measurement` — iperf/RTT probes, week-long campaigns,
  and baseline fingerprinting;
* :mod:`repro.simulator` — a discrete-event Spark-like cluster engine
  with single-job and multi-tenant job-stream execution under five
  slot schedulers (FIFO, fair, checkpoint-preempting fair, SRPT, and
  deadline/EDF with per-tenant slowdown and miss telemetry), plus a
  batched multi-stream runner (:mod:`repro.simulator.multistream`)
  that advances many independent cells through one concatenated
  shaper super-fleet in lockstep;
* :mod:`repro.serving` — a request-serving layer on the same event
  core and fabric: microservice call trees
  (:class:`~repro.serving.topology.ServiceTopology`), lazy open-loop
  arrival processes at production rates (Poisson, diurnal, flash
  crowd) plus closed-loop user pools with think time, per-hop
  request/response flows through the shaped fabric, and SLO gating —
  sliding-window p50/p99/p99.9 targets over streaming quantile
  telemetry, with violation windows, ``repro_slo_*`` gauges, and
  content-hashed ``srv-…`` campaign cells;
* :mod:`repro.workloads` — HiBench and TPC-DS workload models;
* :mod:`repro.scenarios` — randomized workload generation (random DAG
  jobs, TPC-H-like templates, Poisson/burst arrivals, synthesized
  per-job deadlines) and parallel, cache-aware scenario-campaign
  orchestration, including warm-fabric chains: a cell may name a
  predecessor whose persisted shaper state seeds its run
  (back-to-back tenants, the Figure 19 carry-over at campaign scale);
* :mod:`repro.runtime` — the unified campaign execution layer beneath
  scenarios, measurement matrices, figure sweeps, and the bench
  suite: content-hashed :class:`~repro.runtime.cell.Cell` units
  (optionally chained via ``after``), a crash-safe content-addressed
  :class:`~repro.runtime.store.ArtifactStore` with an integrity audit
  (``repro store verify``), pluggable serial / process-pool /
  multi-machine shard executors (``python -m repro worker`` +
  ``merge``; chains stay whole on one shard and resume mid-chain from
  their store), and a fault-tolerant supervisor (``repro campaign
  run``): leased, heartbeat-renewed workers, death detection, retries
  with backoff, poison-cell quarantine into ``failures.json``, idle
  work stealing, and a seeded chaos harness proving that a campaign
  killed anywhere converges byte-identically to a serial run;
* :mod:`repro.obs` — observability across engine, fabric, and
  runtime: Prometheus-style metrics with an in-simulation scraper,
  streaming P² sliding-window latency quantiles, job/stage/task-group
  /flow span tracing exportable as Chrome trace-event JSON, per-cell
  execution provenance in store manifests, structured worker logging,
  and ``python -m repro campaign status`` for live progress /
  throughput / ETA / stragglers of a sharded campaign (``--prom``
  emits Prometheus text exposition).  Inert by default: with no
  recorder attached the simulator pays one ``is not None`` check per
  event step and results are bit-identical either way;
* :mod:`repro.stats` — nonparametric CIs, CONFIRM, assumption tests;
* :mod:`repro.survey` — the literature-survey pipeline of Section 2;
* :mod:`repro.core` — the variability-aware experimentation
  methodology (design, execution, analysis, guidelines);
* :mod:`repro.paper` — one module per figure/table, regenerating the
  paper's evaluation.

Performance architecture
------------------------

The simulator is built as three speed layers, each gated bit-exact
(identical RNG streams, identical IEEE-754 operation order) against
the layer below by the golden trace and ``repro bench --check``:

1. **Struct-of-arrays hot loops.**  The fabric keeps flows as
   parallel numpy arrays (progressive-filling rate assignment, fused
   horizon/advance), and :mod:`repro.netmodel.fleet` batches every
   node's egress shaper into one vectorized model —
   :class:`~repro.netmodel.fleet.TokenBucketFleet`,
   :class:`~repro.netmodel.fleet.PerCoreQosFleet`, and friends — so a
   step costs a handful of array ops instead of a Python loop over
   links.  Small fabrics take scalar fast paths that perform the same
   arithmetic without the ufunc dispatch.
2. **Compiled kernels.**  :mod:`repro.simulator.kernels` JIT-compiles
   the water-filling and flow-advance inner loops with numba when the
   optional ``repro[jit]`` extra is installed; a pure-numpy fallback
   (forced via ``REPRO_NO_JIT=1``, and the default when numba is
   absent) is bit-identical, and CI runs the whole tier-1 and bench
   suites on both legs.
3. **Batched multi-stream execution.**
   :func:`repro.simulator.multistream.run_streams` stitches many
   independent cells' fleets into one concatenated super-fleet and
   advances all cells per lockstep round with a single ``horizons`` /
   ``advance_many`` call pair — the SoA trick applied across cells —
   which amortizes per-cell numpy dispatch and makes million-cell
   campaign matrices cheap.  The campaign runtime exposes it as an
   opt-in batch executor; per-cell results are byte-identical to
   serial ``run_stream`` calls.

``BENCH_engine.json`` records the measured trajectory
(``python -m repro bench``); ``--profile`` archives per-case cProfile
tables to a store for regression forensics.

Quickstart::

    import numpy as np
    from repro.cloud import Ec2Provider
    from repro.emulator import FULL_SPEED
    from repro.measurement import BandwidthProbe

    provider = Ec2Provider()
    model = provider.link_model("c5.xlarge", np.random.default_rng(0))
    trace = BandwidthProbe(model, FULL_SPEED).run(duration_s=3600.0)
    print(trace.box_summary())   # the token-bucket drop is visible

Scenario sweeps (randomized multi-job workloads across providers,
arrival rates, and schedulers) run from the shell::

    python -m repro scenario --fast --seed 7 --workers 4
    python -m repro scenario --schedulers fifo,fair,preempt,srpt,edf \
        --deadline-slack 1.5 --chain 2   # deadline misses on warm fabrics

Serving runs the paper's question at request scale: is tail latency
reproducible when the fabric's shaper state is variable?  One
SLO-gated run from the shell, or a provider-contrast sweep::

    python -m repro serve --fast --arrival flash --seed 1
    python -m repro scenario --workload serving --providers hpccloud,fixed

(the ``fixed`` pseudo-provider pins every link at the hpccloud-class
median rate, so the contrast isolates variability, not mean capacity).
Or in code::

    from repro.serving import ServingConfig, run_serving

    result = run_serving(ServingConfig(arrival="flash", rate_rps=90.0,
                                       n_nodes=4, duration_s=60.0,
                                       slo_p99_ms=500.0, seed=1))
    print(result.slo.passed, result.slo_violations)

Campaigns shard across machines through the runtime layer — write
per-machine manifests, run each with the worker CLI, merge the stores
back (byte-identical to a serial run)::

    python -m repro scenario --fast --shards 4 --shard-dir shards/
    python -m repro worker shards/shard-0.json --store shard0-store
    python -m repro merge shard*-store --store campaign-store

and report live progress while the workers run::

    python -m repro campaign status shards/          # table + stragglers
    python -m repro campaign status shards/ --prom   # Prometheus text

or hand the whole thing to the fault-tolerant supervisor, which
launches the workers itself, replaces any that die (SIGKILL included),
quarantines cells that fail every retry, and merges at the end::

    python -m repro campaign run shards/ --store campaign-store
    python -m repro store verify campaign-store      # integrity audit
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
