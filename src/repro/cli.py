"""Command-line interface: regenerate paper artifacts from a shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig06                # print Figure 6's rows
    python -m repro fig16 --fast         # reduced run counts
    python -m repro fig16 --seed 3       # a different random draw
    python -m repro table3
    python -m repro fingerprint c5.xlarge
    python -m repro scenario --fast --seed 7   # randomized sweep
    python -m repro scenario --fast --shards 2 --shard-dir shards/
    python -m repro serve --fast --arrival flash   # one SLO-gated run
    python -m repro scenario --workload serving --fast   # serving sweep
    python -m repro worker shards/shard-0.json --store shard0-store
    python -m repro campaign run shards/ --store campaign-store
    python -m repro campaign status shards/
    python -m repro merge shard0-store shard1-store --store campaign-store
    python -m repro store verify campaign-store
    python -m repro bench                # hot-path benchmarks + ledger
    python -m repro bench --table-only   # recorded before/after table
    python -m repro bench --check        # fail on checksum/wall regression
    python -m repro bench --smoke --check    # CI-sized regression gate

Output is the same row data the benchmark harness prints; ``--fast``
shrinks run counts / durations for a quick look.  Every stochastic
artifact accepts ``--seed`` so shell invocations are reproducible;
omitting it keeps each artifact's published default seed.

Campaign-shaped subcommands (``scenario``, ``bench``, ``worker``,
``merge``) share one flag vocabulary — ``--workers``, ``--seed``,
``--store`` — built from a common argparse parent so the spellings,
defaults, and help text cannot drift apart.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable

import numpy as np

__all__ = [
    "main",
    "build_parser",
    "add_bench_check_arguments",
    "make_runtime_parent",
]


def make_runtime_parent(
    workers_default: int = 1,
    workers_help: str = "process-pool size for pending cells (default: 1, serial)",
    seed_default: int | None = 0,
    seed_help: str = "base RNG seed (default: 0)",
    store_help: str = (
        "artifact-store directory; completed cells are cached there "
        "(default: no store, results are not persisted)"
    ),
    store_required: bool = False,
) -> argparse.ArgumentParser:
    """The shared ``--workers`` / ``--seed`` / ``--store`` parent parser.

    Every campaign-ish subcommand builds on this parent so the runtime
    flag vocabulary is identical everywhere; per-command help strings
    document what each flag means (or why it is inert) for that
    command.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers", type=int, default=workers_default, help=workers_help
    )
    parent.add_argument(
        "--seed", type=int, default=seed_default, help=seed_help
    )
    parent.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        required=store_required,
        help=store_help,
    )
    return parent


def add_bench_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared bench regression-gate flags to a parser.

    Both bench entry points (``python -m repro bench`` and
    ``benchmarks/bench_engine_hotpath.py``) call this so the gate's
    flags, defaults, and help text cannot drift apart.  It lives here
    (not in :mod:`repro.bench`) so parser construction stays free of
    the heavy simulator imports.
    """
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: exit non-zero when a checksum drifts from "
        "the ledger or wall time regresses beyond --wall-tolerance "
        "(full runs gate on 'current', --smoke runs on 'smoke'); "
        "never writes the ledger",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=1.25,
        metavar="X",
        help="wall-time regression factor for --check (default: 1.25, "
        "i.e. fail beyond +25%%; raise on noisy shared runners)",
    )
    parser.add_argument(
        "--save-smoke",
        action="store_true",
        help="record a CI-sized run as the 'smoke' reference for "
        "--check --smoke (implies --smoke)",
    )

#: artifact name -> (description, fast kwargs, full kwargs)
_FIGURES: dict[str, tuple[str, dict, dict]] = {
    "fig01": ("survey reporting practices", {}, {}),
    "fig02": ("Ballani cloud distributions", {}, {}),
    "fig03": ("few-repetition credibility", {"n_gold": 16, "clouds": ("B", "F")}, {}),
    "fig04": ("HPCCloud bandwidth", {"duration_s": 36_000.0}, {}),
    "fig05": ("GCE bandwidth by pattern", {"duration_s": 36_000.0}, {}),
    "fig06": ("EC2 bandwidth by pattern", {"duration_s": 172_800.0}, {}),
    "fig07": ("EC2 latency regimes", {"max_samples": 50_000}, {}),
    "fig08": ("GCE latency", {"max_samples": 50_000}, {}),
    "fig09": ("retransmission analysis", {"duration_s": 7_200.0}, {}),
    "fig10": ("traffic totals by pattern", {"duration_s": 302_400.0}, {}),
    "fig11": ("token-bucket identification", {"tests_per_type": 5}, {}),
    "fig12": ("write()-size effects", {}, {}),
    "fig13": ("CONFIRM analysis", {"repetitions": 40}, {}),
    "fig14": ("emulator validation", {}, {}),
    "fig15": ("Terasort vs budget", {"consecutive_runs": 3}, {}),
    "fig16": ("HiBench vs budget", {"runs_per_config": 3}, {}),
    "fig17": ("TPC-DS vs budget", {"runs_per_config": 3}, {}),
    "fig18": ("token-bucket straggler", {"stream_repeats": 2}, {}),
    "fig19": ("CI analysis under depletion", {"reps_per_budget": 4,
                                              "scan_reps_per_budget": 2}, {}),
}

_TABLES = {
    "table1": "survey parameters",
    "table2": "survey funnel",
    "table3": "campaign summary",
    "table4": "big-data experiment setup",
}


def _print_rows(rows) -> None:
    if isinstance(rows, dict):
        rows = [rows]
    for row in rows:
        print("  " + "  ".join(f"{k}={v}" for k, v in row.items()))


def _figure_rows(name: str, result) -> None:
    """Print whatever row-like views a figure result offers."""
    printed = False
    for attr in ("rows", "average_rows", "slowdown_rows"):
        method = getattr(result, attr, None)
        if callable(method):
            _print_rows(method())
            printed = True
            break
    if not printed:
        print(f"  {result!r}")
    for extra in ("miss_counts", "slowdowns", "violin_rows", "histogram_rows"):
        method = getattr(result, extra, None)
        if callable(method):
            print(f"  -- {extra} --")
            _print_rows(method())


def _cmd_list(_: argparse.Namespace) -> int:
    print("figures:")
    for name, (description, *_rest) in sorted(_FIGURES.items()):
        print(f"  {name:8s} {description}")
    print("tables:")
    for name, description in sorted(_TABLES.items()):
        print(f"  {name:8s} {description}")
    print("other:")
    print("  fingerprint <instance>   F5.2 baseline for an EC2 instance type")
    print("  scenario                 randomized multi-job scenario sweep")
    print("  serve                    one serving run with an SLO verdict table")
    print("  worker <manifest>        execute one campaign shard manifest")
    print("  merge <stores...>        merge shard stores into a campaign store")
    print("  campaign run <dir>       fault-tolerant supervisor for all shards")
    print("  campaign status <dir>    live progress of a sharded campaign")
    print("  store verify <dirs...>   audit store integrity (manifest vs disk)")
    print("  bench                    simulator hot-path benchmark suite")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import importlib

    name = args.artifact
    module = importlib.import_module(f"repro.paper.{name}")
    _, fast_kwargs, full_kwargs = _FIGURES[name]
    kwargs = dict(fast_kwargs if args.fast else full_kwargs)
    parameters = inspect.signature(module.reproduce).parameters
    if args.seed is not None:
        if "seed" in parameters:
            kwargs["seed"] = args.seed
        else:
            print(
                f"note: {name} is deterministic; --seed ignored",
                file=sys.stderr,
            )
    if args.workers != 1:
        if "workers" in parameters:
            kwargs["workers"] = args.workers
        else:
            print(
                f"note: {name} has no runtime replay sweep; --workers ignored",
                file=sys.stderr,
            )
    result = module.reproduce(**kwargs)
    print(f"== {name}: {_FIGURES[name][0]} ==")
    _figure_rows(name, result)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.paper import tables

    name = args.artifact
    fn: Callable = getattr(tables, name)
    result = fn()
    print(f"== {name}: {_TABLES[name]} ==")
    _print_rows(result)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        format_table,
        load_results,
        record_profiles,
        record_provenance,
        run_and_record,
        run_check,
        run_suite,
    )

    if args.workers != 1:
        print(
            "note: benchmarks always run serially to keep timings honest; "
            "--workers ignored",
            file=sys.stderr,
        )
    if args.table_only:
        print(format_table(load_results(args.json)))
        return 0
    if args.profile:
        # Profiling instruments every frame, so the wall times are not
        # the hot path's: the run can be printed and archived but never
        # recorded as (or gated against) a ledger reference.
        if args.check or args.save_baseline or args.save_smoke:
            print(
                "error: --profile inflates wall times; it cannot be "
                "combined with --check/--save-baseline/--save-smoke "
                "(the ledger pins un-instrumented timings)",
                file=sys.stderr,
            )
            return 2
        if not args.store:
            print(
                "error: --profile needs --store to archive the per-case "
                "profiles",
                file=sys.stderr,
            )
            return 2
        profiles: dict = {}
        results = run_suite(
            smoke=args.smoke, seed=args.seed, profiles=profiles
        )
        for name, row in results.items():
            print(f"{name}: " + "  ".join(f"{k}={v}" for k, v in row.items()))
        record_provenance(results, args.store, label=args.label)
        record_profiles(profiles, args.store, label=args.label)
        print(
            f"archived top-20 cProfile tables for {len(profiles)} case(s) "
            f"in {args.store}"
        )
        return 0
    if args.seed is not None:
        # Overridden seeds change every checksum, so the run can be
        # printed and archived but never recorded as (or gated against)
        # a ledger reference.
        if args.check or args.save_baseline or args.save_smoke:
            print(
                "error: --seed changes benchmark checksums; it cannot be "
                "combined with --check/--save-baseline/--save-smoke "
                "(the ledger pins each case's published seed)",
                file=sys.stderr,
            )
            return 2
        results = run_suite(smoke=args.smoke, seed=args.seed)
        for name, row in results.items():
            print(f"{name}: " + "  ".join(f"{k}={v}" for k, v in row.items()))
        if args.store:
            record_provenance(results, args.store, label=args.label)
        return 0
    if args.check:
        return run_check(
            smoke=args.smoke,
            path=args.json,
            wall_tolerance=args.wall_tolerance,
            store=args.store,
        )
    return run_and_record(
        smoke=args.smoke,
        save_baseline=args.save_baseline,
        path=args.json,
        label=args.label,
        save_smoke=args.save_smoke,
        store=args.store,
    )


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.cloud import Ec2Provider
    from repro.measurement import fingerprint_link

    provider = Ec2Provider()
    rng = np.random.default_rng(args.seed)
    try:
        model = provider.link_model(args.instance, rng)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fp = fingerprint_link(model, provider.latency_model(), rng=rng)
    print(f"== fingerprint: {args.instance} ==")
    print(f"base bandwidth: {fp.base_bandwidth_gbps:.2f} Gbps")
    print(f"base latency:   {fp.base_latency_ms:.3f} ms")
    print(f"loaded latency: {fp.loaded_latency_ms:.3f} ms (p99)")
    tb = fp.token_bucket
    if tb.detected:
        print(
            f"token bucket:   high {tb.high_gbps:.1f} Gbps, "
            f"low {tb.low_gbps:.1f} Gbps, empties in {tb.time_to_empty_s:.0f} s, "
            f"replenish {tb.replenish_gbps:.2f} Gbit/s"
        )
    else:
        print("token bucket:   none detected")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import (
        SERVING_DEFAULT_INSTANCES,
        ServingConfig,
        run_serving,
    )

    if args.fast:
        n_nodes = 4 if args.nodes is None else args.nodes
        duration_s = 30.0 if args.duration is None else args.duration
        window_s = 10.0 if args.window is None else args.window
    else:
        n_nodes = 8 if args.nodes is None else args.nodes
        duration_s = 120.0 if args.duration is None else args.duration
        window_s = 30.0 if args.window is None else args.window
    instance = args.instance
    if instance is None:
        instance = SERVING_DEFAULT_INSTANCES.get(args.provider)
        if instance is None:
            print(
                f"error: no default instance for provider "
                f"{args.provider!r}; pass --instance",
                file=sys.stderr,
            )
            return 2
    try:
        config = ServingConfig(
            provider_name=args.provider,
            instance_name=instance,
            n_nodes=n_nodes,
            topology=args.topology,
            depth=args.depth,
            breadth=args.breadth,
            arrival=args.arrival,
            rate_rps=args.rate,
            duration_s=duration_s,
            users=args.users,
            think_s=args.think,
            payload_scale=args.payload_scale,
            slo_p50_ms=args.p50,
            slo_p99_ms=args.p99,
            slo_p999_ms=args.p999,
            slo_window_s=window_s,
            seed=args.seed if args.seed is not None else 0,
        )
        result = run_serving(config)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.prom:
        from repro.obs import MetricsRegistry

        if result.slo is None:
            print(
                "error: --prom renders the repro_slo_* gauges; enable at "
                "least one SLO target (--p50/--p99/--p999)",
                file=sys.stderr,
            )
            return 2
        registry = MetricsRegistry()
        result.slo.to_metrics(registry)
        sys.stdout.write(registry.render_prometheus())
        return 0

    def ms(key: str) -> str:
        value = result.latency.get(key)
        if value is None or (isinstance(value, float) and value != value):
            return "n/a"
        return f"{value * 1000.0:.1f} ms"

    load = f"{config.rate_rps:g} rps {config.arrival}"
    if config.users:
        load += f" + {config.users} users (think {config.think_s:g} s)"
    print(
        f"== serve: {config.provider_name}/{config.instance_name} "
        f"x{config.n_nodes}, {config.topology}, {load} =="
    )
    print(f"cell: {config.serving_id}  seed={config.seed}")
    print(
        f"requests: {result.n_completed}/{result.n_requests} completed "
        f"in {result.makespan_s:.1f} s simulated"
    )
    print(
        f"latency: p50={ms('p50')}  p99={ms('p99')}  p999={ms('p999')}  "
        f"max={ms('max_s')}"
    )
    if result.slo is not None:
        print("slo verdicts:")
        _print_rows(result.slo.verdict_rows())
        verdict = "PASS" if result.slo.passed else "FAIL"
        print(
            f"slo: {verdict} — {result.slo_violations} violation "
            f"window(s) across {result.slo.n_windows} window(s)"
        )
    return 0


def _emit_shard_plan(campaign, n_cells: int, args, store, label: str) -> None:
    """Write shard manifests and print the worker/merge runbook."""
    if args.shards < 1:
        raise ValueError("--shards must be >= 1")
    if not args.shard_dir:
        raise ValueError("--shards requires --shard-dir DIR")
    manifests = campaign.shard_manifests(args.shard_dir, args.shards)
    print(f"== {label}: {n_cells} cells, "
          f"{len(manifests)} shard manifest(s) ==")
    for index, manifest in enumerate(manifests):
        print(f"  python -m repro worker {manifest} "
              f"--store {args.shard_dir}/shard-{index}-store")
    stores = " ".join(
        f"{args.shard_dir}/shard-{i}-store" for i in range(len(manifests))
    )
    merged = store if store else "<campaign-store>"
    print(f"  python -m repro merge {stores} --store {merged}")


def _cmd_scenario_serving(args: argparse.Namespace) -> int:
    """The ``--workload serving`` leg of the scenario subcommand."""
    from repro.measurement.repository import (
        RepositoryCorruptionError,
        TraceRepository,
    )
    from repro.serving import ServingCampaign, serving_matrix

    if args.fast:
        n_nodes, duration_s, window_s = 4, 30.0, 10.0
    else:
        n_nodes, duration_s, window_s = 8, 120.0, 30.0
    store = args.store or args.repo
    try:
        configs = serving_matrix(
            providers=tuple(args.providers.split(",")),
            arrivals=tuple(args.arrivals.split(",")),
            rates_rps=tuple(float(r) for r in args.rates.split(",")),
            topologies=tuple(args.topologies.split(",")),
            n_nodes=n_nodes,
            duration_s=duration_s,
            slo_p99_ms=args.slo_p99,
            slo_window_s=window_s,
            seed=args.seed,
            chain_length=args.chain,
        )
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        repository = TraceRepository(store) if store else None
        campaign = ServingCampaign(
            configs, repository=repository, workers=args.workers
        )
        if args.shards is not None:
            _emit_shard_plan(
                campaign, len(configs), args, store, "serving sweep"
            )
            return 0
        results = campaign.run()
    except (ValueError, RepositoryCorruptionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"== serving sweep: {len(configs)} cells ==")
    _print_rows([results[c.serving_id].aggregate_row() for c in configs])
    cached = sum(1 for r in results.values() if r.cached)
    print(
        f"  computed={len(results) - cached} cached={cached} "
        f"workers={args.workers}"
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.measurement.repository import (
        RepositoryCorruptionError,
        TraceRepository,
    )
    from repro.scenarios import ScenarioCampaign, scenario_matrix

    workloads = tuple(args.workloads.split(","))
    if "serving" in workloads:
        if set(workloads) != {"serving"}:
            print(
                "error: --workload serving is its own sweep and cannot "
                "mix with DAG workloads in one matrix; run two campaigns "
                "into the same --store instead",
                file=sys.stderr,
            )
            return 2
        return _cmd_scenario_serving(args)
    if args.fast:
        n_jobs, n_nodes, data_scale = 3, 4, 0.05
    else:
        n_jobs, n_nodes, data_scale = 8, 12, 1.0
    store = args.store or args.repo
    try:
        configs = scenario_matrix(
            providers=tuple(args.providers.split(",")),
            arrival_rates=tuple(float(r) for r in args.arrival_rates.split(",")),
            schedulers=tuple(args.schedulers.split(",")),
            workloads=workloads,
            n_jobs=n_jobs,
            n_nodes=n_nodes,
            data_scale=data_scale,
            seed=args.seed,
            deadline_slack=args.deadline_slack,
            chain_length=args.chain,
        )
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        repository = TraceRepository(store) if store else None
        campaign = ScenarioCampaign(
            configs, repository=repository, workers=args.workers
        )
        if args.shards is not None:
            _emit_shard_plan(
                campaign, len(configs), args, store, "scenario sweep"
            )
            return 0
        outcome = campaign.run()
    except (ValueError, RepositoryCorruptionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"== scenario sweep: {len(configs)} cells ==")
    _print_rows(outcome.aggregate_rows())
    print(
        f"  computed={len(outcome.computed_ids)} "
        f"cached={len(outcome.cached_ids)} workers={args.workers}"
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Execute one shard manifest.  Exit codes are a protocol:

    0 — shard done; 2 — configuration error (bad manifest/store, do
    not retry); 3 — retryable (a cell crashed, the lease was lost or
    already held — relaunch later); 4 — finished, but the store's
    ``failures.json`` names quarantined cells that never resolved.
    """
    import os

    from repro.runtime import (
        ArtifactStore,
        CellExecutionError,
        ExecutionAborted,
        run_manifest,
    )
    from repro.runtime.coordinator import (
        LeaseHeartbeat,
        LeaseLostError,
        acquire_lease,
        release_lease,
    )
    from repro.runtime.worker import FAILURES_NAME, read_failures
    from pathlib import Path

    heartbeat = None
    lease = None
    should_stop = None
    push = None
    worker_id = args.worker_id or f"pid-{os.getpid()}"
    try:
        if args.lease:
            try:
                lease = acquire_lease(
                    args.lease, worker_id=worker_id, ttl_s=args.lease_ttl
                )
            except LeaseLostError as exc:
                print(f"retryable: {exc}", file=sys.stderr)
                return 3
            interval = args.heartbeat or max(0.05, args.lease_ttl / 3.0)
            heartbeat = LeaseHeartbeat(
                args.lease, lease["token"], interval_s=interval
            )
            heartbeat.start()
            should_stop = lambda: heartbeat.lost  # noqa: E731
        syncer = None
        on_stored = None
        if getattr(args, "remote", None):
            from repro.runtime.remote import RemoteStore, open_transport

            syncer = RemoteStore(
                ArtifactStore(args.store),
                open_transport(args.remote),
                echo=None if args.quiet else print,
            )
            # Cross-machine resume: anything the remote already holds
            # for this shard becomes a local cache hit (digest-verified
            # on the way in; failures degrade to recomputes).
            syncer.pull()

            def on_stored(key: str) -> None:
                syncer.push([key])

        try:
            summary = run_manifest(
                args.manifest,
                args.store,
                workers=args.workers,
                echo=None if args.quiet else print,
                should_stop=should_stop,
                on_stored=on_stored,
            )
        except (CellExecutionError, ExecutionAborted) as exc:
            print(f"retryable: {exc}", file=sys.stderr)
            return 3
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if syncer is not None:
            # Backstop for any per-cell push the hook swallowed: one
            # digest-keyed delta push of the whole shard store.
            push = syncer.push()
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if lease is not None:
            release_lease(args.lease, lease["token"])
    failures = read_failures(Path(args.store) / FAILURES_NAME)
    print(
        f"worker done: computed={len(summary['computed'])} "
        f"cached={len(summary['cached'])} "
        f"skipped={len(summary['skipped'])} store={summary['store']}"
    )
    if push is not None:
        print(f"sync {push.summary_line()}")
        if push.failed:
            print(
                f"sync: {len(push.failed)} key(s) failed to push; the "
                "local store is complete and a later push can catch up",
                file=sys.stderr,
            )
    if failures is not None:
        stored = set(ArtifactStore(args.store).keys())
        unresolved = (
            set(failures.get("cells", {})) | set(failures.get("blocked", ()))
        ) - stored
        if unresolved:
            print(
                f"failures: {len(unresolved)} quarantined/blocked cell(s) "
                f"recorded in {FAILURES_NAME}",
                file=sys.stderr,
            )
            return 4
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.obs.status import (
        campaign_status,
        render_prometheus,
        render_text,
    )

    try:
        status = campaign_status(
            args.shard_dir,
            prefix=args.prefix,
            stores=args.stores,
            remote=getattr(args, "remote", None),
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.prom:
        sys.stdout.write(render_prometheus(status))
    else:
        print(render_text(status))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.runtime import merge_stores

    try:
        summary = merge_stores(
            args.shard_stores, args.store, allow_partial=args.allow_partial
        )
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"merged {len(summary['adopted'])} new artifact(s) into "
        f"{summary['store']} ({summary['total']} total)"
    )
    print(f"content hash: {summary['content_hash']}")
    if summary["failed"] or summary["blocked"]:
        print(
            f"partial merge: {len(summary['failed'])} failed and "
            f"{len(summary['blocked'])} blocked cell(s) are missing",
            file=sys.stderr,
        )
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.runtime.coordinator import run_campaign

    try:
        summary = run_campaign(
            args.shard_dir,
            prefix=args.prefix,
            stores=args.stores,
            store_root=args.store,
            allow_partial=args.allow_partial,
            max_retries=args.max_retries,
            lease_ttl_s=args.lease_ttl,
            heartbeat_s=args.heartbeat,
            poll_s=args.poll,
            workers_per_shard=args.workers,
            steal=not args.no_steal,
            seed=args.seed if args.seed is not None else 0,
            max_wall_s=args.max_wall,
            echo=None if args.quiet else print,
            remote_root=args.remote,
        )
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"campaign done: stored={summary['stored']}/{summary['cells']} "
        f"deaths={summary['deaths']} steals={summary['steals']} "
        f"quarantined={len(summary['quarantined'])} "
        f"blocked={len(summary['blocked'])}"
    )
    transport = summary.get("transport")
    if transport is not None:
        print(
            f"transport: pulled={transport['pulled']} "
            f"skipped={transport['skipped']} "
            f"failed={len(transport['failed'])} "
            f"retries={transport['retries']} "
            f"refetches={transport['refetches']}"
        )
    merged = summary["merged"]
    if merged is not None:
        print(
            f"merged {len(merged['adopted'])} artifact(s) into "
            f"{merged['store']} ({merged['total']} total)"
        )
        print(f"content hash: {merged['content_hash']}")
    elif args.store is not None:
        print(
            "merge skipped: unresolved failures (re-run, or pass "
            "--allow-partial)",
            file=sys.stderr,
        )
    return 0 if summary["ok"] else 4


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.runtime import ArtifactStore

    problems = 0
    for root in args.stores:
        # An audit must never scaffold: a missing store is a usage
        # error, not an empty-but-healthy one.
        if not Path(root).is_dir():
            print(f"error: no store directory {root}", file=sys.stderr)
            return 2
        try:
            store = ArtifactStore(root)
            report = store.verify()
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        state = "ok" if report.ok else "CORRUPT"
        line = (
            f"{root}: {state} — {report.checked} key(s) checked, "
            f"{len(report.problems)} problem(s), "
            f"{len(report.orphans)} orphan dir(s)"
        )
        if report.undigested:
            line += f", {len(report.undigested)} undigested key(s)"
        print(line)
        for problem in report.problems:
            print(f"  {problem}")
        for key in report.undigested:
            print(f"  {key}: undigested (run `repro store digest {root}`)")
        if args.repair and not report.ok:
            repaired = store.repair(report)
            print(
                f"  repaired: dropped {len(repaired.dropped)} manifest "
                f"entr(ies), removed {len(repaired.removed_files)} file(s) "
                "— re-run or pull to recompute them"
            )
            report = store.verify()
        problems += len(report.problems)
    return 1 if problems else 0


def _cmd_store_digest(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.runtime import ArtifactStore, StoreCorruptionError

    for root in args.stores:
        if not Path(root).is_dir():
            print(f"error: no store directory {root}", file=sys.stderr)
            return 2
        try:
            updated = ArtifactStore(root).record_digests()
        except (StoreCorruptionError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{root}: recorded digests for {len(updated)} key(s)")
    return 0


def _cmd_store_sync(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.runtime import ArtifactStore
    from repro.runtime.remote import RemoteStore, RetryPolicy, open_transport

    if not Path(args.store_dir).is_dir():
        print(f"error: no store directory {args.store_dir}", file=sys.stderr)
        return 2
    try:
        syncer = RemoteStore(
            ArtifactStore(args.store_dir),
            open_transport(args.remote),
            retries=args.retries,
            backoff=RetryPolicy(seed=args.seed if args.seed is not None else 0),
            timeout_s=args.timeout,
            echo=None if args.quiet else print,
        )
        report = getattr(syncer, args.store_command)()
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary_line())
    for key, reason in sorted(report.failed.items()):
        print(f"  missing {key}: {reason}", file=sys.stderr)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Is Big Data Performance "
        "Reproducible in Modern Cloud Networks?' (NSDI 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list regenerable artifacts").set_defaults(
        handler=_cmd_list
    )

    for name in _FIGURES:
        p = sub.add_parser(name, help=_FIGURES[name][0])
        p.add_argument(
            "--fast", action="store_true",
            help="reduced run counts / durations",
        )
        p.add_argument(
            "--seed", type=int, default=None,
            help="RNG seed (default: the artifact's published seed)",
        )
        p.add_argument(
            "--workers", type=int, default=1,
            help="process-pool size for replay sweeps; figures whose "
            "sweeps run through the runtime layer parallelize without "
            "changing their numbers (default: 1)",
        )
        p.set_defaults(handler=_cmd_figure, artifact=name)

    for name in _TABLES:
        p = sub.add_parser(name, help=_TABLES[name])
        p.set_defaults(handler=_cmd_table, artifact=name)

    p = sub.add_parser(
        "scenario",
        help="randomized multi-job scenario sweep (provider x rate x scheduler)",
        parents=[
            make_runtime_parent(
                workers_help="process-pool size for pending cells "
                "(default: 1, serial; results are identical at any count)",
                seed_help="matrix base seed (default: 0)",
                store_help="campaign store directory (a TraceRepository); "
                "completed cells are cached there (default: no store)",
            )
        ],
    )
    p.add_argument(
        "--fast", action="store_true",
        help="small clusters, few jobs, scaled-down data",
    )
    p.add_argument(
        "--repo", default=None, metavar="DIR",
        help="deprecated alias for --store",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="instead of running, write N per-machine shard manifests "
        "to --shard-dir and print the worker/merge commands",
    )
    p.add_argument(
        "--shard-dir", default=None, metavar="DIR",
        help="directory for --shards manifests",
    )
    p.add_argument(
        "--providers", default="amazon,google",
        help="comma-separated provider names",
    )
    p.add_argument(
        "--arrival-rates", default="1.0,4.0",
        help="comma-separated Poisson rates (jobs/minute)",
    )
    p.add_argument(
        "--schedulers", default="fifo,fair",
        help="comma-separated slot schedulers "
        "(fifo,fair,preempt,srpt,edf)",
    )
    p.add_argument(
        "--workloads", "--workload", default="mixed",
        help="comma-separated workload mixes (mixed,random,tpch,hibench), "
        "or 'serving' alone to sweep request-serving cells instead of "
        "DAG jobs (provider x arrival x rate x topology; see --arrivals, "
        "--rates, --topologies, --slo-p99)",
    )
    p.add_argument(
        "--arrivals", default="poisson,flash",
        help="serving only: comma-separated open-loop arrival shapes "
        "(poisson,diurnal,flash)",
    )
    p.add_argument(
        "--rates", default="20",
        help="serving only: comma-separated request rates "
        "(requests/second; the peak rate for diurnal/flash shapes)",
    )
    p.add_argument(
        "--topologies", default="three_tier",
        help="serving only: comma-separated call-tree shapes "
        "(line,fanout,three_tier)",
    )
    p.add_argument(
        "--slo-p99", type=float, default=250.0, metavar="MS",
        help="serving only: per-window p99 latency target in "
        "milliseconds, 0 to disable the gate (default: 250)",
    )
    p.add_argument(
        "--deadline-slack", type=float, default=1.0, metavar="X",
        help="mean multiplicative deadline slack for synthesized per-job "
        "deadlines (rows report miss_rate; the edf scheduler orders by "
        "them); the value is part of each cell's cache key, so pass 0 "
        "to disable deadlines and reuse repositories populated before "
        "deadlines existed (default: 1.0)",
    )
    p.add_argument(
        "--chain", type=int, default=1, metavar="N",
        help="expand every cell into a warm-fabric chain of N cells: "
        "each link is a new tenant arriving on the shaper state its "
        "predecessor left behind (default: 1, independent cells)",
    )
    p.set_defaults(handler=_cmd_scenario)

    p = sub.add_parser(
        "worker",
        help="execute one shard manifest into a local artifact store",
        parents=[
            make_runtime_parent(
                workers_help="process-pool size for this shard's cells "
                "(default: 1, serial)",
                seed_default=None,
                seed_help="accepted for CLI consistency; ignored — every "
                "cell's seed is pinned in the shard manifest",
                store_help="artifact store for this shard's results; "
                "re-running resumes, skipping stored cells (required)",
                store_required=True,
            )
        ],
    )
    p.add_argument("manifest", help="shard manifest written by --shards")
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell structured log lines (the final summary "
        "still prints)",
    )
    p.add_argument(
        "--lease", default=None, metavar="PATH",
        help="lease file to acquire and heartbeat while the shard runs; "
        "an unexpired foreign lease makes the worker exit 3 (retryable) "
        "instead of double-running the shard (default: no lease)",
    )
    p.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="identity written into the lease (default: pid-<PID>)",
    )
    p.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="S",
        help="lease time-to-live in seconds; a lease not renewed within "
        "this window counts as a dead worker (default: 15)",
    )
    p.add_argument(
        "--heartbeat", type=float, default=None, metavar="S",
        help="lease renewal interval (default: lease-ttl / 3)",
    )
    p.add_argument(
        "--remote", default=None, metavar="DIR",
        help="remote store root to sync through: pulled before the "
        "shard runs (cross-machine resume), pushed as each cell "
        "completes and once more at exit (default: no sync)",
    )
    p.set_defaults(handler=_cmd_worker)

    p = sub.add_parser(
        "campaign",
        help="campaign-level operations (run, status)",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)
    p = campaign_sub.add_parser(
        "run",
        help="supervise all shards of a campaign to completion: launch "
        "leased workers, relaunch dead ones with backoff, quarantine "
        "poison cells, let idle workers steal pending chains, then "
        "merge the shard stores",
        parents=[
            make_runtime_parent(
                workers_help="process-pool size inside each shard worker "
                "(default: 1, serial — required for exact blame "
                "attribution)",
                seed_help="seed for deterministic relaunch jitter "
                "(default: 0; never touches cell results)",
                store_help="merged campaign store written after all "
                "shards resolve (default: no merge)",
            )
        ],
    )
    p.add_argument(
        "shard_dir",
        help="directory holding the shard manifests written by "
        "`repro scenario --shards` (shard-0.json, ...)",
    )
    p.add_argument(
        "--prefix", default="shard", metavar="NAME",
        help="manifest filename prefix (default: shard)",
    )
    p.add_argument(
        "--stores", nargs="*", default=None, metavar="DIR",
        help="explicit shard store directories, one per shard in shard "
        "order (default: DIR/<prefix>-<i>-store)",
    )
    p.add_argument(
        "--allow-partial", action="store_true",
        help="merge even when quarantined/blocked cells are missing "
        "(the exit code is still 4 so automation sees the holes)",
    )
    p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries charged to a cell before it is quarantined "
        "(default: 2)",
    )
    p.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="S",
        help="worker lease time-to-live; an unrenewed lease means a "
        "dead worker (default: 15)",
    )
    p.add_argument(
        "--heartbeat", type=float, default=None, metavar="S",
        help="worker lease renewal interval (default: lease-ttl / 3)",
    )
    p.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="supervisor poll interval (default: 0.2)",
    )
    p.add_argument(
        "--no-steal", action="store_true",
        help="disable work stealing by idle workers",
    )
    p.add_argument(
        "--max-wall", type=float, default=None, metavar="S",
        help="abort the campaign after S seconds of wall clock "
        "(default: run until resolved)",
    )
    p.add_argument(
        "--remote", default=None, metavar="DIR",
        help="remote store root: each worker pushes its shard store to "
        "DIR/<prefix>-<i>-store as cells complete (digest-verified), and "
        "the coordinator pulls the remotes back before merging "
        "(default: no remote sync)",
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress coordinator structured log lines",
    )
    p.set_defaults(handler=_cmd_campaign_run)
    p = campaign_sub.add_parser(
        "status",
        help="report per-shard progress, throughput, ETA, and stragglers "
        "from shard manifests plus whatever the workers have stored",
    )
    p.add_argument(
        "shard_dir",
        help="directory holding the shard manifests written by "
        "`repro scenario --shards` (shard-0.json, ...)",
    )
    p.add_argument(
        "--prefix", default="shard", metavar="NAME",
        help="manifest filename prefix (default: shard); shard i pairs "
        "with store DIR/<prefix>-<i>-store unless --stores overrides",
    )
    p.add_argument(
        "--stores", nargs="*", default=None, metavar="DIR",
        help="explicit shard store directories, one per shard in shard "
        "order (default: DIR/<prefix>-<i>-store)",
    )
    p.add_argument(
        "--prom", action="store_true",
        help="emit Prometheus text exposition instead of the table",
    )
    p.add_argument(
        "--remote", default=None, metavar="DIR",
        help="remote store root the campaign syncs through; adds "
        "per-shard sync lag (synced/pending/failed documents) to the "
        "report (default: local progress only)",
    )
    p.set_defaults(handler=_cmd_campaign_status)

    p = sub.add_parser(
        "merge",
        help="merge shard stores back into a campaign store",
        parents=[
            make_runtime_parent(
                workers_help="accepted for CLI consistency; merging is "
                "sequential and deterministic",
                seed_default=None,
                seed_help="accepted for CLI consistency; ignored — merging "
                "computes nothing",
                store_help="destination campaign store (required)",
                store_required=True,
            )
        ],
    )
    p.add_argument(
        "shard_stores", nargs="+", metavar="SHARD_STORE",
        help="shard store directories written by `repro worker`",
    )
    p.add_argument(
        "--allow-partial", action="store_true",
        help="merge shard stores whose failures.json still names "
        "unresolved quarantined/blocked cells (default: refuse, so a "
        "partial campaign cannot silently pose as complete)",
    )
    p.set_defaults(handler=_cmd_merge)

    p = sub.add_parser(
        "store",
        help="artifact-store maintenance (verify, digest, push/pull/sync)",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    p = store_sub.add_parser(
        "verify",
        help="audit stores: every manifested document present, readable, "
        "and matching its recorded sha256 (exit 1 on any problem)",
    )
    p.add_argument(
        "stores", nargs="+", metavar="DIR",
        help="artifact store directories to audit",
    )
    p.add_argument(
        "--repair", action="store_true",
        help="delete corrupt documents and drop their manifest entries "
        "so a re-run or `store pull` recomputes them; benign orphan "
        "directories are never touched (exit 0 once clean)",
    )
    p.set_defaults(handler=_cmd_store_verify)
    p = store_sub.add_parser(
        "digest",
        help="backfill per-document sha256 digests for manifest entries "
        "that predate them, making old stores auditable",
    )
    p.add_argument(
        "stores", nargs="+", metavar="DIR",
        help="artifact store directories to backfill",
    )
    p.set_defaults(handler=_cmd_store_digest)
    for verb, verb_help in (
        ("push", "upload local artifacts the remote store lacks "
         "(digest-keyed delta, read-back verified)"),
        ("pull", "fetch remote artifacts the local store lacks "
         "(digest-verified before landing; failures leave the local "
         "store valid and name the missing keys)"),
        ("sync", "pull then push, converging both stores to the union"),
    ):
        p = store_sub.add_parser(verb, help=verb_help)
        p.add_argument(
            "store_dir", metavar="DIR",
            help="local artifact store directory",
        )
        p.add_argument(
            "--remote", required=True, metavar="DIR",
            help="remote store root (a mounted/synced directory)",
        )
        p.add_argument(
            "--retries", type=int, default=3, metavar="N",
            help="per-operation transport retries with exponential "
            "backoff and deterministic jitter (default: 3)",
        )
        p.add_argument(
            "--timeout", type=float, default=30.0, metavar="S",
            help="per-operation transport timeout (default: 30)",
        )
        p.add_argument(
            "--seed", type=int, default=None,
            help="seed for deterministic retry jitter (default: 0)",
        )
        p.add_argument(
            "--quiet", action="store_true",
            help="suppress structured transfer log lines",
        )
        p.set_defaults(handler=_cmd_store_sync)

    p = sub.add_parser(
        "serve",
        help="one serving run: a call tree under open/closed-loop load "
        "on a shaped fabric, gated by an SLO verdict table",
    )
    p.add_argument(
        "--provider", default="hpccloud",
        help="provider whose link-model incarnations shape the fabric "
        "(amazon, google, hpccloud, or 'fixed' for a constant-rate "
        "clean fabric at the hpccloud-class median; default: hpccloud)",
    )
    p.add_argument(
        "--instance", default=None,
        help="instance type (default: the provider's serving default)",
    )
    p.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="cluster size (default: 8, or 4 with --fast)",
    )
    p.add_argument(
        "--topology", default="three_tier",
        choices=("line", "fanout", "three_tier"),
        help="call-tree shape (default: three_tier)",
    )
    p.add_argument(
        "--depth", type=int, default=3, metavar="N",
        help="chain length for line, tree depth for fanout (default: 3)",
    )
    p.add_argument(
        "--breadth", type=int, default=2, metavar="N",
        help="fan-out per level for the fanout topology (default: 2)",
    )
    p.add_argument(
        "--arrival", default="poisson",
        choices=("poisson", "diurnal", "flash"),
        help="open-loop arrival shape (default: poisson)",
    )
    p.add_argument(
        "--rate", type=float, default=20.0, metavar="RPS",
        help="open-loop request rate in requests/second (the peak for "
        "diurnal/flash); 0 for closed-loop-only (default: 20)",
    )
    p.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="simulated seconds of load (default: 120, or 30 with --fast)",
    )
    p.add_argument(
        "--users", type=int, default=0, metavar="N",
        help="closed-loop user pool size (default: 0, open-loop only)",
    )
    p.add_argument(
        "--think", type=float, default=1.0, metavar="S",
        help="closed-loop think time between a user's requests "
        "(default: 1.0)",
    )
    p.add_argument(
        "--payload-scale", type=float, default=1.0, metavar="X",
        help="multiplier on every call's request/response payload "
        "(default: 1.0)",
    )
    p.add_argument(
        "--p50", type=float, default=0.0, metavar="MS",
        help="per-window p50 latency target in ms, 0 disables (default: 0)",
    )
    p.add_argument(
        "--p99", type=float, default=250.0, metavar="MS",
        help="per-window p99 latency target in ms, 0 disables "
        "(default: 250)",
    )
    p.add_argument(
        "--p999", type=float, default=0.0, metavar="MS",
        help="per-window p99.9 latency target in ms, 0 disables "
        "(default: 0)",
    )
    p.add_argument(
        "--window", type=float, default=None, metavar="S",
        help="SLO evaluation window in simulated seconds (default: 30, "
        "or 10 with --fast)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="cell RNG seed: incarnation draws, arrival gaps, and "
        "compute noise (default: 0)",
    )
    p.add_argument(
        "--fast", action="store_true",
        help="small cluster, short run, tight windows",
    )
    p.add_argument(
        "--prom", action="store_true",
        help="emit the repro_slo_* gauges as Prometheus text exposition "
        "instead of the human-readable verdict",
    )
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser("fingerprint", help="F5.2 baseline for an instance")
    p.add_argument("instance", help="EC2 instance type, e.g. c5.xlarge")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_fingerprint)

    p = sub.add_parser(
        "bench",
        help="run the simulator hot-path benchmarks (BENCH_engine.json)",
        parents=[
            make_runtime_parent(
                workers_help="accepted for CLI consistency; benchmarks "
                "always run serially to keep timings honest",
                seed_default=None,
                seed_help="override each case's pinned workload seed "
                "(default: pinned seeds); seeded runs are printed but "
                "never recorded or gated — their checksums are "
                "incomparable to the ledger",
                store_help="archive per-case provenance (result row + "
                "environment) into this campaign artifact store "
                "(default: no store)",
            )
        ],
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run; prints results without writing the ledger",
    )
    p.add_argument(
        "--save-baseline", action="store_true",
        help="pin this run as the reference implementation",
    )
    p.add_argument(
        "--table-only", action="store_true",
        help="print the recorded before/after table without benchmarking",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run each case under cProfile and archive its top-20 "
        "functions (by cumulative time) in --store next to the "
        "provenance rows; profiled wall times are instrumented, so "
        "the run is never recorded or gated",
    )
    add_bench_check_arguments(p)
    p.add_argument(
        "--json", default="BENCH_engine.json", metavar="PATH",
        help="results ledger path (default: BENCH_engine.json)",
    )
    p.add_argument("--label", default="", help="label stored with the run")
    p.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
