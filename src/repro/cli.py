"""Command-line interface: regenerate paper artifacts from a shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig06                # print Figure 6's rows
    python -m repro fig16 --fast         # reduced run counts
    python -m repro fig16 --seed 3       # a different random draw
    python -m repro table3
    python -m repro fingerprint c5.xlarge
    python -m repro scenario --fast --seed 7   # randomized sweep
    python -m repro bench                # hot-path benchmarks + ledger
    python -m repro bench --table-only   # recorded before/after table
    python -m repro bench --check        # fail on checksum/wall regression
    python -m repro bench --smoke --check    # CI-sized regression gate

Output is the same row data the benchmark harness prints; ``--fast``
shrinks run counts / durations for a quick look.  Every stochastic
artifact accepts ``--seed`` so shell invocations are reproducible;
omitting it keeps each artifact's published default seed.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable

import numpy as np

__all__ = ["main", "build_parser", "add_bench_check_arguments"]


def add_bench_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared bench regression-gate flags to a parser.

    Both bench entry points (``python -m repro bench`` and
    ``benchmarks/bench_engine_hotpath.py``) call this so the gate's
    flags, defaults, and help text cannot drift apart.  It lives here
    (not in :mod:`repro.bench`) so parser construction stays free of
    the heavy simulator imports.
    """
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: exit non-zero when a checksum drifts from "
        "the ledger or wall time regresses beyond --wall-tolerance "
        "(full runs gate on 'current', --smoke runs on 'smoke'); "
        "never writes the ledger",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=1.25,
        metavar="X",
        help="wall-time regression factor for --check (default: 1.25, "
        "i.e. fail beyond +25%%; raise on noisy shared runners)",
    )
    parser.add_argument(
        "--save-smoke",
        action="store_true",
        help="record a CI-sized run as the 'smoke' reference for "
        "--check --smoke (implies --smoke)",
    )

#: artifact name -> (description, fast kwargs, full kwargs)
_FIGURES: dict[str, tuple[str, dict, dict]] = {
    "fig01": ("survey reporting practices", {}, {}),
    "fig02": ("Ballani cloud distributions", {}, {}),
    "fig03": ("few-repetition credibility", {"n_gold": 16, "clouds": ("B", "F")}, {}),
    "fig04": ("HPCCloud bandwidth", {"duration_s": 36_000.0}, {}),
    "fig05": ("GCE bandwidth by pattern", {"duration_s": 36_000.0}, {}),
    "fig06": ("EC2 bandwidth by pattern", {"duration_s": 172_800.0}, {}),
    "fig07": ("EC2 latency regimes", {"max_samples": 50_000}, {}),
    "fig08": ("GCE latency", {"max_samples": 50_000}, {}),
    "fig09": ("retransmission analysis", {"duration_s": 7_200.0}, {}),
    "fig10": ("traffic totals by pattern", {"duration_s": 302_400.0}, {}),
    "fig11": ("token-bucket identification", {"tests_per_type": 5}, {}),
    "fig12": ("write()-size effects", {}, {}),
    "fig13": ("CONFIRM analysis", {"repetitions": 40}, {}),
    "fig14": ("emulator validation", {}, {}),
    "fig15": ("Terasort vs budget", {"consecutive_runs": 3}, {}),
    "fig16": ("HiBench vs budget", {"runs_per_config": 3}, {}),
    "fig17": ("TPC-DS vs budget", {"runs_per_config": 3}, {}),
    "fig18": ("token-bucket straggler", {"stream_repeats": 2}, {}),
    "fig19": ("CI analysis under depletion", {"reps_per_budget": 4,
                                              "scan_reps_per_budget": 2}, {}),
}

_TABLES = {
    "table1": "survey parameters",
    "table2": "survey funnel",
    "table3": "campaign summary",
    "table4": "big-data experiment setup",
}


def _print_rows(rows) -> None:
    if isinstance(rows, dict):
        rows = [rows]
    for row in rows:
        print("  " + "  ".join(f"{k}={v}" for k, v in row.items()))


def _figure_rows(name: str, result) -> None:
    """Print whatever row-like views a figure result offers."""
    printed = False
    for attr in ("rows", "average_rows", "slowdown_rows"):
        method = getattr(result, attr, None)
        if callable(method):
            _print_rows(method())
            printed = True
            break
    if not printed:
        print(f"  {result!r}")
    for extra in ("miss_counts", "slowdowns", "violin_rows", "histogram_rows"):
        method = getattr(result, extra, None)
        if callable(method):
            print(f"  -- {extra} --")
            _print_rows(method())


def _cmd_list(_: argparse.Namespace) -> int:
    print("figures:")
    for name, (description, *_rest) in sorted(_FIGURES.items()):
        print(f"  {name:8s} {description}")
    print("tables:")
    for name, description in sorted(_TABLES.items()):
        print(f"  {name:8s} {description}")
    print("other:")
    print("  fingerprint <instance>   F5.2 baseline for an EC2 instance type")
    print("  scenario                 randomized multi-job scenario sweep")
    print("  bench                    simulator hot-path benchmark suite")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import importlib

    name = args.artifact
    module = importlib.import_module(f"repro.paper.{name}")
    _, fast_kwargs, full_kwargs = _FIGURES[name]
    kwargs = dict(fast_kwargs if args.fast else full_kwargs)
    if args.seed is not None:
        if "seed" in inspect.signature(module.reproduce).parameters:
            kwargs["seed"] = args.seed
        else:
            print(
                f"note: {name} is deterministic; --seed ignored",
                file=sys.stderr,
            )
    result = module.reproduce(**kwargs)
    print(f"== {name}: {_FIGURES[name][0]} ==")
    _figure_rows(name, result)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.paper import tables

    name = args.artifact
    fn: Callable = getattr(tables, name)
    result = fn()
    print(f"== {name}: {_TABLES[name]} ==")
    _print_rows(result)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import format_table, load_results, run_and_record, run_check

    if args.table_only:
        print(format_table(load_results(args.json)))
        return 0
    if args.check:
        return run_check(
            smoke=args.smoke,
            path=args.json,
            wall_tolerance=args.wall_tolerance,
        )
    return run_and_record(
        smoke=args.smoke,
        save_baseline=args.save_baseline,
        path=args.json,
        label=args.label,
        save_smoke=args.save_smoke,
    )


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.cloud import Ec2Provider
    from repro.measurement import fingerprint_link

    provider = Ec2Provider()
    rng = np.random.default_rng(args.seed)
    try:
        model = provider.link_model(args.instance, rng)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fp = fingerprint_link(model, provider.latency_model(), rng=rng)
    print(f"== fingerprint: {args.instance} ==")
    print(f"base bandwidth: {fp.base_bandwidth_gbps:.2f} Gbps")
    print(f"base latency:   {fp.base_latency_ms:.3f} ms")
    print(f"loaded latency: {fp.loaded_latency_ms:.3f} ms (p99)")
    tb = fp.token_bucket
    if tb.detected:
        print(
            f"token bucket:   high {tb.high_gbps:.1f} Gbps, "
            f"low {tb.low_gbps:.1f} Gbps, empties in {tb.time_to_empty_s:.0f} s, "
            f"replenish {tb.replenish_gbps:.2f} Gbit/s"
        )
    else:
        print("token bucket:   none detected")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.measurement.repository import (
        RepositoryCorruptionError,
        TraceRepository,
    )
    from repro.scenarios import ScenarioCampaign, scenario_matrix

    if args.fast:
        n_jobs, n_nodes, data_scale = 3, 4, 0.05
    else:
        n_jobs, n_nodes, data_scale = 8, 12, 1.0
    try:
        configs = scenario_matrix(
            providers=tuple(args.providers.split(",")),
            arrival_rates=tuple(float(r) for r in args.arrival_rates.split(",")),
            schedulers=tuple(args.schedulers.split(",")),
            workloads=tuple(args.workloads.split(",")),
            n_jobs=n_jobs,
            n_nodes=n_nodes,
            data_scale=data_scale,
            seed=args.seed,
        )
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        repository = TraceRepository(args.repo) if args.repo else None
        campaign = ScenarioCampaign(
            configs, repository=repository, workers=args.workers
        )
        outcome = campaign.run()
    except (ValueError, RepositoryCorruptionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"== scenario sweep: {len(configs)} cells ==")
    _print_rows(outcome.aggregate_rows())
    print(
        f"  computed={len(outcome.computed_ids)} "
        f"cached={len(outcome.cached_ids)} workers={args.workers}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Is Big Data Performance "
        "Reproducible in Modern Cloud Networks?' (NSDI 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list regenerable artifacts").set_defaults(
        handler=_cmd_list
    )

    for name in _FIGURES:
        p = sub.add_parser(name, help=_FIGURES[name][0])
        p.add_argument(
            "--fast", action="store_true",
            help="reduced run counts / durations",
        )
        p.add_argument(
            "--seed", type=int, default=None,
            help="RNG seed (default: the artifact's published seed)",
        )
        p.set_defaults(handler=_cmd_figure, artifact=name)

    for name in _TABLES:
        p = sub.add_parser(name, help=_TABLES[name])
        p.set_defaults(handler=_cmd_table, artifact=name)

    p = sub.add_parser(
        "scenario",
        help="randomized multi-job scenario sweep (provider x rate x scheduler)",
    )
    p.add_argument(
        "--fast", action="store_true",
        help="small clusters, few jobs, scaled-down data",
    )
    p.add_argument("--seed", type=int, default=0, help="matrix base seed")
    p.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for pending cells",
    )
    p.add_argument(
        "--repo", default=None, metavar="DIR",
        help="TraceRepository directory; completed cells are cached there",
    )
    p.add_argument(
        "--providers", default="amazon,google",
        help="comma-separated provider names",
    )
    p.add_argument(
        "--arrival-rates", default="1.0,4.0",
        help="comma-separated Poisson rates (jobs/minute)",
    )
    p.add_argument(
        "--schedulers", default="fifo,fair",
        help="comma-separated slot schedulers",
    )
    p.add_argument(
        "--workloads", default="mixed",
        help="comma-separated workload mixes (mixed,random,tpch,hibench)",
    )
    p.set_defaults(handler=_cmd_scenario)

    p = sub.add_parser("fingerprint", help="F5.2 baseline for an instance")
    p.add_argument("instance", help="EC2 instance type, e.g. c5.xlarge")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_fingerprint)

    p = sub.add_parser(
        "bench",
        help="run the simulator hot-path benchmarks (BENCH_engine.json)",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run; prints results without writing the ledger",
    )
    p.add_argument(
        "--save-baseline", action="store_true",
        help="pin this run as the reference implementation",
    )
    p.add_argument(
        "--table-only", action="store_true",
        help="print the recorded before/after table without benchmarking",
    )
    add_bench_check_arguments(p)
    p.add_argument(
        "--json", default="BENCH_engine.json", metavar="PATH",
        help="results ledger path (default: BENCH_engine.json)",
    )
    p.add_argument("--label", default="", help="label stored with the run")
    p.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
