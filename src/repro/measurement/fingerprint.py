"""Baseline fingerprinting and token-bucket identification (F5.2).

The paper's remedy for opaque, changing provider policies is to
establish *baselines* through micro-benchmarks before every experiment
and publish them with the results.  At a minimum (F5.2): base latency,
base bandwidth, latency under load, and — if present — the parameters
of bandwidth token buckets.

:func:`identify_token_bucket` implements the Figure 11 methodology:
"we ran an iperf test continuously until the achieved bandwidth dropped
significantly and stabilized at a lower value", yielding the time to
empty the bucket and the high/low rates; resting and re-probing
estimates the replenish rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.netmodel.base import LinkModel
from repro.netmodel.latency import LatencyModel

__all__ = [
    "TokenBucketEstimate",
    "NetworkFingerprint",
    "identify_token_bucket",
    "fingerprint_link",
]


@dataclass(frozen=True)
class TokenBucketEstimate:
    """Token-bucket parameters inferred from probing one incarnation."""

    detected: bool
    time_to_empty_s: float
    high_gbps: float
    low_gbps: float
    replenish_gbps: float

    @property
    def budget_gbit(self) -> float:
        """Implied initial budget: drain rate times time-to-empty."""
        if not self.detected or math.isinf(self.time_to_empty_s):
            return math.inf
        return (self.high_gbps - self.replenish_gbps) * self.time_to_empty_s


@dataclass(frozen=True)
class NetworkFingerprint:
    """The F5.2 baseline bundle for one link."""

    base_bandwidth_gbps: float
    base_latency_ms: float
    loaded_latency_ms: float
    token_bucket: TokenBucketEstimate

    def matches(self, other: "NetworkFingerprint", tolerance: float = 0.10) -> bool:
        """True when two fingerprints agree within ``tolerance``.

        F5.5: "only comparing results to future experiments when these
        baselines match."  Token-bucket presence must agree exactly;
        continuous quantities within the relative tolerance.
        """
        if self.token_bucket.detected != other.token_bucket.detected:
            return False

        def close(a: float, b: float) -> bool:
            if math.isinf(a) and math.isinf(b):
                return True
            scale = max(abs(a), abs(b), 1e-9)
            return abs(a - b) / scale <= tolerance

        checks = [
            close(self.base_bandwidth_gbps, other.base_bandwidth_gbps),
            close(self.base_latency_ms, other.base_latency_ms),
        ]
        if self.token_bucket.detected:
            checks.extend(
                [
                    close(self.token_bucket.high_gbps, other.token_bucket.high_gbps),
                    close(self.token_bucket.low_gbps, other.token_bucket.low_gbps),
                    close(
                        self.token_bucket.time_to_empty_s,
                        other.token_bucket.time_to_empty_s,
                    ),
                ]
            )
        return all(checks)


def identify_token_bucket(
    model: LinkModel,
    probe_interval_s: float = 1.0,
    max_duration_s: float = 7_200.0,
    drop_fraction: float = 0.5,
    stabilize_intervals: int = 30,
    rest_probe_s: float = 60.0,
) -> TokenBucketEstimate:
    """Probe a link until its bandwidth drops and stabilizes.

    The link is driven at full offered load; the high rate is the
    average before the sustained drop, the low rate the average after
    stabilization.  If no drop of at least ``drop_fraction`` occurs
    within ``max_duration_s``, no token bucket is reported (GCE and
    HPCCloud behave this way).  The replenish rate is estimated by
    resting ``rest_probe_s`` and measuring how much high-rate sending
    the accumulated budget sustains.
    """
    model.reset()
    offered = 1e9  # effectively unlimited offered load
    samples: list[float] = []
    elapsed = 0.0
    while elapsed < max_duration_s:
        rate = min(offered, model.limit())
        step = min(probe_interval_s, max(model.horizon(rate), 1e-6))
        model.advance(step, rate)
        samples.append(rate)
        elapsed += step
        if len(samples) > stabilize_intervals:
            head = float(np.mean(samples[: max(3, stabilize_intervals // 3)]))
            tail = samples[-stabilize_intervals:]
            tail_mean = float(np.mean(tail))
            tail_stable = float(np.std(tail)) < 0.05 * max(tail_mean, 1e-9)
            if tail_stable and tail_mean < head * (1.0 - drop_fraction):
                return _finish_identification(
                    model, samples, tail_mean, head, rest_probe_s
                )
    return TokenBucketEstimate(
        detected=False,
        time_to_empty_s=math.inf,
        high_gbps=float(np.mean(samples)) if samples else 0.0,
        low_gbps=float(np.mean(samples)) if samples else 0.0,
        replenish_gbps=0.0,
    )


def _finish_identification(
    model: LinkModel,
    samples: list[float],
    low_gbps: float,
    high_gbps: float,
    rest_probe_s: float,
) -> TokenBucketEstimate:
    """Locate the drop instant and estimate the replenish rate."""
    threshold = (high_gbps + low_gbps) / 2.0
    drop_index = next(
        (i for i, s in enumerate(samples) if s < threshold), len(samples) - 1
    )
    time_to_empty = float(drop_index)

    # Replenish estimation: rest, then burn the accumulated budget at
    # the high rate; budget ~= replenish * rest time.
    _drain_fully(model, low_gbps)
    remaining_rest = rest_probe_s
    while remaining_rest > 1e-9:
        step = min(remaining_rest, max(model.horizon(0.0), 1e-6))
        model.advance(step, 0.0)
        remaining_rest -= step
    burned = 0.0
    elapsed = 0.0
    while elapsed < rest_probe_s * 100:
        rate = model.limit()
        if rate < threshold:
            break
        step = min(0.05, max(model.horizon(rate), 1e-6))
        model.advance(step, rate)
        burned += (rate - low_gbps) * step
        elapsed += step
    replenish = burned / rest_probe_s if rest_probe_s > 0 else 0.0
    return TokenBucketEstimate(
        detected=True,
        time_to_empty_s=time_to_empty,
        high_gbps=high_gbps,
        low_gbps=low_gbps,
        replenish_gbps=replenish,
    )


def _drain_fully(model: LinkModel, low_gbps: float) -> None:
    """Send at full speed until the model is pinned at the low rate."""
    for _ in range(1_000_000):
        rate = model.limit()
        if rate <= low_gbps * 1.01:
            return
        step = max(model.horizon(rate), 1e-6)
        model.advance(min(step, 60.0), rate)


def fingerprint_link(
    model: LinkModel,
    latency_model: LatencyModel,
    rng: np.random.Generator | None = None,
    base_probe_s: float = 30.0,
) -> NetworkFingerprint:
    """Produce the full F5.2 baseline bundle for one link.

    Base bandwidth is measured over a short fresh-state probe (before
    any token bucket can empty); base latency from an unloaded latency
    sample; loaded latency from the 99th percentile under load.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    model.reset()
    transferred = 0.0
    elapsed = 0.0
    while elapsed < base_probe_s:
        rate = model.limit()
        step = min(1.0, max(model.horizon(rate), 1e-6), base_probe_s - elapsed)
        model.advance(step, rate)
        transferred += rate * step
        elapsed += step
    base_bw = transferred / base_probe_s

    rtts = latency_model.sample_rtts_ms(20_000, rng)
    bucket = identify_token_bucket(model)
    model.reset()
    return NetworkFingerprint(
        base_bandwidth_gbps=base_bw,
        base_latency_ms=float(np.median(rtts)),
        loaded_latency_ms=float(np.percentile(rtts, 99)),
        token_bucket=bucket,
    )
