"""Measurement campaigns: the experiments of Table 3.

A campaign pairs VMs of one instance type on one cloud and measures
bandwidth continuously for days to weeks under one or more transfer
patterns.  :func:`table3_campaigns` enumerates the paper's eleven
configurations; :func:`run_campaign` executes one and summarizes it the
way Table 3 does (duration, variability verdict, cost) while keeping
the full trace for the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.instances import InstanceSpec, lookup_instance
from repro.cloud.providers import CloudProvider, default_providers
from repro.emulator.patterns import (
    FIVE_THIRTY,
    FULL_SPEED,
    TEN_THIRTY,
    TrafficPattern,
)
from repro.measurement.capture import RetransmissionModel
from repro.measurement.iperf import BandwidthProbe
from repro.trace import BandwidthTrace
from repro.units import SECONDS_PER_WEEK

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign", "table3_campaigns"]

#: Coefficient-of-variation threshold above which Table 3's "Exhibits
#: Variability" column reads Yes.  Every measured configuration did.
VARIABILITY_COV_THRESHOLD = 0.01


@dataclass(frozen=True)
class CampaignConfig:
    """One row of Table 3 before execution."""

    provider_name: str
    instance_name: str
    duration_s: float
    patterns: tuple[TrafficPattern, ...] = (FULL_SPEED, TEN_THIRTY, FIVE_THIRTY)
    #: Benchmark write() size in bytes; GCE's retransmission behaviour
    #: depends on it heavily (Figure 12).
    write_size_bytes: int = 131_072
    seed: int = 0
    #: The unscaled campaign length in weeks (what Table 3 prints),
    #: when this config was derived from the Table 3 catalog.
    nominal_weeks: float | None = None

    @property
    def instance(self) -> InstanceSpec:
        """Catalog entry for the configured instance type."""
        return lookup_instance(self.instance_name)


@dataclass
class CampaignResult:
    """Traces and Table 3 summary for one campaign."""

    config: CampaignConfig
    traces: dict[str, BandwidthTrace] = field(default_factory=dict)

    def trace(self, pattern_name: str) -> BandwidthTrace:
        """Trace for one pattern; raises KeyError when absent."""
        return self.traces[pattern_name]

    @property
    def exhibits_variability(self) -> bool:
        """Table 3 verdict: does any pattern show meaningful spread?"""
        return any(
            t.coefficient_of_variation() > VARIABILITY_COV_THRESHOLD
            for t in self.traces.values()
            if len(t) > 1
        )

    @property
    def total_traffic_gbit(self) -> float:
        """Data transferred across all patterns."""
        return sum(t.total_traffic_gbit() for t in self.traces.values())

    def summary_row(self) -> dict:
        """One Table 3 row as a plain dict."""
        spec = self.config.instance
        qos = "N/A" if spec.qos_gbps is None else (
            f"<= {spec.qos_gbps:g}" if spec.qos_is_upper_bound else f"{spec.qos_gbps:g}"
        )
        weeks = self.config.nominal_weeks
        if weeks is None:
            weeks = self.config.duration_s / SECONDS_PER_WEEK
        return {
            "cloud": self.config.provider_name,
            "instance": self.config.instance_name,
            "qos_gbps": qos,
            "duration_weeks": round(weeks, 2),
            "exhibits_variability": self.exhibits_variability,
            "cost_usd": spec.cost_usd,
        }


def run_campaign(
    config: CampaignConfig,
    provider: CloudProvider | None = None,
) -> CampaignResult:
    """Execute one campaign configuration.

    Each pattern gets its own VM pair (a fresh link-model incarnation),
    exactly as the paper ran separate pairs per scenario.
    """
    if provider is None:
        provider = default_providers()[config.provider_name]
    rng = np.random.default_rng(config.seed)
    retrans = RetransmissionModel(
        rate=provider.retransmission_rate(config.write_size_bytes),
        dispersion=1.15 if provider.name == "google" else 1.0,
    )
    result = CampaignResult(config=config)
    for pattern in config.patterns:
        model = provider.link_model(config.instance_name, rng)
        probe = BandwidthProbe(
            model=model,
            pattern=pattern,
            retransmissions=retrans,
        )
        trace = probe.run(
            config.duration_s,
            rng=rng,
            label=f"{config.provider_name}/{config.instance_name}/{pattern.name}",
        )
        result.traces[pattern.name] = trace
    return result


def table3_campaigns(
    duration_scale: float = 1.0, seed: int = 0
) -> list[CampaignConfig]:
    """The eleven campaign configurations of Table 3.

    ``duration_scale`` shrinks every campaign proportionally — the full
    21 weeks of measurement are faithful but rarely what a test run
    wants.  Scaled durations are floored at one hour so every campaign
    still yields hundreds of samples.
    """
    if duration_scale <= 0:
        raise ValueError("duration_scale must be positive")
    rows: list[tuple[str, str, float]] = [
        ("amazon", "c5.xlarge", 3.0),
        ("amazon", "m5.xlarge", 3.0),
        ("amazon", "c5.9xlarge", 1.0 / 7.0),
        ("amazon", "m4.16xlarge", 1.0 / 7.0),
        ("google", "gce-1core", 3.0),
        ("google", "gce-2core", 3.0),
        ("google", "gce-4core", 3.0),
        ("google", "gce-8core", 3.0),
        ("hpccloud", "hpccloud-2core", 1.0),
        ("hpccloud", "hpccloud-4core", 1.0),
        ("hpccloud", "hpccloud-8core", 1.0),
    ]
    configs = []
    for i, (provider_name, instance_name, weeks) in enumerate(rows):
        duration = max(weeks * SECONDS_PER_WEEK * duration_scale, 3_600.0)
        configs.append(
            CampaignConfig(
                provider_name=provider_name,
                instance_name=instance_name,
                duration_s=duration,
                seed=seed + i,
                nominal_weeks=weeks,
            )
        )
    return configs
