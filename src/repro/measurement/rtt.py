"""The latency probe: per-packet RTTs from short TCP streams.

Section 3.2's method: run 10-second iperf streams, capture every packet
header, and compute the time from a TCP segment reaching the (virtual)
device to its acknowledgement.  The probe reproduces that shape: given
a provider latency model and an achieved bandwidth, it generates the
per-packet RTT sample vector for one stream (Figures 7 and 8 plot
exactly these vectors; the full study collected 50 million of them).
"""

from __future__ import annotations

import numpy as np

from repro.netmodel.latency import LatencyModel
from repro.trace import RttTrace
from repro.units import gbit_to_bytes

__all__ = ["LatencyProbe"]


class LatencyProbe:
    """Generates per-packet RTT traces for a 10-second stream."""

    def __init__(
        self,
        latency_model: LatencyModel,
        packet_bytes: int = 9_000,
        max_samples: int = 500_000,
    ) -> None:
        if packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.latency_model = latency_model
        self.packet_bytes = int(packet_bytes)
        self.max_samples = int(max_samples)

    def packets_for_stream(
        self, bandwidth_gbps: float, duration_s: float = 10.0
    ) -> int:
        """Packets a stream at a given bandwidth emits in ``duration_s``."""
        if bandwidth_gbps < 0 or duration_s < 0:
            raise ValueError("bandwidth and duration cannot be negative")
        volume_bytes = gbit_to_bytes(bandwidth_gbps * duration_s)
        return int(volume_bytes // self.packet_bytes)

    def run(
        self,
        bandwidth_gbps: float,
        duration_s: float = 10.0,
        rng: np.random.Generator | None = None,
        label: str = "",
    ) -> RttTrace:
        """One stream's RTT trace at the achieved bandwidth.

        The number of packets is capped at ``max_samples`` (uniformly
        thinned) to keep memory bounded; timestamps spread packets
        evenly across the stream, which is what a CBR iperf stream
        looks like at this granularity.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        n_packets = self.packets_for_stream(bandwidth_gbps, duration_s)
        n = min(n_packets, self.max_samples)
        if n == 0:
            return RttTrace(times=np.empty(0), values=np.empty(0), label=label)
        times = np.linspace(0.0, duration_s, n, endpoint=False)
        rtts = self.latency_model.sample_rtts_ms(n, rng)
        return RttTrace(times=times, values=rtts, label=label)
