"""The bandwidth probe: iperf-style pattern-driven measurement.

Combines an :class:`~repro.emulator.link.EmulatedLink` with a
:class:`~repro.measurement.capture.RetransmissionModel` to produce the
paper's primary data shape: a :class:`~repro.trace.BandwidthTrace` of
10-second bandwidth averages with per-window retransmission counts
(over 1 million such datapoints across Table 3's campaigns).
"""

from __future__ import annotations

import numpy as np

from repro.emulator.link import EmulatedLink
from repro.emulator.patterns import TrafficPattern
from repro.measurement.capture import RetransmissionModel
from repro.netmodel.base import LinkModel
from repro.trace import BandwidthTrace

__all__ = ["BandwidthProbe"]


class BandwidthProbe:
    """Measures achieved bandwidth through a shaped link."""

    def __init__(
        self,
        model: LinkModel,
        pattern: TrafficPattern,
        retransmissions: RetransmissionModel | None = None,
        offered_gbps: float = 100.0,
        report_interval_s: float = 10.0,
    ) -> None:
        self.link = EmulatedLink(
            model=model,
            pattern=pattern,
            offered_gbps=offered_gbps,
            report_interval_s=report_interval_s,
        )
        self.retransmissions = retransmissions or RetransmissionModel(rate=0.0)
        self.pattern = pattern

    def run(
        self,
        duration_s: float,
        rng: np.random.Generator | None = None,
        label: str = "",
    ) -> BandwidthTrace:
        """Measure for ``duration_s`` wall-clock seconds.

        Like the underlying link, the probe does not reset the model:
        back-to-back runs observe carried-over shaper state.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        samples = self.link.run(duration_s)
        times = np.array([s.t_start for s in samples])
        bandwidths = np.array([s.bandwidth_gbps for s in samples])
        durations = np.array([s.duration_s for s in samples])
        retrans = np.array(
            [
                self.retransmissions.sample_count(s.transferred_gbit, rng)
                for s in samples
            ],
            dtype=float,
        )
        return BandwidthTrace(
            times=times,
            values=bandwidths,
            retransmissions=retrans,
            durations=durations,
            label=label or f"{self.pattern.name}",
        )
