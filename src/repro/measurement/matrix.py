"""Matrix execution for measurement campaigns (Table 3 at scale).

The seed library could run one :func:`~repro.measurement.campaign.run_campaign`
at a time; this module gives the Table 3 catalog what scenario sweeps
already had — content-hashed cells, store-backed caching, and pluggable
executors — by mapping :class:`~repro.measurement.campaign.CampaignConfig`
onto the :mod:`repro.runtime` layer:

* :func:`campaign_cell_id` content-hashes a config into a stable
  ``cmp-…`` key, so re-running a matrix after adding one configuration
  only executes the new cell;
* :func:`run_campaign_matrix` drives the whole catalog through a
  :class:`~repro.runtime.campaign.CampaignRunner` — serially, across a
  chunked process pool, or sharded onto other machines via
  ``python -m repro worker``;
* results persist as ordinary :class:`~repro.measurement.repository.TraceRepository`
  artifacts (same documents, same manifest metadata), so a matrix store
  doubles as a trace archive for the figures.

Patterns are referenced *by name* in cell payloads (the paper's three:
``full-speed``, ``10-30``, ``5-30``), which is what lets a shard
manifest reconstruct the exact configuration on another machine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.emulator.patterns import pattern_by_name
from repro.measurement.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.measurement.repository import (
    TraceRepository,
    campaign_from_documents,
    campaign_to_documents,
    run_wrapping_corruption,
)
from repro.runtime.campaign import ArtifactCodec, CampaignRunner, RuntimeOutcome
from repro.runtime.cell import Cell
from repro.runtime.executors import ProcessPoolExecutor, SerialExecutor

__all__ = [
    "MEASUREMENT_CODEC",
    "MatrixOutcome",
    "campaign_cell_id",
    "campaign_cells",
    "campaign_payload",
    "config_from_payload",
    "decode_campaign_result",
    "encode_campaign_result",
    "run_campaign_matrix",
    "run_campaign_payload",
]


def campaign_payload(config: CampaignConfig) -> dict:
    """One config as a JSON payload (patterns by catalog name)."""
    for pattern in config.patterns:
        # Resolve through the catalog so a drifted or ad-hoc pattern
        # fails here, on the coordinator, not on a worker machine.
        catalog = pattern_by_name(pattern.name)
        if catalog != pattern:
            raise ValueError(
                f"pattern {pattern.name!r} differs from the catalog "
                "entry; matrix cells can only ship catalog patterns"
            )
    return {
        "provider_name": config.provider_name,
        "instance_name": config.instance_name,
        "duration_s": float(config.duration_s),
        "patterns": [pattern.name for pattern in config.patterns],
        "write_size_bytes": int(config.write_size_bytes),
        "seed": int(config.seed),
        "nominal_weeks": config.nominal_weeks,
    }


def config_from_payload(payload: Mapping) -> CampaignConfig:
    """Inverse of :func:`campaign_payload`."""
    return CampaignConfig(
        provider_name=payload["provider_name"],
        instance_name=payload["instance_name"],
        duration_s=payload["duration_s"],
        patterns=tuple(
            pattern_by_name(name) for name in payload["patterns"]
        ),
        write_size_bytes=payload["write_size_bytes"],
        seed=payload["seed"],
        nominal_weeks=payload["nominal_weeks"],
    )


def campaign_cell_id(config: CampaignConfig) -> str:
    """Content hash of a campaign config: the matrix cache key."""
    body = json.dumps(campaign_payload(config), sort_keys=True)
    digest = hashlib.sha256(body.encode()).hexdigest()[:16]
    return f"cmp-{digest}"


def run_campaign_payload(payload: Mapping) -> CampaignResult:
    """Cell function: reconstruct the config and run the campaign."""
    return run_campaign(config_from_payload(payload))


def encode_campaign_result(result: CampaignResult) -> tuple[dict, dict]:
    """Codec encoder: trace-repository documents, as always."""
    return campaign_to_documents(result)


def decode_campaign_result(cell: Cell, documents: Mapping) -> CampaignResult:
    """Codec decoder: rebuild a :class:`CampaignResult` from the store."""
    return campaign_from_documents(documents)


#: The measurement layer's store codec, import-referenced for shards.
MEASUREMENT_CODEC = ArtifactCodec(
    encode_ref="repro.measurement.matrix:encode_campaign_result",
    decode_ref="repro.measurement.matrix:decode_campaign_result",
)


def campaign_cells(configs: Sequence[CampaignConfig]) -> list[Cell]:
    """Map campaign configs to runtime cells."""
    return [
        Cell(
            fn="repro.measurement.matrix:run_campaign_payload",
            payload=campaign_payload(config),
            key=campaign_cell_id(config),
        )
        for config in configs
    ]


@dataclass
class MatrixOutcome(RuntimeOutcome):
    """A matrix run's :class:`~repro.runtime.campaign.RuntimeOutcome`
    (results keyed by ``campaign_cell_id``), plus the Table 3 view."""

    def summary_rows(self) -> list[dict]:
        """Table 3 rows, deterministically ordered by cell id."""
        return [self.results[cid].summary_row() for cid in sorted(self.results)]


def run_campaign_matrix(
    configs: Sequence[CampaignConfig],
    repository: TraceRepository | None = None,
    workers: int = 1,
    executor: Any = None,
) -> MatrixOutcome:
    """Execute a catalog of campaign configs with caching.

    The Table 3 workflow the paper priced at thousands of dollars::

        configs = table3_campaigns(duration_scale=1e-4, seed=0)
        outcome = run_campaign_matrix(configs, repository=repo, workers=4)
        for row in outcome.summary_rows():
            print(row)

    Cached cells reload from the repository; pending ones run through
    the chosen executor (``workers`` picks serial vs chunked pool when
    ``executor`` is not given) and persist as they complete.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if executor is None:
        executor = SerialExecutor() if workers == 1 else ProcessPoolExecutor(workers)
    runner = CampaignRunner(
        campaign_cells(configs),
        store=repository.artifacts if repository else None,
        codec=MEASUREMENT_CODEC,
        executor=executor,
    )
    outcome = run_wrapping_corruption(runner)
    return MatrixOutcome(
        results=outcome.results,
        cached_keys=outcome.cached_keys,
        computed_keys=outcome.computed_keys,
    )
