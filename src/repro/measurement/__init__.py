"""Measurement harness: probes, campaigns, and fingerprinting.

This package is the reproduction of the paper's data-collection
tooling (Section 3):

* :mod:`repro.measurement.capture` — segment/retransmission accounting
  (the offline wireshark analysis of the tcpdump captures);
* :mod:`repro.measurement.iperf` — the bandwidth probe: pattern-driven
  transfers summarized every 10 seconds with retransmission counts;
* :mod:`repro.measurement.rtt` — the latency probe: per-packet RTTs
  from 10-second TCP streams (Figures 7, 8);
* :mod:`repro.measurement.campaign` — week-long measurement campaigns
  across providers, instance types and patterns (Table 3);
* :mod:`repro.measurement.matrix` — whole-catalog matrix execution on
  the :mod:`repro.runtime` layer: content-hashed cells, store-backed
  caching, serial/pool/shard executors;
* :mod:`repro.measurement.fingerprint` — the F5.2 protocol: baseline
  micro-benchmarks and token-bucket parameter identification
  (Figure 11's methodology).
"""

from repro.measurement.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    table3_campaigns,
)
from repro.measurement.capture import RetransmissionModel, segments_for_gbit
from repro.measurement.matrix import (
    MatrixOutcome,
    campaign_cell_id,
    run_campaign_matrix,
)
from repro.measurement.fingerprint import (
    NetworkFingerprint,
    TokenBucketEstimate,
    fingerprint_link,
    identify_token_bucket,
)
from repro.measurement.iperf import BandwidthProbe
from repro.measurement.repository import (
    RepositoryCorruptionError,
    TraceRepository,
)
from repro.measurement.rtt import LatencyProbe

__all__ = [
    "RetransmissionModel",
    "segments_for_gbit",
    "BandwidthProbe",
    "LatencyProbe",
    "TraceRepository",
    "RepositoryCorruptionError",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "run_campaign_matrix",
    "MatrixOutcome",
    "campaign_cell_id",
    "table3_campaigns",
    "NetworkFingerprint",
    "TokenBucketEstimate",
    "identify_token_bucket",
    "fingerprint_link",
]
