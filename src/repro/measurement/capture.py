"""Segment and retransmission accounting.

The paper captured all packet headers with tcpdump and analyzed them
offline with wireshark; Figure 9 summarizes the result: retransmissions
are negligible on EC2 and HPCCloud but common on GCE (~2 % of segments
with the benchmark's default 128 KB writes).

This module converts transferred volumes into segment counts and
samples retransmission counts from a per-segment loss probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import gbit_to_bytes

__all__ = ["segments_for_gbit", "RetransmissionModel"]

#: Default TCP maximum segment size on a 1500-byte-MTU path.
DEFAULT_MSS_BYTES = 1_448


def segments_for_gbit(volume_gbit: float, mss_bytes: int = DEFAULT_MSS_BYTES) -> int:
    """Number of MSS-sized segments needed to carry ``volume_gbit``."""
    if volume_gbit < 0:
        raise ValueError("volume cannot be negative")
    if mss_bytes <= 0:
        raise ValueError("MSS must be positive")
    return int(np.ceil(gbit_to_bytes(volume_gbit) / mss_bytes))


@dataclass(frozen=True)
class RetransmissionModel:
    """Per-segment retransmission sampling for one provider/NIC regime.

    ``rate`` is the per-segment retransmission probability (from
    :meth:`repro.netmodel.nic.VirtualNic.retransmission_rate` or a
    provider profile); counts are Poisson-sampled per reporting window,
    which matches the bursty-but-memoryless pattern of driver-queue
    overflows well enough for the Figure 9 distributions.
    """

    rate: float
    mss_bytes: int = DEFAULT_MSS_BYTES
    #: Dispersion multiplier: >1 makes counts over-dispersed by mixing
    #: the Poisson intensity with a gamma factor (GCE's violin in
    #: Figure 9 is wide, not a tight Poisson spike).
    dispersion: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be a probability, got {self.rate}")
        if self.dispersion < 1.0:
            raise ValueError("dispersion must be >= 1")

    def sample_count(
        self, volume_gbit: float, rng: np.random.Generator
    ) -> int:
        """Retransmissions for one reporting window carrying a volume."""
        segments = segments_for_gbit(volume_gbit, self.mss_bytes)
        lam = segments * self.rate
        if lam <= 0:
            return 0
        if self.dispersion > 1.0:
            # Gamma-Poisson mixture: mean lam, variance inflated by the
            # dispersion factor.
            shape = 1.0 / (self.dispersion - 1.0)
            lam = lam * rng.gamma(shape, 1.0 / shape)
        return int(rng.poisson(lam))

    def expected_count(self, volume_gbit: float) -> float:
        """Mean retransmissions for a window carrying ``volume_gbit``."""
        return segments_for_gbit(volume_gbit, self.mss_bytes) * self.rate
