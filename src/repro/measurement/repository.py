"""Trace repository: persist and reload measurement campaigns.

The paper publishes its raw data on Zenodo ("all data we collected is
available in our repository").  This module is the library's
equivalent: a directory-backed store for campaign results with a
manifest, so measurement runs can be archived, shared, and re-analyzed
without re-simulation — and so baselines (F5.2) have a durable home.

Since the :mod:`repro.runtime` refactor the repository is a typed
facade over :class:`repro.runtime.store.ArtifactStore`: the same
layout as before (``manifest.json`` plus one directory of JSON files
per campaign), but with atomic, crash-safe writes — every file is
temp-written, fsynced, and renamed into place, and a campaign's files
always land *before* its manifest entry, so an interrupted store can
no longer strand a manifest pointing at missing files.

Layout::

    <root>/
      manifest.json                    index of stored campaigns
      <campaign-id>/
        config.json                    provider / instance / duration
        <pattern>.json                 one BandwidthTrace per pattern

The module also owns the campaign <-> store-document mapping
(:func:`campaign_to_documents` / :func:`campaign_from_documents`),
which the scenario and measurement runtime codecs reuse so every layer
writes the same bytes for the same campaign.
"""

from __future__ import annotations

from typing import Mapping

from repro.measurement.campaign import CampaignConfig, CampaignResult
from repro.runtime.store import ArtifactStore, StoreCorruptionError, validate_key
from repro.trace import BandwidthTrace

__all__ = [
    "TraceRepository",
    "RepositoryCorruptionError",
    "campaign_to_documents",
    "campaign_from_documents",
    "run_wrapping_corruption",
]


def run_wrapping_corruption(runner):
    """Run a :class:`~repro.runtime.campaign.CampaignRunner`, translating
    raw store corruption into :class:`RepositoryCorruptionError`.

    Shared by every repository-backed campaign adapter (scenario
    sweeps, measurement matrices) so callers keep catching the same
    exception they did before the runtime refactor.
    """
    try:
        return runner.run()
    except RepositoryCorruptionError:
        raise
    except StoreCorruptionError as exc:
        raise RepositoryCorruptionError(str(exc)) from exc


class RepositoryCorruptionError(StoreCorruptionError):
    """A manifest entry and the files on disk disagree.

    Raised when loading a campaign whose directory, config, or trace
    files have gone missing behind the manifest's back (partial copy,
    manual deletion) — a distinct failure from the ``KeyError`` of
    asking for a campaign that was never stored.  The atomic write
    ordering in :class:`repro.runtime.store.ArtifactStore` means a
    *crashed writer* can no longer produce this state.
    """


def _validate_id(campaign_id: str) -> None:
    validate_key(campaign_id, kind="campaign id")


def campaign_to_documents(result: CampaignResult) -> tuple[dict, dict]:
    """Encode a campaign result as store documents plus manifest meta.

    The document set mirrors the on-disk layout the repository has
    always used: a ``config`` document and one document per pattern
    trace.  A pattern named ``config`` would collide with the config
    document, so it is refused.
    """
    if "config" in result.traces:
        raise ValueError("pattern name 'config' collides with the config document")
    config = result.config
    documents: dict[str, dict] = {
        "config": {
            "provider_name": config.provider_name,
            "instance_name": config.instance_name,
            "duration_s": config.duration_s,
            "write_size_bytes": config.write_size_bytes,
            "seed": config.seed,
            "nominal_weeks": config.nominal_weeks,
            "patterns": sorted(result.traces),
        }
    }
    for pattern, trace in result.traces.items():
        documents[pattern] = trace.to_dict()
    meta = {
        "provider": config.provider_name,
        "instance": config.instance_name,
        "duration_s": config.duration_s,
        "patterns": sorted(result.traces),
    }
    return documents, meta


def campaign_from_documents(documents: Mapping[str, Mapping]) -> CampaignResult:
    """Inverse of :func:`campaign_to_documents`."""
    meta = documents["config"]
    config = CampaignConfig(
        provider_name=meta["provider_name"],
        instance_name=meta["instance_name"],
        duration_s=meta["duration_s"],
        write_size_bytes=meta["write_size_bytes"],
        seed=meta["seed"],
        nominal_weeks=meta.get("nominal_weeks"),
    )
    result = CampaignResult(config=config)
    for pattern in meta["patterns"]:
        result.traces[pattern] = BandwidthTrace.from_dict(documents[pattern])
    return result


class TraceRepository:
    """Directory-backed store for campaign traces."""

    def __init__(self, root) -> None:
        self.artifacts = ArtifactStore(root)

    @property
    def root(self):
        return self.artifacts.root

    # -- manifest ----------------------------------------------------------
    def campaign_ids(self) -> list[str]:
        """All stored campaign identifiers, sorted."""
        return self.artifacts.keys()

    def __contains__(self, campaign_id: str) -> bool:
        return campaign_id in self.artifacts

    # -- store / load ------------------------------------------------------
    def store(self, campaign_id: str, result: CampaignResult):
        """Persist a campaign result; refuses to overwrite silently."""
        _validate_id(campaign_id)
        documents, meta = campaign_to_documents(result)
        if campaign_id in self.artifacts:
            raise ValueError(f"campaign {campaign_id!r} already stored")
        return self.artifacts.put(campaign_id, documents, meta=meta)

    def load(self, campaign_id: str) -> CampaignResult:
        """Reload a stored campaign result.

        Raises :class:`ValueError` for an unsafe id (so a crafted id in
        a shared manifest can never escape the repository root),
        :class:`KeyError` for an unknown campaign, and
        :class:`RepositoryCorruptionError` when the manifest points at
        files that no longer exist.
        """
        _validate_id(campaign_id)
        if campaign_id not in self.artifacts:
            raise KeyError(f"no stored campaign {campaign_id!r}")
        try:
            config_doc = self.artifacts.read_document(campaign_id, "config")
            documents: dict[str, Mapping] = {"config": config_doc}
            for pattern in config_doc["patterns"]:
                documents[pattern] = self.artifacts.read_document(
                    campaign_id, pattern
                )
        except StoreCorruptionError as exc:
            raise RepositoryCorruptionError(
                f"campaign {campaign_id!r} is in the manifest but files "
                f"are missing on disk; the store is corrupt — delete the "
                f"manifest entry or restore the files ({exc})"
            ) from exc
        return campaign_from_documents(documents)

    def delete(self, campaign_id: str) -> None:
        """Remove a stored campaign and its files.

        Tolerates a missing campaign directory (the corrupt
        manifest-only state :meth:`load` reports) so a broken entry can
        always be cleared, as the corruption error's message advises.
        """
        _validate_id(campaign_id)
        try:
            self.artifacts.delete(campaign_id)
        except KeyError:
            raise KeyError(f"no stored campaign {campaign_id!r}") from None

    def summary_rows(self) -> list[dict]:
        """Table-3-style rows for every stored campaign."""
        manifest = self.artifacts.manifest()
        return [
            {
                "campaign_id": campaign_id,
                "provider": entry["provider"],
                "instance": entry["instance"],
                "duration_s": entry["duration_s"],
                "patterns": entry["patterns"],
            }
            for campaign_id, entry in sorted(manifest.items())
        ]
