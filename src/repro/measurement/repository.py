"""Trace repository: persist and reload measurement campaigns.

The paper publishes its raw data on Zenodo ("all data we collected is
available in our repository").  This module is the library's
equivalent: a directory-backed store for campaign results with a
manifest, so measurement runs can be archived, shared, and re-analyzed
without re-simulation — and so baselines (F5.2) have a durable home.

Layout::

    <root>/
      manifest.json                    index of stored campaigns
      <campaign-id>/
        config.json                    provider / instance / duration
        <pattern>.json                 one BandwidthTrace per pattern
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.measurement.campaign import CampaignConfig, CampaignResult
from repro.trace import BandwidthTrace

__all__ = ["TraceRepository", "RepositoryCorruptionError"]

_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")


class RepositoryCorruptionError(RuntimeError):
    """A manifest entry and the files on disk disagree.

    Raised when loading a campaign whose directory, config, or trace
    files have gone missing behind the manifest's back (partial copy,
    manual deletion, interrupted store) — a distinct failure from the
    ``KeyError`` of asking for a campaign that was never stored.
    """


def _validate_id(campaign_id: str) -> None:
    # fullmatch (not match) so a trailing newline cannot ride along,
    # and all-dot names are refused: "." and ".." are valid per the
    # character class but resolve outside the campaign's directory.
    if not _ID_RE.fullmatch(campaign_id) or set(campaign_id) <= {"."}:
        raise ValueError(
            f"campaign id {campaign_id!r} must be filesystem-safe "
            "(letters, digits, dot, dash, underscore; not all dots)"
        )


@dataclass(frozen=True)
class _ManifestEntry:
    campaign_id: str
    provider: str
    instance: str
    duration_s: float
    patterns: tuple[str, ...]


class TraceRepository:
    """Directory-backed store for campaign traces."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / "manifest.json"
        if not self._manifest_path.exists():
            self._write_manifest({})

    # -- manifest ----------------------------------------------------------
    def _read_manifest(self) -> dict:
        return json.loads(self._manifest_path.read_text())

    def _write_manifest(self, manifest: dict) -> None:
        self._manifest_path.write_text(json.dumps(manifest, indent=2))

    def campaign_ids(self) -> list[str]:
        """All stored campaign identifiers, sorted."""
        return sorted(self._read_manifest())

    def __contains__(self, campaign_id: str) -> bool:
        return campaign_id in self._read_manifest()

    # -- store / load ------------------------------------------------------
    def store(self, campaign_id: str, result: CampaignResult) -> Path:
        """Persist a campaign result; refuses to overwrite silently."""
        _validate_id(campaign_id)
        if campaign_id in self:
            raise ValueError(f"campaign {campaign_id!r} already stored")
        directory = self.root / campaign_id
        directory.mkdir()
        config = result.config
        (directory / "config.json").write_text(
            json.dumps(
                {
                    "provider_name": config.provider_name,
                    "instance_name": config.instance_name,
                    "duration_s": config.duration_s,
                    "write_size_bytes": config.write_size_bytes,
                    "seed": config.seed,
                    "nominal_weeks": config.nominal_weeks,
                    "patterns": sorted(result.traces),
                },
                indent=2,
            )
        )
        for pattern, trace in result.traces.items():
            trace.save(directory / f"{pattern}.json")

        manifest = self._read_manifest()
        manifest[campaign_id] = {
            "provider": config.provider_name,
            "instance": config.instance_name,
            "duration_s": config.duration_s,
            "patterns": sorted(result.traces),
        }
        self._write_manifest(manifest)
        return directory

    def load(self, campaign_id: str) -> CampaignResult:
        """Reload a stored campaign result.

        Raises :class:`ValueError` for an unsafe id (so a crafted id in
        a shared manifest can never escape the repository root),
        :class:`KeyError` for an unknown campaign, and
        :class:`RepositoryCorruptionError` when the manifest points at
        files that no longer exist.
        """
        _validate_id(campaign_id)
        if campaign_id not in self:
            raise KeyError(f"no stored campaign {campaign_id!r}")
        directory = self.root / campaign_id
        config_path = directory / "config.json"
        if not config_path.exists():
            raise RepositoryCorruptionError(
                f"campaign {campaign_id!r} is in the manifest but its "
                f"config file {config_path} is missing; the store is "
                "corrupt — delete the manifest entry or restore the files"
            )
        meta = json.loads(config_path.read_text())
        config = CampaignConfig(
            provider_name=meta["provider_name"],
            instance_name=meta["instance_name"],
            duration_s=meta["duration_s"],
            write_size_bytes=meta["write_size_bytes"],
            seed=meta["seed"],
            nominal_weeks=meta.get("nominal_weeks"),
        )
        result = CampaignResult(config=config)
        for pattern in meta["patterns"]:
            trace_path = directory / f"{pattern}.json"
            if not trace_path.exists():
                raise RepositoryCorruptionError(
                    f"campaign {campaign_id!r} lists pattern {pattern!r} "
                    f"but its trace file {trace_path} is missing; the "
                    "store is corrupt — re-run the campaign or delete it"
                )
            result.traces[pattern] = BandwidthTrace.from_dict(
                json.loads(trace_path.read_text())
            )
        return result

    def delete(self, campaign_id: str) -> None:
        """Remove a stored campaign and its files.

        Tolerates a missing campaign directory (the corrupt
        manifest-only state :meth:`load` reports) so a broken entry can
        always be cleared, as the corruption error's message advises.
        """
        _validate_id(campaign_id)
        if campaign_id not in self:
            raise KeyError(f"no stored campaign {campaign_id!r}")
        directory = self.root / campaign_id
        if directory.exists():
            for path in directory.glob("*.json"):
                path.unlink()
            directory.rmdir()
        manifest = self._read_manifest()
        del manifest[campaign_id]
        self._write_manifest(manifest)

    def summary_rows(self) -> list[dict]:
        """Table-3-style rows for every stored campaign."""
        manifest = self._read_manifest()
        return [
            {
                "campaign_id": campaign_id,
                "provider": entry["provider"],
                "instance": entry["instance"],
                "duration_s": entry["duration_s"],
                "patterns": entry["patterns"],
            }
            for campaign_id, entry in sorted(manifest.items())
        ]
