"""Provider objects: from an instance type to a concrete link model.

A :class:`CloudProvider` encapsulates everything the paper learned
about one cloud's network behaviour:

* which :class:`~repro.netmodel.base.LinkModel` governs a VM pair's
  bandwidth (token bucket on EC2, per-core QoS on GCE, stochastic
  contention on HPCCloud),
* how much the shaper constants vary between *incarnations* of the
  same instance type (the box-plot spread of Figure 11),
* the provider's virtual-NIC behaviour and latency regime
  (Figures 7, 8, 12),
* the per-segment retransmission profile (Figure 9: negligible on EC2
  and HPCCloud, ~2 % on GCE with default write sizes).

Provider factories take a :class:`numpy.random.Generator` so that
"allocate a new VM" is an explicit, reproducible sampling step —
central to the paper's point that experiments on nominally identical
instances are not identically distributed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.cloud.instances import InstanceSpec, lookup_instance
from repro.netmodel.base import LinkModel
from repro.netmodel.distributions import QuantileDistribution
from repro.netmodel.latency import Ec2LatencyModel, GceLatencyModel, LatencyModel
from repro.netmodel.nic import EC2_NIC, GCE_NIC, NicBehavior
from repro.netmodel.percore import PerCoreQosModel
from repro.netmodel.stochastic import Ar1QuantileModel
from repro.netmodel.token_bucket import TokenBucketModel, TokenBucketParams

__all__ = [
    "CloudProvider",
    "Ec2Provider",
    "GceProvider",
    "HpcCloudProvider",
    "default_providers",
]


class CloudProvider(ABC):
    """Factory for the network behaviour of one cloud."""

    #: Short provider key ("amazon", "google", "hpccloud").
    name: str

    @abstractmethod
    def link_model(
        self, instance: str | InstanceSpec, rng: np.random.Generator
    ) -> LinkModel:
        """Allocate the link model for a fresh VM pair of ``instance``."""

    @abstractmethod
    def latency_model(self, throttled: bool = False) -> LatencyModel:
        """RTT regime; ``throttled`` selects EC2's queue-buildup mode."""

    @abstractmethod
    def nic_behavior(self) -> NicBehavior:
        """Virtual-NIC implementation parameters."""

    @abstractmethod
    def retransmission_rate(self, write_size_bytes: int = 131_072) -> float:
        """Per-segment retransmission probability at a given write size."""

    def _resolve(self, instance: str | InstanceSpec) -> InstanceSpec:
        if isinstance(instance, InstanceSpec):
            return instance
        return lookup_instance(instance)


#: Nominal token-bucket constants per EC2 instance type, calibrated to
#: Section 3.3: c5.xlarge empties in ~10 minutes at 10 Gbps with a
#: ~1 Gbit/s replenish rate; larger types get proportionally larger
#: budgets and higher capped rates (Figure 11).
_EC2_BUCKETS: dict[str, TokenBucketParams] = {
    "c5.large": TokenBucketParams(
        peak_gbps=10.0, capped_gbps=0.75, replenish_gbps=0.70, capacity_gbit=2_800.0
    ),
    "c5.xlarge": TokenBucketParams(
        peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
    ),
    "m5.xlarge": TokenBucketParams(
        peak_gbps=10.0, capped_gbps=1.0, replenish_gbps=0.95, capacity_gbit=5_400.0
    ),
    "c5.2xlarge": TokenBucketParams(
        peak_gbps=10.0, capped_gbps=2.0, replenish_gbps=1.9, capacity_gbit=11_000.0
    ),
    "c5.4xlarge": TokenBucketParams(
        peak_gbps=10.0, capped_gbps=4.0, replenish_gbps=3.8, capacity_gbit=22_000.0
    ),
    # Sustained-rate instances: effectively unlimited budgets.
    "c5.9xlarge": TokenBucketParams(
        peak_gbps=10.0, capped_gbps=9.5, replenish_gbps=9.0, capacity_gbit=1e6
    ),
    "m4.16xlarge": TokenBucketParams(
        peak_gbps=20.0, capped_gbps=19.0, replenish_gbps=18.0, capacity_gbit=1e6
    ),
}


@dataclass(frozen=True)
class Ec2Provider(CloudProvider):
    """Amazon EC2: token-bucket shaping with inconsistent incarnations.

    ``era`` selects the NIC-cap policy: before August 2019 every
    c5.xlarge NIC transmitted at 10 Gbps; from August 2019 the authors
    "started getting virtual NICs that were capped to 5 Gbps, though
    not consistently" (F5.2).  ``capacity_spread`` and ``rate_spread``
    control the incarnation-to-incarnation lognormal/uniform jitter
    seen in Figure 11's box plots.
    """

    era: str = "pre-2019-08"
    five_gbps_fraction: float = 0.35
    capacity_spread: float = 0.18
    rate_spread: float = 0.06
    name: str = "amazon"

    def bucket_params(self, instance: str | InstanceSpec) -> TokenBucketParams:
        """Nominal (un-jittered) shaper constants for an instance type."""
        spec = self._resolve(instance)
        try:
            return _EC2_BUCKETS[spec.name]
        except KeyError:
            raise KeyError(
                f"no token-bucket calibration for EC2 type {spec.name!r}"
            ) from None

    def sample_bucket_params(
        self, instance: str | InstanceSpec, rng: np.random.Generator
    ) -> TokenBucketParams:
        """Shaper constants for one *incarnation* of an instance type.

        Capacity jitters lognormally and the capped/replenish rates
        uniformly; in the post-August-2019 era a fraction of
        incarnations additionally receive a 5 Gbps peak-rate NIC cap.
        """
        nominal = self.bucket_params(instance)
        capacity = nominal.capacity_gbit * float(
            rng.lognormal(mean=0.0, sigma=self.capacity_spread)
        )
        rate_jitter = float(rng.uniform(1 - self.rate_spread, 1 + self.rate_spread))
        peak = nominal.peak_gbps
        if self.era == "post-2019-08" and rng.uniform() < self.five_gbps_fraction:
            peak = min(peak, 5.0)
        capped = min(nominal.capped_gbps * rate_jitter, peak)
        return TokenBucketParams(
            peak_gbps=peak,
            capped_gbps=capped,
            replenish_gbps=nominal.replenish_gbps * rate_jitter,
            capacity_gbit=capacity,
            resume_threshold_gbit=nominal.resume_threshold_gbit,
        )

    def link_model(
        self, instance: str | InstanceSpec, rng: np.random.Generator
    ) -> LinkModel:
        params = self.sample_bucket_params(instance, rng)
        if params.capacity_gbit >= 1e5:
            # Sustained-rate instances (c5.9xlarge, m4.16xlarge) never
            # hit a bucket in practice, but Table 3 still records
            # variability: multi-tenant jitter around the line rate.
            jitter = QuantileDistribution(
                probs=(0.01, 0.25, 0.50, 0.75, 0.99),
                values=tuple(
                    params.peak_gbps * f
                    for f in (0.90, 0.965, 0.98, 0.99, 1.0)
                ),
            )
            return Ar1QuantileModel(
                distribution=jitter,
                interval_s=10.0,
                phi=0.5,
                seed=int(rng.integers(0, 2**31)),
            )
        return TokenBucketModel(params)

    def latency_model(self, throttled: bool = False) -> LatencyModel:
        return Ec2LatencyModel(throttled=throttled)

    def nic_behavior(self) -> NicBehavior:
        return EC2_NIC

    def retransmission_rate(self, write_size_bytes: int = 131_072) -> float:
        from repro.netmodel.nic import VirtualNic

        return VirtualNic(EC2_NIC).retransmission_rate(write_size_bytes)


@dataclass(frozen=True)
class GceProvider(CloudProvider):
    """Google Cloud: per-core QoS, TSO NIC, ~2 % retransmissions."""

    per_core_gbps: float = 2.0
    name: str = "google"

    def link_model(
        self, instance: str | InstanceSpec, rng: np.random.Generator
    ) -> PerCoreQosModel:
        spec = self._resolve(instance)
        return PerCoreQosModel(
            cores=spec.cores,
            per_core_gbps=self.per_core_gbps,
            seed=int(rng.integers(0, 2**31)),
        )

    def latency_model(self, throttled: bool = False) -> LatencyModel:
        # GCE has no throttling regime; the flag is accepted for API
        # symmetry and ignored.
        return GceLatencyModel()

    def nic_behavior(self) -> NicBehavior:
        return GCE_NIC

    def retransmission_rate(self, write_size_bytes: int = 131_072) -> float:
        from repro.netmodel.nic import VirtualNic

        return VirtualNic(GCE_NIC).retransmission_rate(write_size_bytes)


#: HPCCloud 8-core bandwidth marginal: 7.7-10.4 Gbps (Section 3.1).
_HPCCLOUD_BANDWIDTH = QuantileDistribution(
    probs=(0.01, 0.25, 0.50, 0.75, 0.99),
    values=(7.7, 8.9, 9.4, 9.8, 10.4),
)


@dataclass(frozen=True)
class HpcCloudProvider(CloudProvider):
    """HPCCloud: no QoS; autocorrelated noisy-neighbour contention.

    Smaller clouds have less statistical multiplexing, so contention
    episodes persist: the AR(1) coefficient ``phi`` controls episode
    length, and the marginal matches the measured 7.7-10.4 Gbps range.
    Bandwidth scales with core count relative to the 8-core nodes the
    paper features.
    """

    phi: float = 0.6
    interval_s: float = 10.0
    name: str = "hpccloud"

    def bandwidth_distribution(
        self, instance: str | InstanceSpec
    ) -> QuantileDistribution:
        """Marginal bandwidth distribution for an instance type."""
        spec = self._resolve(instance)
        scale = spec.cores / 8.0
        return _HPCCLOUD_BANDWIDTH.scale(scale) if scale != 1.0 else _HPCCLOUD_BANDWIDTH

    def link_model(
        self, instance: str | InstanceSpec, rng: np.random.Generator
    ) -> Ar1QuantileModel:
        return Ar1QuantileModel(
            distribution=self.bandwidth_distribution(instance),
            interval_s=self.interval_s,
            phi=self.phi,
            seed=int(rng.integers(0, 2**31)),
        )

    def latency_model(self, throttled: bool = False) -> LatencyModel:
        # The paper does not characterize HPCCloud RTTs in depth; a
        # sub-millisecond unvirtualized-Ethernet regime is appropriate.
        return Ec2LatencyModel(throttled=False, base_median_ms=0.10)

    def nic_behavior(self) -> NicBehavior:
        return EC2_NIC

    def retransmission_rate(self, write_size_bytes: int = 131_072) -> float:
        return 1e-6


def default_providers() -> dict[str, CloudProvider]:
    """The three measured clouds, keyed by provider name."""
    providers = (Ec2Provider(), GceProvider(), HpcCloudProvider())
    return {p.name: p for p in providers}
