"""Instance-type catalog (the rows of Table 3).

Every instance type the paper measured, with its advertised network
QoS, the experiment duration used, and the measured cost.  EC2 types
are "typical offerings of a big data processing company" (Databricks);
GCE types were chosen to be as close as possible; HPCCloud offered a
limited set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "InstanceSpec",
    "EC2_INSTANCES",
    "GCE_INSTANCES",
    "HPCCLOUD_INSTANCES",
    "instance_catalog",
    "lookup_instance",
]


@dataclass(frozen=True)
class InstanceSpec:
    """One instance type as listed in Table 3."""

    provider: str
    name: str
    cores: int
    memory_gb: float
    #: Advertised bandwidth QoS in Gbps; ``None`` when the provider
    #: publishes none (HPCCloud).
    qos_gbps: Optional[float]
    #: Whether the paper's QoS column reads "<= X" (burst-capable) as
    #: opposed to a plain guarantee.
    qos_is_upper_bound: bool
    #: Campaign duration for this type, in weeks (Table 3).
    experiment_weeks: float
    #: Measured campaign cost in dollars; ``None`` for the free
    #: research cloud.
    cost_usd: Optional[float]
    #: Table 3 records that *every* configuration exhibited variability.
    exhibits_variability: bool = True
    #: Types the paper presents in depth are starred in Table 3.
    featured: bool = False


EC2_INSTANCES: tuple[InstanceSpec, ...] = (
    InstanceSpec(
        provider="amazon",
        name="c5.xlarge",
        cores=4,
        memory_gb=8,
        qos_gbps=10.0,
        qos_is_upper_bound=True,
        experiment_weeks=3.0,
        cost_usd=171.0,
        featured=True,
    ),
    InstanceSpec(
        provider="amazon",
        name="m5.xlarge",
        cores=4,
        memory_gb=16,
        qos_gbps=10.0,
        qos_is_upper_bound=True,
        experiment_weeks=3.0,
        cost_usd=193.0,
    ),
    InstanceSpec(
        provider="amazon",
        name="c5.9xlarge",
        cores=36,
        memory_gb=72,
        qos_gbps=10.0,
        qos_is_upper_bound=False,
        experiment_weeks=1.0 / 7.0,
        cost_usd=73.0,
    ),
    InstanceSpec(
        provider="amazon",
        name="m4.16xlarge",
        cores=64,
        memory_gb=256,
        qos_gbps=20.0,
        qos_is_upper_bound=False,
        experiment_weeks=1.0 / 7.0,
        cost_usd=153.0,
    ),
    # The c5.large / c5.2xlarge / c5.4xlarge types are not in Table 3's
    # week-long campaigns but are part of the Figure 11 token-bucket
    # identification study.
    InstanceSpec(
        provider="amazon",
        name="c5.large",
        cores=2,
        memory_gb=4,
        qos_gbps=10.0,
        qos_is_upper_bound=True,
        experiment_weeks=0.0,
        cost_usd=None,
    ),
    InstanceSpec(
        provider="amazon",
        name="c5.2xlarge",
        cores=8,
        memory_gb=16,
        qos_gbps=10.0,
        qos_is_upper_bound=True,
        experiment_weeks=0.0,
        cost_usd=None,
    ),
    InstanceSpec(
        provider="amazon",
        name="c5.4xlarge",
        cores=16,
        memory_gb=32,
        qos_gbps=10.0,
        qos_is_upper_bound=True,
        experiment_weeks=0.0,
        cost_usd=None,
    ),
)

GCE_INSTANCES: tuple[InstanceSpec, ...] = (
    InstanceSpec(
        provider="google",
        name="gce-1core",
        cores=1,
        memory_gb=3.75,
        qos_gbps=2.0,
        qos_is_upper_bound=False,
        experiment_weeks=3.0,
        cost_usd=34.0,
    ),
    InstanceSpec(
        provider="google",
        name="gce-2core",
        cores=2,
        memory_gb=7.5,
        qos_gbps=4.0,
        qos_is_upper_bound=False,
        experiment_weeks=3.0,
        cost_usd=67.0,
    ),
    InstanceSpec(
        provider="google",
        name="gce-4core",
        cores=4,
        memory_gb=15,
        qos_gbps=8.0,
        qos_is_upper_bound=False,
        experiment_weeks=3.0,
        cost_usd=135.0,
    ),
    InstanceSpec(
        provider="google",
        name="gce-8core",
        cores=8,
        memory_gb=30,
        qos_gbps=16.0,
        qos_is_upper_bound=False,
        experiment_weeks=3.0,
        cost_usd=269.0,
        featured=True,
    ),
)

HPCCLOUD_INSTANCES: tuple[InstanceSpec, ...] = (
    InstanceSpec(
        provider="hpccloud",
        name="hpccloud-2core",
        cores=2,
        memory_gb=16,
        qos_gbps=None,
        qos_is_upper_bound=False,
        experiment_weeks=1.0,
        cost_usd=None,
    ),
    InstanceSpec(
        provider="hpccloud",
        name="hpccloud-4core",
        cores=4,
        memory_gb=32,
        qos_gbps=None,
        qos_is_upper_bound=False,
        experiment_weeks=1.0,
        cost_usd=None,
    ),
    InstanceSpec(
        provider="hpccloud",
        name="hpccloud-8core",
        cores=8,
        memory_gb=64,
        qos_gbps=None,
        qos_is_upper_bound=False,
        experiment_weeks=1.0,
        cost_usd=None,
        featured=True,
    ),
)


def instance_catalog() -> tuple[InstanceSpec, ...]:
    """All instance types across the three measured clouds."""
    return EC2_INSTANCES + GCE_INSTANCES + HPCCLOUD_INSTANCES


def lookup_instance(name: str) -> InstanceSpec:
    """Find an instance type by name; raises KeyError when unknown."""
    for spec in instance_catalog():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown instance type: {name!r}")
