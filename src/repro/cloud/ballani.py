"""The eight anonymized cloud bandwidth distributions of Figure 2.

Ballani et al. ("Towards predictable datacenter networks", SIGCOMM
2011) surveyed bandwidth measurements on eight real-world clouds; the
paper reproduces them as box plots (1st/25th/50th/75th/99th
percentiles, 0-1000 Mb/s) and uses them to drive the Section 2.1
emulation of "the clouds contemporary with most articles found in our
survey".

The quantile values below are digitized from Figure 2; absolute
accuracy is not required — what matters for the reproduction is the
*spread* of each distribution (clouds F and G are the wide, low ones
whose variability motivates fine-grained sampling; clouds B and D are
the tight, fast ones).
"""

from __future__ import annotations

from repro.netmodel.distributions import QuantileDistribution
from repro.units import mbps_to_gbps

__all__ = ["BALLANI_CLOUDS", "ballani_distribution", "CLOUD_LABELS"]

#: Ordered labels as they appear on Figure 2's horizontal axis.
CLOUD_LABELS: tuple[str, ...] = ("A", "B", "C", "D", "E", "F", "G", "H")

#: {label: (p01, p25, p50, p75, p99)} in Mb/s, digitized from Figure 2.
_QUANTILES_MBPS: dict[str, tuple[float, float, float, float, float]] = {
    "A": (300.0, 500.0, 620.0, 740.0, 900.0),
    "B": (500.0, 700.0, 780.0, 850.0, 950.0),
    "C": (100.0, 250.0, 400.0, 600.0, 800.0),
    "D": (600.0, 720.0, 800.0, 870.0, 920.0),
    "E": (200.0, 350.0, 500.0, 650.0, 850.0),
    "F": (50.0, 150.0, 300.0, 500.0, 750.0),
    "G": (100.0, 200.0, 350.0, 550.0, 800.0),
    "H": (400.0, 550.0, 650.0, 750.0, 850.0),
}

#: Distributions keyed by cloud label, in **Gbps** (library convention).
BALLANI_CLOUDS: dict[str, QuantileDistribution] = {
    label: QuantileDistribution(
        probs=(0.01, 0.25, 0.50, 0.75, 0.99),
        values=tuple(mbps_to_gbps(v) for v in values),
    )
    for label, values in _QUANTILES_MBPS.items()
}


def ballani_distribution(label: str) -> QuantileDistribution:
    """Distribution for one cloud label (A-H); raises KeyError otherwise."""
    try:
        return BALLANI_CLOUDS[label.upper()]
    except KeyError:
        raise KeyError(
            f"unknown Ballani cloud {label!r}; expected one of {CLOUD_LABELS}"
        ) from None
