"""Cloud provider profiles: instance catalogs and link-model factories.

This package turns the paper's measured provider behaviours into
reusable factories:

* :mod:`repro.cloud.instances` — the instance-type catalog of Table 3
  (EC2 c5/m5/m4 families, GCE n-core types, HPCCloud nodes);
* :mod:`repro.cloud.providers` — provider objects that build a
  :class:`repro.netmodel.base.LinkModel` for a VM pair, including the
  incarnation-to-incarnation parameter inconsistency of Figure 11 and
  the unannounced policy change of August 2019 (c5.xlarge NICs capped
  at 5 Gbps "though not consistently", F5.2);
* :mod:`repro.cloud.ballani` — the eight anonymized cloud bandwidth
  distributions of Figure 2 (from Ballani et al.), used by the
  Section 2.1 emulation.
"""

from repro.cloud.ballani import BALLANI_CLOUDS, ballani_distribution
from repro.cloud.instances import (
    EC2_INSTANCES,
    GCE_INSTANCES,
    HPCCLOUD_INSTANCES,
    InstanceSpec,
    instance_catalog,
    lookup_instance,
)
from repro.cloud.providers import (
    CloudProvider,
    Ec2Provider,
    GceProvider,
    HpcCloudProvider,
    default_providers,
)

__all__ = [
    "InstanceSpec",
    "EC2_INSTANCES",
    "GCE_INSTANCES",
    "HPCCLOUD_INSTANCES",
    "instance_catalog",
    "lookup_instance",
    "CloudProvider",
    "Ec2Provider",
    "GceProvider",
    "HpcCloudProvider",
    "default_providers",
    "BALLANI_CLOUDS",
    "ballani_distribution",
]
