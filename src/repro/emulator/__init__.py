"""Bandwidth emulation: the library's equivalent of the paper's ``tc`` rig.

The authors chose *emulation* over simulation or direct cloud runs for
Section 4: a Linux ``tc`` token-bucket filter imposed Amazon's shaping
behaviour on an isolated private cluster, excluding every other source
of cloud variability.  This package is that rig in library form:

* :mod:`repro.emulator.patterns` — the three transfer regimes of
  Section 3.1 (full-speed, 10-30, 5-30);
* :mod:`repro.emulator.shaper` — a discrete-time token-bucket filter
  (an independent reimplementation used to cross-validate the fluid
  model) and a generator for the equivalent ``tc`` commands;
* :mod:`repro.emulator.link` — drives any
  :class:`~repro.netmodel.base.LinkModel` with a traffic pattern and
  reports per-interval achieved bandwidth, reproducing the emulator
  validation of Figure 14.
"""

from repro.emulator.link import EmulatedLink, ReportSample
from repro.emulator.patterns import (
    FIVE_THIRTY,
    FULL_SPEED,
    TEN_THIRTY,
    TrafficPattern,
    pattern_by_name,
)
from repro.emulator.shaper import DiscreteTokenBucket, tc_script

__all__ = [
    "TrafficPattern",
    "FULL_SPEED",
    "TEN_THIRTY",
    "FIVE_THIRTY",
    "pattern_by_name",
    "EmulatedLink",
    "ReportSample",
    "DiscreteTokenBucket",
    "tc_script",
]
