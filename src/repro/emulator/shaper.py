"""Discrete-time token-bucket filter and ``tc`` command generation.

The paper's emulator was "built on the Linux tc facility" — a token
bucket filter (``tbf``) with rate switching.  Two artifacts live here:

* :class:`DiscreteTokenBucket` — a tick-based token bucket operating on
  byte counts, deliberately implemented independently from the fluid
  :class:`~repro.netmodel.token_bucket.TokenBucketModel` so the two can
  cross-validate each other (the property tests in
  ``tests/emulator/test_shaper.py`` check they agree);
* :func:`tc_script` — the shell commands an operator would run to
  impose the same policy with real ``tc``, documenting exactly what the
  emulation corresponds to on a physical testbed.
"""

from __future__ import annotations

from repro.netmodel.token_bucket import TokenBucketParams

__all__ = ["DiscreteTokenBucket", "tc_script"]


class DiscreteTokenBucket:
    """Tick-based token bucket accounting in gigabits.

    Each call to :meth:`offer` advances one tick of ``tick_s`` seconds
    with a given offered volume and returns the volume actually sent.
    Semantics match the fluid model: while the bucket holds tokens the
    peak rate applies; once empty, the capped rate applies until the
    budget climbs back above the resume threshold.
    """

    def __init__(self, params: TokenBucketParams, tick_s: float = 0.1) -> None:
        if tick_s <= 0:
            raise ValueError("tick must be positive")
        self.params = params
        self.tick_s = float(tick_s)
        start = params.initial_budget_gbit
        if start is None:
            start = params.capacity_gbit
        self._budget = min(start, params.capacity_gbit)
        self._throttled = self._budget <= 0.0

    @property
    def budget_gbit(self) -> float:
        """Tokens currently available."""
        return self._budget

    @property
    def throttled(self) -> bool:
        """True while held at the capped rate."""
        return self._throttled

    def offer(self, volume_gbit: float) -> float:
        """Advance one tick offering ``volume_gbit``; return volume sent."""
        if volume_gbit < 0:
            raise ValueError("offered volume cannot be negative")
        p = self.params
        rate_cap = p.capped_gbps if self._throttled else p.peak_gbps
        sendable = min(volume_gbit, rate_cap * self.tick_s)
        self._budget = min(
            self._budget + p.replenish_gbps * self.tick_s - sendable,
            p.capacity_gbit,
        )
        if self._budget <= 0.0:
            self._budget = max(self._budget, 0.0)
            self._throttled = True
        elif self._throttled and self._budget >= p.resume_threshold_gbit:
            self._throttled = False
        return sendable

    def run(self, offered_gbps: float, duration_s: float) -> list[float]:
        """Offer a constant rate for a duration; per-tick sent volumes."""
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        ticks = int(round(duration_s / self.tick_s))
        per_tick = offered_gbps * self.tick_s
        return [self.offer(per_tick) for _ in range(ticks)]


def tc_script(
    params: TokenBucketParams,
    interface: str = "eth0",
    mtu_bytes: int = 9_000,
) -> str:
    """Equivalent Linux ``tc`` commands for a token-bucket policy.

    The emitted script uses an HTB root with the capped rate as the
    guaranteed rate and the peak rate as the ceiling with a burst equal
    to the bucket capacity — the closest expressible ``tc`` encoding of
    the provider policy identified in Section 3.3.  It is documentation
    and testbed glue; nothing in the library shells out to it.
    """
    burst_bytes = int(params.capacity_gbit * 1e9 / 8)
    lines = [
        f"# Token-bucket policy: peak {params.peak_gbps} Gbps, "
        f"capped {params.capped_gbps} Gbps, budget {params.capacity_gbit} Gbit",
        f"tc qdisc del dev {interface} root 2>/dev/null || true",
        f"tc qdisc add dev {interface} root handle 1: htb default 10",
        (
            f"tc class add dev {interface} parent 1: classid 1:10 htb "
            f"rate {params.capped_gbps}gbit ceil {params.peak_gbps}gbit "
            f"burst {burst_bytes}b mtu {mtu_bytes}"
        ),
    ]
    return "\n".join(lines)
