"""Transfer patterns: how big-data workloads access the network.

Section 3.1 measures three regimes because big-data workloads have
different network access patterns:

* ``full-speed`` — continuous transfer: long-running batch processing
  or streaming;
* ``10-30`` — transfer 10 s, rest 30 s: longer analytics queries;
* ``5-30`` — transfer 5 s, rest 30 s: short-lived analytics queries
  (TPC-H / TPC-DS style).

The choice matters enormously: GCE rewards long streams while EC2's
token bucket punishes them (Figures 5 and 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "TrafficPattern",
    "FULL_SPEED",
    "TEN_THIRTY",
    "FIVE_THIRTY",
    "pattern_by_name",
]


@dataclass(frozen=True)
class TrafficPattern:
    """A periodic transmit/rest duty cycle."""

    name: str
    transmit_s: float
    rest_s: float

    def __post_init__(self) -> None:
        if self.transmit_s <= 0:
            raise ValueError("transmit duration must be positive")
        if self.rest_s < 0:
            raise ValueError("rest duration cannot be negative")

    @property
    def is_continuous(self) -> bool:
        """True for patterns with no rest phase."""
        return self.rest_s == 0 or math.isinf(self.transmit_s)

    @property
    def period_s(self) -> float:
        """Length of one transmit+rest cycle."""
        return self.transmit_s + self.rest_s

    @property
    def duty_cycle(self) -> float:
        """Fraction of wall-clock time spent transmitting."""
        if self.is_continuous:
            return 1.0
        return self.transmit_s / self.period_s

    def phases(self, duration_s: float) -> Iterator[tuple[bool, float]]:
        """Yield ``(is_transmitting, phase_duration)`` covering ``duration_s``.

        The pattern always starts with a transmit phase, as the paper's
        scripts did; the final phase is truncated at the horizon.
        """
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        remaining = duration_s
        if self.is_continuous:
            if remaining > 0:
                yield True, remaining
            return
        transmitting = True
        while remaining > 1e-12:
            phase = self.transmit_s if transmitting else self.rest_s
            phase = min(phase, remaining)
            if phase > 0:
                yield transmitting, phase
            remaining -= phase
            transmitting = not transmitting

    def bursts_in(self, duration_s: float) -> int:
        """Number of (possibly truncated) transmit bursts within a window."""
        if self.is_continuous:
            return 1 if duration_s > 0 else 0
        return int(math.ceil(duration_s / self.period_s))


FULL_SPEED = TrafficPattern(name="full-speed", transmit_s=math.inf, rest_s=0.0)
TEN_THIRTY = TrafficPattern(name="10-30", transmit_s=10.0, rest_s=30.0)
FIVE_THIRTY = TrafficPattern(name="5-30", transmit_s=5.0, rest_s=30.0)

_PATTERNS = {p.name: p for p in (FULL_SPEED, TEN_THIRTY, FIVE_THIRTY)}


def pattern_by_name(name: str) -> TrafficPattern:
    """Look up one of the paper's three patterns by its label."""
    try:
        return _PATTERNS[name]
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; expected one of {sorted(_PATTERNS)}"
        ) from None
