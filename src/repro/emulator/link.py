"""An emulated point-to-point link driven by a traffic pattern.

This is the library's measurement rig: one VM pair, one direction, a
:class:`~repro.netmodel.base.LinkModel` imposing the provider's shaping
behaviour, and a :class:`~repro.emulator.patterns.TrafficPattern`
deciding when the sender transmits.  Output is a sequence of
*reporting samples* — average achieved bandwidth over each reporting
window, matching the paper's "each point is an average over 10
seconds" presentation.

Reporting windows only cover *transmitting* time: iperf reports
averages over its active streams, so a 5-second burst contributes one
sample covering those 5 seconds, not a 10-second window diluted by
rest time (this is why Figure 5's 5-30 points sit near the QoS rather
than at an eighth of it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.emulator.patterns import TrafficPattern
from repro.netmodel.base import LinkModel

__all__ = ["ReportSample", "EmulatedLink"]


@dataclass(frozen=True)
class ReportSample:
    """Average achieved bandwidth over one reporting window."""

    #: Wall-clock time at the start of the window, seconds.
    t_start: float
    #: Transmitting time covered by the window, seconds.
    duration_s: float
    #: Data moved during the window, Gbit.
    transferred_gbit: float

    @property
    def bandwidth_gbps(self) -> float:
        """Average achieved rate for the window."""
        if self.duration_s == 0:
            return 0.0
        return self.transferred_gbit / self.duration_s


class EmulatedLink:
    """One shaped, pattern-driven link between a VM pair."""

    def __init__(
        self,
        model: LinkModel,
        pattern: TrafficPattern,
        offered_gbps: float = 100.0,
        report_interval_s: float = 10.0,
    ) -> None:
        if offered_gbps <= 0:
            raise ValueError("offered rate must be positive")
        if report_interval_s <= 0:
            raise ValueError("report interval must be positive")
        self.model = model
        self.pattern = pattern
        self.offered_gbps = float(offered_gbps)
        self.report_interval_s = float(report_interval_s)

    def run(self, duration_s: float) -> list[ReportSample]:
        """Drive the link for ``duration_s`` wall-clock seconds.

        The model is *not* reset first: runs compose, which is exactly
        how hidden token-bucket state leaks between experiments (F4.4).
        Call ``self.model.reset()`` for a fresh-VM run.
        """
        samples: list[ReportSample] = []
        now = 0.0
        window_start = 0.0
        window_elapsed = 0.0
        window_gbit = 0.0

        def close_window() -> None:
            nonlocal window_elapsed, window_gbit, window_start
            if window_elapsed > 1e-12:
                samples.append(
                    ReportSample(
                        t_start=window_start,
                        duration_s=window_elapsed,
                        transferred_gbit=window_gbit,
                    )
                )
            window_elapsed = 0.0
            window_gbit = 0.0

        for transmitting, phase_s in self.pattern.phases(duration_s):
            if not transmitting:
                # Idle phases advance the model (buckets refill, GCE
                # flows go cold) but produce no report samples.
                self._advance_idle(phase_s)
                now += phase_s
                continue
            remaining = phase_s
            window_start = now
            while remaining > 1e-12:
                rate = min(self.offered_gbps, self.model.limit())
                step = min(
                    remaining,
                    self.model.horizon(rate),
                    self.report_interval_s - window_elapsed,
                )
                step = max(step, 1e-9)
                step = min(step, remaining)
                self.model.advance(step, rate)
                window_gbit += rate * step
                window_elapsed += step
                now += step
                remaining -= step
                if window_elapsed >= self.report_interval_s - 1e-12:
                    close_window()
                    window_start = now
            # A burst shorter than the reporting interval still yields
            # its own sample (iperf reports at stream end).
            close_window()
        return samples

    def _advance_idle(self, duration_s: float) -> None:
        remaining = duration_s
        while remaining > 1e-12:
            step = min(remaining, self.model.horizon(0.0))
            step = max(step, 1e-9)
            step = min(step, remaining)
            self.model.advance(step, 0.0)
            remaining -= step
