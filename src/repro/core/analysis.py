"""The full statistical analysis pipeline of Section 5.

Given a sample of repeated measurements (in collection order),
:func:`analyze_sample` applies the paper's recommended battery:

1. **assumption tests** (F5.4) — Shapiro-Wilk normality,
   runs-test / Ljung-Box independence, augmented Dickey-Fuller
   stationarity;
2. **robust estimation** — nonparametric median (or arbitrary
   quantile) CI via order statistics;
3. **CONFIRM** — repetitions needed for the requested error bound, and
   detection of the CI-*widening* pathology that betrays non-iid
   repetitions (Figure 19);
4. a plain-language **verdict** an experimenter can act on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.stats.confirm import ConfirmCurve, confirm_curve
from repro.stats.cov import dispersion_summary, DispersionSummary
from repro.stats.quantiles import QuantileCI, quantile_ci
from repro.stats.testing import (
    TestVerdict,
    adf_test,
    ljung_box_test,
    pettitt_test,
    runs_test,
    shapiro_test,
)

__all__ = ["AnalysisReport", "analyze_sample"]

#: Minimum samples before the time-series tests are attempted.
_MIN_FOR_TESTS = 12


@dataclass
class AnalysisReport:
    """Outcome of the full pipeline on one sample."""

    dispersion: DispersionSummary
    ci: Optional[QuantileCI]
    confirm: ConfirmCurve
    normality: Optional[TestVerdict]
    independence_runs: Optional[TestVerdict]
    independence_ljung_box: Optional[TestVerdict]
    #: Pettitt's rank-based changepoint scan: catches the abrupt level
    #: shift a depleting token bucket produces, wherever it falls in
    #: the sequence (a fixed half-vs-half Mann-Whitney misses early
    #: shifts).
    change_point: Optional[TestVerdict]
    stationarity: Optional[TestVerdict]
    #: Repetitions needed to meet the error bound, or None if unmet.
    repetitions_needed: Optional[int]
    error_bound: float
    confidence: float
    quantile: float

    @property
    def is_normal(self) -> bool:
        """True when normality was tested and not rejected."""
        return self.normality is not None and not self.normality.reject_null

    @property
    def iid_violated(self) -> bool:
        """True when the sample shows corroborated non-iid behaviour.

        A widening CONFIRM CI is conclusive on its own (under iid
        sampling CIs must tighten).  The hypothesis tests corroborate
        each other instead: any *two* of {runs test rejects randomness,
        Ljung-Box finds autocorrelation, ADF cannot reject a unit root
        on a reasonably long series} flag a violation — a single
        5 %-level rejection on a small sample is expected noise.
        """
        if self.confirm.widening_detected():
            return True
        signals = 0
        if self.independence_runs is not None and self.independence_runs.reject_null:
            signals += 1
        if (
            self.independence_ljung_box is not None
            and self.independence_ljung_box.reject_null
        ):
            signals += 1
        if self.change_point is not None and self.change_point.reject_null:
            signals += 1
        if (
            self.stationarity is not None
            and self.dispersion.n >= 30
            and not self.stationarity.reject_null
        ):
            signals += 1
        return signals >= 2

    @property
    def enough_repetitions(self) -> bool:
        """True when the CI already fits inside the error bound."""
        return self.ci is not None and self.ci.within_error_bound(self.error_bound)

    @property
    def recommended_statistics(self) -> str:
        """Parametric vs nonparametric recommendation (F5.4)."""
        return "parametric" if self.is_normal else "nonparametric"

    def verdict(self) -> str:
        """Plain-language summary an experimenter can act on."""
        lines = []
        if self.ci is None:
            lines.append(
                f"TOO FEW SAMPLES ({self.dispersion.n}): no nonparametric "
                f"{self.confidence:.0%} CI exists; collect more repetitions."
            )
            return "\n".join(lines)
        if self.iid_violated:
            lines.append(
                "IID VIOLATION: repetitions are not independent/stationary "
                "(hidden infrastructure state such as token-bucket budgets "
                "is likely carrying over). Reset to known conditions before "
                "each run; CI analysis on this sample is unreliable."
            )
        if self.enough_repetitions:
            lines.append(
                f"OK: the {self.quantile:.0%}-quantile CI "
                f"[{self.ci.low:.4g}, {self.ci.high:.4g}] fits the "
                f"{self.error_bound:.0%} error bound after {self.dispersion.n} "
                f"repetitions."
            )
        elif self.repetitions_needed is not None:
            lines.append(
                f"MORE REPETITIONS: bound first met at n="
                f"{self.repetitions_needed}, current n={self.dispersion.n}."
            )
        else:
            lines.append(
                f"MORE REPETITIONS: {self.dispersion.n} runs do not meet the "
                f"{self.error_bound:.0%} bound; CONFIRM projects more are needed."
            )
        lines.append(f"Use {self.recommended_statistics} statistics.")
        return "\n".join(lines)


def analyze_sample(
    samples: Sequence[float] | np.ndarray,
    quantile: float = 0.5,
    confidence: float = 0.95,
    error_bound: float = 0.05,
) -> AnalysisReport:
    """Run the full Section 5 battery on a measurement sample.

    ``samples`` must be in collection order.  Assumption tests are
    skipped (reported as ``None``) for samples too small to support
    them — mirroring the paper's point that tiny samples cannot even
    be checked.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least 2 samples to analyze")

    dispersion = dispersion_summary(arr)
    ci = quantile_ci(arr, quantile=quantile, confidence=confidence)
    curve = confirm_curve(arr, quantile=quantile, confidence=confidence)
    repetitions = curve.first_n_within(error_bound) if len(curve) else None

    normality = independence_runs = independence_lb = stationarity = None
    change_point = None
    if arr.size >= _MIN_FOR_TESTS and np.std(arr) > 0:
        normality = shapiro_test(arr)
        try:
            independence_runs = runs_test(arr)
        except ValueError:
            independence_runs = None
        independence_lb = ljung_box_test(arr)
        change_point = pettitt_test(arr)
        stationarity = adf_test(arr)

    return AnalysisReport(
        dispersion=dispersion,
        ci=ci,
        confirm=curve,
        normality=normality,
        independence_runs=independence_runs,
        independence_ljung_box=independence_lb,
        change_point=change_point,
        stationarity=stationarity,
        repetitions_needed=repetitions,
        error_bound=error_bound,
        confidence=confidence,
        quantile=quantile,
    )
