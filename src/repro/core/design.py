"""Experiment designs: repetitions, resets, and randomization.

Section 5's recommendations, as a declarative object:

* run *many* repetitions (F5.3 — the literature's 3-10 are rarely
  enough; Figure 13 shows 70+ for 1 % error bounds);
* return the infrastructure to a known state between repetitions
  (F5.4) — fresh VMs are the gold standard, rests are the cheaper
  substitute that lets token buckets refill;
* randomize experiment order to avoid self-interference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["ResetPolicy", "ExperimentDesign"]


class ResetPolicy(enum.Enum):
    """How the infrastructure is returned to a known state between runs."""

    #: A fresh set of VMs for every repetition — full state reset
    #: ("the most reliable way", F5.4).
    FRESH = "fresh"
    #: Keep the VMs, but rest the network so hidden budgets refill.
    REST = "rest"
    #: Run back-to-back, carrying hidden state over (the design flaw
    #: Figure 19 demonstrates).
    NONE = "none"


@dataclass(frozen=True)
class ExperimentDesign:
    """A complete, reviewable description of a measurement campaign."""

    repetitions: int = 30
    reset_policy: ResetPolicy = ResetPolicy.FRESH
    #: Rest duration between repetitions (only used by REST).
    rest_s: float = 0.0
    #: Shuffle the run order across experiment variants.
    randomize_order: bool = True
    #: Confidence level for interval estimates.
    confidence: float = 0.95
    #: Target relative error bound for the CI (F5.3 suggests 5 %).
    error_bound: float = 0.05
    #: Quantile of interest (0.5 for medians; 0.9 reproduces the tail
    #: analysis of Figure 3b).
    quantile: float = 0.5

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.rest_s < 0:
            raise ValueError("rest cannot be negative")
        if self.reset_policy is not ResetPolicy.REST and self.rest_s > 0:
            raise ValueError("rest_s is only meaningful with ResetPolicy.REST")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if not 0.0 < self.error_bound < 1.0:
            raise ValueError("error bound must be in (0, 1)")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")

    def run_order(
        self,
        variants: Sequence[str],
        rng: np.random.Generator | None = None,
    ) -> list[tuple[str, int]]:
        """Interleaved, optionally randomized (variant, repetition) order.

        Randomizing across variants (rather than running all
        repetitions of one variant back-to-back) is the Abedi & Brecht
        randomization the paper endorses: hidden state built up by one
        variant is not systematically charged to the next.
        """
        if not variants:
            raise ValueError("need at least one variant")
        order = [
            (variant, rep)
            for rep in range(self.repetitions)
            for variant in variants
        ]
        if self.randomize_order:
            if rng is None:
                rng = np.random.default_rng(0)
            permutation = rng.permutation(len(order))
            order = [order[i] for i in permutation]
        return order

    def describe(self) -> str:
        """One-paragraph methods-section description of this design."""
        reset = {
            ResetPolicy.FRESH: "a fresh set of VMs for every repetition",
            ResetPolicy.REST: f"a {self.rest_s:.0f}s network rest between repetitions",
            ResetPolicy.NONE: "no state reset between repetitions",
        }[self.reset_policy]
        order = "randomized" if self.randomize_order else "sequential"
        return (
            f"{self.repetitions} repetitions with {reset}, {order} run order; "
            f"reporting the {self.quantile:.0%} quantile with "
            f"{self.confidence:.0%} nonparametric confidence intervals and a "
            f"{self.error_bound:.0%} error bound."
        )
