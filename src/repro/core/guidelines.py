"""Advisors encoding the paper's findings F5.1-F5.5.

Each function turns measured evidence (pilot samples, fingerprints,
shaper estimates) into a concrete experimental decision: how many
repetitions to plan, how long to rest the network, whether a baseline
still matches.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.measurement.fingerprint import NetworkFingerprint, TokenBucketEstimate
from repro.stats.confirm import confirm_curve, min_samples_for_ci

__all__ = [
    "recommend_repetitions",
    "recommend_rest_duration",
    "verify_baseline",
]


def recommend_repetitions(
    pilot_samples: Sequence[float] | np.ndarray,
    quantile: float = 0.5,
    confidence: float = 0.95,
    error_bound: float = 0.05,
    safety_factor: float = 1.25,
) -> int:
    """Plan a repetition count from a pilot sample (F5.3).

    If the pilot already meets the bound, the recommendation is the
    CONFIRM-observed count times a safety factor.  Otherwise the count
    is extrapolated using the 1/sqrt(n) scaling of nonparametric CI
    widths — the same reasoning CONFIRM uses for its projections.
    Never recommends fewer than the minimum sample size for which the
    requested CI exists at all.
    """
    arr = np.asarray(pilot_samples, dtype=float)
    if arr.size < 2:
        raise ValueError("pilot must contain at least 2 samples")
    floor = min_samples_for_ci(quantile, confidence)
    curve = confirm_curve(arr, quantile=quantile, confidence=confidence)
    if len(curve) == 0:
        return max(floor, int(math.ceil(arr.size * 4 * safety_factor)))
    met_at = curve.first_n_within(error_bound)
    if met_at is not None:
        return max(floor, int(math.ceil(met_at * safety_factor)))
    # Extrapolate: relative half-width shrinks ~ 1/sqrt(n).
    current = float(curve.relative_half_widths[-1])
    n = int(curve.ns[-1])
    if current <= 0 or not math.isfinite(current):
        return max(floor, n)
    projected = n * (current / error_bound) ** 2
    return max(floor, int(math.ceil(projected * safety_factor)))


def recommend_rest_duration(
    bucket: TokenBucketEstimate,
    refill_fraction: float = 1.0,
    default_rest_s: float = 60.0,
) -> float:
    """Rest needed between repetitions so hidden budgets refill (F5.4).

    With a detected token bucket, resting ``budget / replenish`` seconds
    restores the full budget; ``refill_fraction`` scales the target for
    experiments that only consume part of it.  Without a detected
    bucket, a short default rest still flushes transient congestion.
    """
    if not 0.0 < refill_fraction <= 1.0:
        raise ValueError("refill_fraction must be in (0, 1]")
    if default_rest_s < 0:
        raise ValueError("default rest cannot be negative")
    if not bucket.detected:
        return default_rest_s
    if bucket.replenish_gbps <= 0 or not math.isfinite(bucket.budget_gbit):
        return default_rest_s
    return bucket.budget_gbit * refill_fraction / bucket.replenish_gbps


def verify_baseline(
    published: NetworkFingerprint,
    current: NetworkFingerprint,
    tolerance: float = 0.10,
) -> tuple[bool, list[str]]:
    """Check a fresh fingerprint against a published baseline (F5.5).

    Returns ``(matches, discrepancies)``; a non-empty discrepancy list
    explains exactly which baseline quantity moved — the provider may
    have changed policy (the paper's August-2019 5 Gbps NIC event), and
    results should not be compared across that boundary.
    """
    discrepancies: list[str] = []

    def check(name: str, a: float, b: float) -> None:
        if math.isinf(a) and math.isinf(b):
            return
        scale = max(abs(a), abs(b), 1e-9)
        if abs(a - b) / scale > tolerance:
            discrepancies.append(f"{name}: published {a:.4g} vs current {b:.4g}")

    check(
        "base bandwidth (Gbps)",
        published.base_bandwidth_gbps,
        current.base_bandwidth_gbps,
    )
    check("base latency (ms)", published.base_latency_ms, current.base_latency_ms)
    if published.token_bucket.detected != current.token_bucket.detected:
        discrepancies.append(
            "token bucket: "
            f"published detected={published.token_bucket.detected} vs "
            f"current detected={current.token_bucket.detected}"
        )
    elif published.token_bucket.detected:
        check(
            "token-bucket high rate (Gbps)",
            published.token_bucket.high_gbps,
            current.token_bucket.high_gbps,
        )
        check(
            "token-bucket low rate (Gbps)",
            published.token_bucket.low_gbps,
            current.token_bucket.low_gbps,
        )
        check(
            "token-bucket time-to-empty (s)",
            published.token_bucket.time_to_empty_s,
            current.token_bucket.time_to_empty_s,
        )
    return (not discrepancies, discrepancies)
