"""Publishable experiment reports (F5.2, F5.5).

"When reporting experiments, always include these performance
fingerprints together with the actual data" — an
:class:`ExperimentReport` bundles the measurements, the statistical
analysis, the design description, and the network fingerprint, and
renders them as a text block suitable for an artifact appendix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.analysis import AnalysisReport, analyze_sample
from repro.core.design import ExperimentDesign
from repro.measurement.fingerprint import NetworkFingerprint

__all__ = ["ExperimentReport", "render_report"]


@dataclass
class ExperimentReport:
    """One experiment's publishable record."""

    title: str
    samples: np.ndarray
    design: ExperimentDesign
    analysis: AnalysisReport
    fingerprint: Optional[NetworkFingerprint] = None
    #: Free-form environment detail (instance type, region, dates) —
    #: F5.5 asks for as much as possible.
    environment: dict[str, str] | None = None

    @classmethod
    def build(
        cls,
        title: str,
        samples: Sequence[float] | np.ndarray,
        design: ExperimentDesign,
        fingerprint: Optional[NetworkFingerprint] = None,
        environment: dict[str, str] | None = None,
    ) -> "ExperimentReport":
        """Run the analysis pipeline and assemble the report."""
        arr = np.asarray(samples, dtype=float)
        analysis = analyze_sample(
            arr,
            quantile=design.quantile,
            confidence=design.confidence,
            error_bound=design.error_bound,
        )
        return cls(
            title=title,
            samples=arr,
            design=design,
            analysis=analysis,
            fingerprint=fingerprint,
            environment=environment,
        )


def render_report(report: ExperimentReport) -> str:
    """Render a report as a publication-ready text block."""
    lines = [
        f"=== {report.title} ===",
        "",
        "-- design --",
        report.design.describe(),
        "",
        "-- environment --",
    ]
    for key, value in sorted((report.environment or {}).items()):
        lines.append(f"{key}: {value}")
    if not report.environment:
        lines.append("(not recorded — F5.5 recommends instance type, region, dates)")

    lines.extend(["", "-- network fingerprint (F5.2) --"])
    fp = report.fingerprint
    if fp is None:
        lines.append("(not collected — run repro.measurement.fingerprint_link)")
    else:
        lines.append(f"base bandwidth: {fp.base_bandwidth_gbps:.2f} Gbps")
        lines.append(f"base latency:   {fp.base_latency_ms:.3f} ms")
        lines.append(f"loaded latency: {fp.loaded_latency_ms:.3f} ms (p99)")
        tb = fp.token_bucket
        if tb.detected:
            lines.append(
                "token bucket:   detected "
                f"(high {tb.high_gbps:.1f} Gbps, low {tb.low_gbps:.1f} Gbps, "
                f"empties in {tb.time_to_empty_s:.0f} s, "
                f"replenish {tb.replenish_gbps:.2f} Gbit/s)"
            )
        else:
            lines.append("token bucket:   none detected")

    a = report.analysis
    lines.extend(["", "-- results --"])
    lines.append(
        f"n={a.dispersion.n}  mean={a.dispersion.mean:.4g}  "
        f"median={a.dispersion.median:.4g}  CoV={a.dispersion.cov:.1%}"
    )
    if a.ci is not None:
        lines.append(
            f"{a.quantile:.0%}-quantile {a.confidence:.0%} CI: "
            f"[{a.ci.low:.4g}, {a.ci.high:.4g}]"
        )
    for verdict in (
        a.normality,
        a.independence_runs,
        a.independence_ljung_box,
        a.change_point,
        a.stationarity,
    ):
        if verdict is not None:
            lines.append(str(verdict))

    lines.extend(["", "-- verdict --", a.verdict()])
    return "\n".join(lines)
