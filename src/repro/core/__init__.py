"""Variability-aware experimentation methodology (Sections 4-5).

This package is the paper's actionable contribution turned into code —
the tooling its conclusion calls for ("develop software tools to help
experimenters run reproducible experiments in the cloud"):

* :mod:`repro.core.design` — experiment designs: repetition counts,
  reset policies (fresh VMs / rests / nothing), and order
  randomization (F5.4);
* :mod:`repro.core.runner` — executes a design against any experiment
  callable, including simulator-backed big-data experiments with
  shaper-state carry-over;
* :mod:`repro.core.analysis` — the full statistical pipeline: test
  assumptions (normality, independence, stationarity), compute
  nonparametric CIs, run CONFIRM, and flag non-iid violations;
* :mod:`repro.core.guidelines` — advisors encoding findings F5.1-F5.5
  (repetitions needed, rest durations from token-bucket fingerprints,
  baseline matching);
* :mod:`repro.core.reporting` — publishable experiment reports that
  bundle results with their network fingerprints (F5.2).
"""

from repro.core.analysis import AnalysisReport, analyze_sample
from repro.core.design import ExperimentDesign, ResetPolicy
from repro.core.guidelines import (
    recommend_repetitions,
    recommend_rest_duration,
    verify_baseline,
)
from repro.core.reporting import ExperimentReport, render_report
from repro.core.runner import ExperimentRunner, SimulatorExperiment

__all__ = [
    "ExperimentDesign",
    "ResetPolicy",
    "ExperimentRunner",
    "SimulatorExperiment",
    "AnalysisReport",
    "analyze_sample",
    "recommend_repetitions",
    "recommend_rest_duration",
    "verify_baseline",
    "ExperimentReport",
    "render_report",
]
