"""Experiment execution under a design's reset policy.

:class:`ExperimentRunner` is generic: any callable that produces one
scalar measurement per invocation can be repeated under a design.
:class:`SimulatorExperiment` adapts the Spark simulator: each
invocation runs one job, and the reset policy maps onto fabric
handling — fresh fabrics (fresh VMs), idle rests (bucket refill), or
carried-over state (the Figure 19 flaw).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.core.design import ExperimentDesign, ResetPolicy
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SparkEngine, rest_fabric
from repro.simulator.fabric import Fabric
from repro.simulator.tasks import JobSpec

__all__ = ["Experiment", "ExperimentRunner", "SimulatorExperiment"]


class Experiment(Protocol):
    """One measurable experiment."""

    def measure(self) -> float:
        """Run once and return the measurement (e.g. runtime seconds)."""

    def reset(self) -> None:
        """Restore pristine state (fresh VMs)."""

    def rest(self, duration_s: float) -> None:
        """Leave the infrastructure idle for ``duration_s``."""


@dataclass
class _CallableExperiment:
    """Wraps a plain callable into the Experiment protocol."""

    fn: Callable[[], float]

    def measure(self) -> float:
        return float(self.fn())

    def reset(self) -> None:  # plain callables are stateless
        pass

    def rest(self, duration_s: float) -> None:
        pass


class ExperimentRunner:
    """Runs an experiment repeatedly under an
    :class:`~repro.core.design.ExperimentDesign`."""

    def __init__(self, design: ExperimentDesign) -> None:
        self.design = design

    def collect(self, experiment: Experiment | Callable[[], float]) -> np.ndarray:
        """Collect ``design.repetitions`` measurements in order.

        The returned array preserves collection order, which downstream
        CONFIRM analysis requires.
        """
        if callable(experiment) and not hasattr(experiment, "measure"):
            experiment = _CallableExperiment(experiment)
        samples = np.empty(self.design.repetitions)
        for i in range(self.design.repetitions):
            if i > 0:
                if self.design.reset_policy is ResetPolicy.FRESH:
                    experiment.reset()
                elif self.design.reset_policy is ResetPolicy.REST:
                    experiment.rest(self.design.rest_s)
            samples[i] = experiment.measure()
        return samples


class SimulatorExperiment:
    """A big-data job on a shaped cluster, as a repeatable experiment.

    ``budget_gbit`` optionally forces every node's token-bucket budget
    at each reset, reproducing the Figure 19 protocol ("at the
    beginning of each repetition, we reset the token budget").

    ``run_noise_cov`` adds a run-level lognormal factor to the measured
    runtime.  The simulator isolates *network* variability; experiments
    the paper ran directly on clouds (Figure 13) additionally see CPU,
    memory-bandwidth and I/O contention that varies per run — this knob
    models those other sources explicitly rather than pretending they
    do not exist.
    """

    def __init__(
        self,
        cluster: Cluster,
        job: JobSpec,
        rng: np.random.Generator | None = None,
        budget_gbit: float | None = None,
        node_data_skew: list[float] | None = None,
        run_noise_cov: float = 0.0,
    ) -> None:
        if run_noise_cov < 0:
            raise ValueError("run_noise_cov cannot be negative")
        self.cluster = cluster
        self.job = job
        self.rng = rng or np.random.default_rng(0)
        self.budget_gbit = budget_gbit
        self.run_noise_cov = float(run_noise_cov)
        self.engine = SparkEngine(
            cluster, rng=self.rng, node_data_skew=node_data_skew
        )
        self.fabric: Fabric = cluster.build_fabric()
        self._apply_budget()

    def _apply_budget(self) -> None:
        if self.budget_gbit is None:
            return
        for model in self.fabric.egress_models:
            if hasattr(model, "set_budget"):
                model.set_budget(self.budget_gbit)

    def measure(self) -> float:
        """Run the job once on the current fabric; returns runtime."""
        result = self.engine.run(self.job, fabric=self.fabric)
        runtime = result.runtime_s
        if self.run_noise_cov > 0:
            import math

            sigma = math.sqrt(math.log(1.0 + self.run_noise_cov**2))
            runtime *= float(
                self.rng.lognormal(mean=-(sigma**2) / 2.0, sigma=sigma)
            )
        return runtime

    def reset(self) -> None:
        """Fresh VMs: a brand-new fabric (and budget, if forced)."""
        self.fabric = self.cluster.build_fabric()
        self._apply_budget()

    def rest(self, duration_s: float) -> None:
        """Idle the network so shapers refill."""
        rest_fabric(self.fabric, duration_s)

    def set_budget(self, budget_gbit: float) -> None:
        """Force every shaper's budget (Figure 19's depletion ladder)."""
        self.budget_gbit = budget_gbit
        self._apply_budget()
