"""TPC-DS query models (Table 4, Figures 3b, 17, 19).

The paper runs TPC-DS at scale factor 2000 and reports per-query
budget sensitivity for the 21 queries on Figure 17's axis.  Each query
here is a two-stage job (scan -> join/aggregate) whose shuffle volume
determines its network demand class:

* **heavy** (Q65, Q68, Q19, Q46, Q59): large fact-fact joins; these
  develop 3-5x slowdowns when token budgets are small, and Q65 is the
  budget-*dependent* query of Figure 19;
* **medium** (Q7, Q27, Q53, Q63, Q70, Q73, Q79, Q89, Q98, ...):
  moderate shuffles, 1.5-2.5x slowdowns;
* **light** (Q3, Q34, Q42, Q43, Q52, Q55): dimension-join queries that
  barely touch the network;
* **compute-only** (Q82): the budget-*agnostic* query of Figure 19.

Volumes scale linearly with ``scale_factor / 2000``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.tasks import JobSpec, StageSpec

__all__ = ["QueryProfile", "TPCDS_QUERIES", "tpcds_catalog", "tpcds_job"]


@dataclass(frozen=True)
class QueryProfile:
    """Resource profile of one TPC-DS query at SF-2000."""

    query: int
    #: Mean per-task compute in the scan stage (seconds).
    scan_compute_s: float
    #: Mean per-task compute in the join/aggregate stage (seconds).
    join_compute_s: float
    #: Total shuffle volume between the stages (Gbit) at SF-2000.
    shuffle_gbit: float
    #: Input scanned from storage (Gbit) at SF-2000.
    input_gbit: float
    #: Demand class label, for reporting.
    network_class: str


#: Figure 17's query list with calibrated profiles.  The absolute
#: numbers target the paper's ranges (base runtimes of roughly
#: 25-100 s, worst-case times under 200 s at depleted budgets); the
#: *ordering* of network sensitivity is the load-bearing part.
_PROFILES: tuple[QueryProfile, ...] = (
    QueryProfile(3, 12.0, 6.0, 520.0, 240.0, "light"),
    QueryProfile(7, 16.0, 9.0, 840.0, 320.0, "medium"),
    QueryProfile(19, 18.0, 10.0, 1_800.0, 380.0, "heavy"),
    QueryProfile(27, 17.0, 9.0, 900.0, 340.0, "medium"),
    QueryProfile(34, 13.0, 7.0, 560.0, 260.0, "light"),
    QueryProfile(42, 10.0, 5.0, 480.0, 220.0, "light"),
    QueryProfile(43, 11.0, 6.0, 500.0, 230.0, "light"),
    QueryProfile(46, 19.0, 10.0, 1_600.0, 360.0, "heavy"),
    QueryProfile(52, 10.0, 5.0, 460.0, 220.0, "light"),
    QueryProfile(53, 15.0, 8.0, 760.0, 300.0, "medium"),
    QueryProfile(55, 11.0, 6.0, 470.0, 230.0, "light"),
    QueryProfile(59, 22.0, 12.0, 1_500.0, 420.0, "heavy"),
    QueryProfile(63, 15.0, 8.0, 720.0, 300.0, "medium"),
    QueryProfile(65, 20.0, 10.0, 2_200.0, 400.0, "heavy"),
    QueryProfile(68, 18.0, 10.0, 2_000.0, 380.0, "heavy"),
    QueryProfile(70, 21.0, 11.0, 1_100.0, 400.0, "medium"),
    QueryProfile(73, 13.0, 7.0, 600.0, 260.0, "medium"),
    QueryProfile(79, 16.0, 9.0, 1_000.0, 320.0, "medium"),
    QueryProfile(82, 34.0, 14.0, 40.0, 520.0, "compute-only"),
    QueryProfile(89, 15.0, 8.0, 860.0, 300.0, "medium"),
    QueryProfile(98, 14.0, 8.0, 680.0, 280.0, "medium"),
)

#: The Figure 17 query numbers, in axis order.
TPCDS_QUERIES: tuple[int, ...] = tuple(p.query for p in _PROFILES)

_BY_QUERY = {p.query: p for p in _PROFILES}


def tpcds_catalog() -> dict[int, QueryProfile]:
    """All 21 modeled queries keyed by query number."""
    return dict(_BY_QUERY)


def tpcds_job(
    query: int,
    n_nodes: int = 12,
    slots: int = 4,
    scale_factor: float = 2_000.0,
) -> JobSpec:
    """Build the job DAG for one TPC-DS query.

    ``scale_factor`` rescales data volumes linearly from the SF-2000
    calibration (Figure 3b uses a smaller scale on the 16-machine
    emulation cluster).
    """
    try:
        profile = _BY_QUERY[query]
    except KeyError:
        raise KeyError(
            f"query {query} is not in the modeled set {TPCDS_QUERIES}"
        ) from None
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    scale = scale_factor / 2_000.0
    scan_tasks = n_nodes * slots
    join_tasks = max(n_nodes * slots // 2, 1)
    return JobSpec(
        name=f"tpcds-q{profile.query}",
        stages=(
            StageSpec(
                name="scan",
                num_tasks=scan_tasks,
                compute_s=profile.scan_compute_s,
                compute_cov=0.15,
                input_gbit=profile.input_gbit * scale,
                input_locality=0.95,
            ),
            StageSpec(
                name="join-aggregate",
                num_tasks=join_tasks,
                compute_s=profile.join_compute_s,
                compute_cov=0.15,
                shuffle_gbit=profile.shuffle_gbit * scale,
                parents=(0,),
            ),
        ),
    )
