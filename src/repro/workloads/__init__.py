"""Workload models: HiBench applications and TPC-DS queries.

The paper exercises the network-variability substrate with two suites
(Table 4): HiBench at the "BigData" scale (K-Means, Terasort,
WordCount, Sort, Bayes) and TPC-DS at scale factor 2000 (the 21
queries of Figure 17).  Each workload here is a
:class:`~repro.simulator.tasks.JobSpec` builder whose compute/shuffle
profile is calibrated so the *relative* behaviour matches the paper:
Terasort and WordCount are network-hungry (large budget sensitivity in
Figure 16), K-Means and Bayes are compute-bound, and the TPC-DS
catalog spans budget-agnostic (Q82) to heavily budget-dependent (Q65)
queries (Figure 19).
"""

from repro.workloads.hibench import (
    HIBENCH_APPS,
    HIBENCH_CODES,
    build_bayes,
    build_kmeans,
    build_sort,
    build_terasort,
    build_wordcount,
    hibench_job,
)
from repro.workloads.tpcds import (
    TPCDS_QUERIES,
    QueryProfile,
    tpcds_catalog,
    tpcds_job,
)

__all__ = [
    "HIBENCH_APPS",
    "HIBENCH_CODES",
    "build_kmeans",
    "build_terasort",
    "build_wordcount",
    "build_sort",
    "build_bayes",
    "hibench_job",
    "TPCDS_QUERIES",
    "QueryProfile",
    "tpcds_catalog",
    "tpcds_job",
]
