"""HiBench workload models (Table 4, Figures 15-16).

Five applications at the "BigData" scale, modeled as Spark job DAGs.
The profiles encode what matters for the paper's experiments: how much
data each application shuffles relative to how long it computes.
Figure 16's ordering — Terasort (TS) and WordCount (WC) highly
budget-sensitive, Sort (S) intermediate, Bayes (BS) and K-Means (KM)
barely affected — is a direct consequence of these ratios.

Every builder takes the cluster geometry (``n_nodes``, ``slots``) and a
``data_scale`` multiplier so the same applications can run on the
12-node token-bucket testbed (Figures 15-16) and the 16-machine
Ballani-emulation cluster of Figure 3.
"""

from __future__ import annotations

from typing import Callable

from repro.simulator.tasks import JobSpec, StageSpec

__all__ = [
    "build_terasort",
    "build_wordcount",
    "build_sort",
    "build_kmeans",
    "build_bayes",
    "HIBENCH_APPS",
    "HIBENCH_CODES",
    "hibench_job",
]


def _tasks(n_nodes: int, slots: int, waves: int = 2) -> int:
    """Task count giving ``waves`` full scheduling waves."""
    return n_nodes * slots * waves


def build_terasort(
    n_nodes: int = 12, slots: int = 4, data_scale: float = 1.0
) -> JobSpec:
    """Terasort: sort ~600 GB; the most network-intensive application.

    The full dataset crosses the network in the shuffle, so per-node
    egress is ~``4800 * data_scale / n_nodes`` Gbit — the traffic shape
    plotted in Figure 15.
    """
    shuffle = 4_800.0 * data_scale
    input_gbit = 4_800.0 * data_scale
    return JobSpec(
        name="terasort",
        stages=(
            StageSpec(
                name="map",
                num_tasks=_tasks(n_nodes, slots),
                compute_s=22.0,
                compute_cov=0.12,
                input_gbit=input_gbit,
                input_locality=0.95,
            ),
            StageSpec(
                name="sort-reduce",
                num_tasks=_tasks(n_nodes, slots),
                compute_s=80.0,
                compute_cov=0.12,
                shuffle_gbit=shuffle,
                parents=(0,),
            ),
        ),
    )


def build_wordcount(
    n_nodes: int = 12, slots: int = 4, data_scale: float = 1.0
) -> JobSpec:
    """WordCount: large map-side input, substantial shuffle of counts."""
    return JobSpec(
        name="wordcount",
        stages=(
            StageSpec(
                name="tokenize",
                num_tasks=_tasks(n_nodes, slots),
                compute_s=35.0,
                compute_cov=0.12,
                input_gbit=3_200.0 * data_scale,
                input_locality=0.95,
            ),
            StageSpec(
                name="count-reduce",
                num_tasks=_tasks(n_nodes, slots, waves=1),
                compute_s=40.0,
                compute_cov=0.12,
                shuffle_gbit=2_400.0 * data_scale,
                parents=(0,),
            ),
        ),
    )


def build_sort(
    n_nodes: int = 12, slots: int = 4, data_scale: float = 1.0
) -> JobSpec:
    """Sort: like Terasort but smaller; intermediate network demand."""
    return JobSpec(
        name="sort",
        stages=(
            StageSpec(
                name="map",
                num_tasks=_tasks(n_nodes, slots),
                compute_s=14.0,
                compute_cov=0.12,
                input_gbit=1_600.0 * data_scale,
                input_locality=0.95,
            ),
            StageSpec(
                name="sort-reduce",
                num_tasks=_tasks(n_nodes, slots),
                compute_s=40.0,
                compute_cov=0.12,
                shuffle_gbit=1_600.0 * data_scale,
                parents=(0,),
            ),
        ),
    )


def build_kmeans(
    n_nodes: int = 12,
    slots: int = 4,
    data_scale: float = 1.0,
    iterations: int = 4,
) -> JobSpec:
    """K-Means: iterative, compute-bound; tiny per-iteration shuffles.

    Each iteration is a map over cached points plus a small aggregate
    of centroid statistics — the network barely matters, which is why
    K-Means sits at the bottom of Figure 16's sensitivity ordering.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    stages = [
        StageSpec(
            name="load",
            num_tasks=_tasks(n_nodes, slots, waves=1),
            compute_s=10.0,
            compute_cov=0.10,
            input_gbit=800.0 * data_scale,
            input_locality=0.95,
        )
    ]
    for i in range(iterations):
        stages.append(
            StageSpec(
                name=f"iteration-{i}",
                num_tasks=_tasks(n_nodes, slots, waves=1),
                compute_s=24.0,
                compute_cov=0.10,
                shuffle_gbit=24.0 * data_scale,
                parents=(len(stages) - 1,),
            )
        )
    return JobSpec(name="kmeans", stages=tuple(stages))


def build_bayes(
    n_nodes: int = 12, slots: int = 4, data_scale: float = 1.0
) -> JobSpec:
    """Naive Bayes training: compute-dominated with a modest shuffle."""
    return JobSpec(
        name="bayes",
        stages=(
            StageSpec(
                name="featurize",
                num_tasks=_tasks(n_nodes, slots),
                compute_s=30.0,
                compute_cov=0.12,
                input_gbit=1_200.0 * data_scale,
                input_locality=0.95,
            ),
            StageSpec(
                name="aggregate",
                num_tasks=_tasks(n_nodes, slots, waves=1),
                compute_s=28.0,
                compute_cov=0.12,
                shuffle_gbit=320.0 * data_scale,
                parents=(0,),
            ),
        ),
    )


#: Builders keyed by full name.
HIBENCH_APPS: dict[str, Callable[..., JobSpec]] = {
    "terasort": build_terasort,
    "wordcount": build_wordcount,
    "sort": build_sort,
    "kmeans": build_kmeans,
    "bayes": build_bayes,
}

#: Figure 16 uses two-letter codes; map them to full names.
HIBENCH_CODES: dict[str, str] = {
    "TS": "terasort",
    "WC": "wordcount",
    "S": "sort",
    "KM": "kmeans",
    "BS": "bayes",
}


def hibench_job(
    name_or_code: str,
    n_nodes: int = 12,
    slots: int = 4,
    data_scale: float = 1.0,
) -> JobSpec:
    """Build a HiBench job by name ("terasort") or code ("TS")."""
    name = HIBENCH_CODES.get(name_or_code.upper(), name_or_code.lower())
    try:
        builder = HIBENCH_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown HiBench app {name_or_code!r}; "
            f"expected one of {sorted(HIBENCH_APPS)} or codes {sorted(HIBENCH_CODES)}"
        ) from None
    return builder(n_nodes=n_nodes, slots=slots, data_scale=data_scale)
