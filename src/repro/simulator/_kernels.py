"""Compiled hot kernels for the fluid fabric, with graceful fallback.

The three inner loops that dominate event-step cost — progressive-
filling water-fill, the flow completion-bound scan, and the flow
advance/completion sweep — are written here as plain-Python functions
over numpy arrays and compiled with numba when it is importable.  The
selection happens once at import:

* numba present and ``REPRO_NO_JIT`` unset → :data:`HAVE_JIT` is True
  and the public names (:func:`waterfill`, :func:`flow_min_bound`,
  :func:`advance_flows`) are ``njit``-compiled (IEEE-strict: no
  ``fastmath``, so no FMA contraction — bit-exactness against the
  numpy paths is part of the contract and pinned by the golden trace);
* numba missing, or ``REPRO_NO_JIT`` set to anything non-empty →
  :data:`HAVE_JIT` is False and
  :class:`~repro.simulator.fabric.Fabric` keeps its numpy/scalar
  implementations (the compiled kernels would be *slower* as
  interpreted Python, so the fallback is "don't call them", not "call
  them uncompiled").

The uncompiled originals stay importable as ``*_py`` so the identity
tests can pin kernel algorithm ≡ fabric reference even on machines
without numba.

Every kernel reproduces its fabric counterpart's floating-point
operation order exactly:

* :func:`waterfill` is the reference progressive filling —
  first-appearance resource ordering, strict-min tie-break, per-frozen-
  flow clamped capacity subtraction — over CSR adjacency instead of
  dicts;
* :func:`flow_min_bound` is ``Fabric.horizon``'s completed/stalled/
  active classification per flow;
* :func:`advance_flows` is ``remaining -= rate * dt`` plus the
  completion-epsilon test, writing completed indices into a caller
  scratch buffer.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "HAVE_JIT",
    "waterfill",
    "flow_min_bound",
    "advance_flows",
    "waterfill_py",
    "flow_min_bound_py",
    "advance_flows_py",
]

HAVE_JIT = False
if not os.environ.get("REPRO_NO_JIT"):
    try:  # pragma: no cover - exercised only where numba is installed
        from numba import njit as _njit

        HAVE_JIT = True
    except ImportError:
        HAVE_JIT = False


def waterfill_py(
    src: np.ndarray,
    dst: np.ndarray,
    out_rem: np.ndarray,
    in_rem: np.ndarray,
    rate: np.ndarray,
) -> None:
    """Max-min progressive filling; writes per-flow rates into ``rate``.

    ``out_rem``/``in_rem`` are per-node egress/ingress capacities and
    are consumed (mutated) by the fill.  Resources are ranked by first
    appearance in the (out, src), (in, dst) sequence over flows in
    insertion order — the reference dict ordering — and the strictly
    smallest fair share freezes first.
    """
    n = src.shape[0]
    n_nodes = out_rem.shape[0]
    out_id = np.full(n_nodes, -1, np.int64)
    in_id = np.full(n_nodes, -1, np.int64)
    flow_out = np.empty(n, np.int64)
    flow_in = np.empty(n, np.int64)
    n_res = 0
    for i in range(n):
        s = src[i]
        r = out_id[s]
        if r < 0:
            r = n_res
            out_id[s] = r
            n_res += 1
        flow_out[i] = r
        d = dst[i]
        r = in_id[d]
        if r < 0:
            r = n_res
            in_id[d] = r
            n_res += 1
        flow_in[i] = r
    res_rem = np.empty(n_res, np.float64)
    res_cnt = np.zeros(n_res, np.int64)
    for node in range(n_nodes):
        r = out_id[node]
        if r >= 0:
            res_rem[r] = out_rem[node]
        r = in_id[node]
        if r >= 0:
            res_rem[r] = in_rem[node]
    for i in range(n):
        res_cnt[flow_out[i]] += 1
        res_cnt[flow_in[i]] += 1
    # CSR adjacency: resource -> member flows, ascending flow index.
    offsets = np.zeros(n_res + 1, np.int64)
    for i in range(n):
        offsets[flow_out[i] + 1] += 1
        offsets[flow_in[i] + 1] += 1
    for r in range(n_res):
        offsets[r + 1] += offsets[r]
    members = np.empty(2 * n, np.int64)
    cursor = offsets[:n_res].copy()
    for i in range(n):
        r = flow_out[i]
        members[cursor[r]] = i
        cursor[r] += 1
        r = flow_in[i]
        members[cursor[r]] = i
        cursor[r] += 1
    for i in range(n):
        rate[i] = 0.0
    fixed = np.zeros(n, np.bool_)
    n_unfixed = n
    while n_unfixed > 0:
        best = -1
        best_share = np.inf
        for r in range(n_res):
            c = res_cnt[r]
            if c > 0:
                share = res_rem[r] / c
                if share < best_share:
                    best_share = share
                    best = r
        if best < 0 or not np.isfinite(best_share):
            break
        rate_val = best_share if best_share > 0.0 else 0.0
        for k in range(offsets[best], offsets[best + 1]):
            i = members[k]
            if fixed[i]:
                continue
            fixed[i] = True
            rate[i] = rate_val
            n_unfixed -= 1
            r = flow_out[i]
            v = res_rem[r] - rate_val
            res_rem[r] = v if v > 0.0 else 0.0
            res_cnt[r] -= 1
            r = flow_in[i]
            v = res_rem[r] - rate_val
            res_rem[r] = v if v > 0.0 else 0.0
            res_cnt[r] -= 1


def flow_min_bound_py(remaining: np.ndarray, rate: np.ndarray) -> float:
    """Earliest flow completion under the current assignment (seconds).

    Completed flows (``remaining <= 0``) bound at 0, stalled flows
    (``rate <= 0``) never bind, active flows at ``remaining / rate``.
    """
    bound = np.inf
    for i in range(remaining.shape[0]):
        rem = remaining[i]
        if rem <= 0.0:
            completion = 0.0
        elif rate[i] <= 0.0:
            continue
        else:
            completion = rem / rate[i]
        if completion < bound:
            bound = completion
    return bound


def advance_flows_py(
    remaining: np.ndarray,
    rate: np.ndarray,
    dt: float,
    eps: float,
    done_idx: np.ndarray,
) -> int:
    """Integrate ``dt`` seconds of transfer; collect completed indices.

    Writes the indices of flows whose remaining volume dropped to/below
    ``eps`` into ``done_idx`` (caller scratch, length >= n) and returns
    how many there are.
    """
    n = remaining.shape[0]
    count = 0
    for i in range(n):
        rem = remaining[i] - rate[i] * dt
        remaining[i] = rem
        if rem <= eps:
            done_idx[count] = i
            count += 1
    return count


if HAVE_JIT:  # pragma: no cover - exercised only where numba is installed
    _compile = _njit(cache=True, fastmath=False)
    waterfill = _compile(waterfill_py)
    flow_min_bound = _compile(flow_min_bound_py)
    advance_flows = _compile(advance_flows_py)
else:
    waterfill = waterfill_py
    flow_min_bound = flow_min_bound_py
    advance_flows = advance_flows_py
