"""The Spark-like execution engine.

Executes a :class:`~repro.simulator.tasks.JobSpec` on a
:class:`~repro.simulator.cluster.Cluster` whose nodes send through
shaped egress links.  The engine reproduces the structure that makes
the paper's application-level results emerge:

* reduce stages shuffle-fetch from the nodes that ran their parents,
  so per-node token-bucket state shapes stage timing;
* tasks launch in waves onto executor slots; a wave's fetches from one
  source aggregate into a single *channel* flow (equivalent for
  equal-size, simultaneous fetches, and it keeps the fluid simulation
  fast);
* node budgets persist across jobs when the caller reuses a fabric —
  the carry-over that breaks iid repetitions in Figure 19;
* per-node egress rates and bucket budgets are recorded continuously,
  which is exactly what Figures 15 and 18 plot.

The scheduler is FIFO over stages (Spark's default within a job):
a stage becomes runnable when all its parents complete, and its tasks
are handed to free executor slots round-robin across nodes.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.simulator.cluster import Cluster
from repro.simulator.fabric import Fabric, Flow
from repro.simulator.tasks import JobSpec, StageSpec
from repro.trace import TimeSeries

__all__ = ["SparkEngine", "JobResult", "rest_fabric"]

#: Safety valve: a single job may not need more steps than this.
_MAX_STEPS = 5_000_000


class _TaskGroup:
    """A wave of same-stage tasks launched together on one node."""

    __slots__ = ("stage_index", "node", "n_tasks", "pending_flows", "extra_compute_s")

    def __init__(self, stage_index: int, node: int, n_tasks: int) -> None:
        self.stage_index = stage_index
        self.node = node
        self.n_tasks = n_tasks
        self.pending_flows = 0
        self.extra_compute_s = 0.0


@dataclass
class JobResult:
    """Everything one job run produced."""

    job_name: str
    runtime_s: float
    #: ``{stage_name: (start_s, end_s)}``
    stage_windows: dict[str, tuple[float, float]]
    #: Telemetry sample times.
    sample_times: np.ndarray
    #: ``egress_rates[node]`` aligned with :attr:`sample_times` (Gbps).
    egress_rates: np.ndarray
    #: ``budgets[node]`` aligned with :attr:`sample_times` (Gbit), or
    #: ``None`` when the shapers expose no budget.
    budgets: np.ndarray | None
    #: Tasks completed per node (over all stages).
    tasks_per_node: np.ndarray

    def node_bandwidth_series(self, node: int) -> TimeSeries:
        """Egress-rate time series for one node (Figure 15/18 panels)."""
        return TimeSeries(
            self.sample_times, self.egress_rates[node], label=f"node{node}-egress"
        )

    def node_budget_series(self, node: int) -> TimeSeries:
        """Budget time series for one node; raises when not recorded."""
        if self.budgets is None:
            raise ValueError("shapers exposed no budget; nothing recorded")
        return TimeSeries(
            self.sample_times, self.budgets[node], label=f"node{node}-budget"
        )

    def throttled_fraction(self, node: int, threshold_gbit: float = 1.0) -> float:
        """Fraction of samples a node's budget sat at/below ``threshold``."""
        if self.budgets is None:
            raise ValueError("shapers exposed no budget; nothing recorded")
        series = self.budgets[node]
        if series.size == 0:
            return 0.0
        return float(np.mean(series <= threshold_gbit))

    def straggler_nodes(self, threshold_gbit: float = 1.0) -> list[int]:
        """Nodes that depleted their budget while most others did not.

        Figure 18's situation: one node oscillating at the low QoS while
        the rest of the deployment stays fast.
        """
        if self.budgets is None:
            return []
        fractions = [
            self.throttled_fraction(n, threshold_gbit)
            for n in range(self.budgets.shape[0])
        ]
        median = float(np.median(fractions))
        return [
            n
            for n, frac in enumerate(fractions)
            if frac > 0.05 and frac > 4 * max(median, 0.005)
        ]


class SparkEngine:
    """Runs job DAGs on a cluster with shaped per-node egress."""

    def __init__(
        self,
        cluster: Cluster,
        rng: np.random.Generator | None = None,
        #: Per-node multiplier on shuffle-source shares; index 0 > 1
        #: models the driver/HDFS-master imbalance that creates the
        #: Figure 18 straggler.
        node_data_skew: list[float] | None = None,
        #: Telemetry sampling resolution; steps shorter than this still
        #: record, longer steps are recorded once (piecewise constant).
        sample_interval_s: float = 1.0,
    ) -> None:
        self.cluster = cluster
        self.rng = rng or np.random.default_rng(0)
        if node_data_skew is None:
            node_data_skew = [1.0] * cluster.n_nodes
        if len(node_data_skew) != cluster.n_nodes:
            raise ValueError("one skew factor per node required")
        if any(s <= 0 for s in node_data_skew):
            raise ValueError("skew factors must be positive")
        self.node_data_skew = list(node_data_skew)
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval_s = float(sample_interval_s)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, job: JobSpec, fabric: Fabric | None = None) -> JobResult:
        """Execute ``job``; returns runtimes and telemetry.

        Passing an existing ``fabric`` preserves shaper state across
        runs (budget carry-over); omitting it builds a fresh one
        ("fresh VMs for every experiment", the F5.4 recommendation).
        """
        if fabric is None:
            fabric = self.cluster.build_fabric()
        state = _RunState(self, job, fabric)
        return state.execute()

    def run_repetitions(
        self,
        job: JobSpec,
        repetitions: int,
        fresh_fabric: bool = True,
        rest_between_s: float = 0.0,
    ) -> list[JobResult]:
        """Run a job repeatedly under a chosen reset policy.

        ``fresh_fabric=False`` reuses one fabric across repetitions so
        shaper state (token budgets) carries over — the scenario that
        invalidates CI analysis in Figure 19.  ``rest_between_s`` lets
        buckets refill between runs, the paper's cheaper alternative to
        fresh VMs.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if rest_between_s < 0:
            raise ValueError("rest cannot be negative")
        results: list[JobResult] = []
        fabric = None if fresh_fabric else self.cluster.build_fabric()
        for _ in range(repetitions):
            results.append(self.run(job, fabric=fabric))
            if fabric is not None and rest_between_s > 0:
                rest_fabric(fabric, rest_between_s)
        return results

    # ------------------------------------------------------------------
    # helpers used by _RunState
    # ------------------------------------------------------------------
    def sample_compute_time(self, stage: StageSpec) -> float:
        """Per-task compute duration: lognormal around the stage mean."""
        if stage.compute_s == 0:
            return 0.0
        cov = stage.compute_cov
        if cov == 0:
            return stage.compute_s
        sigma = math.sqrt(math.log(1.0 + cov**2))
        mu = math.log(stage.compute_s) - sigma**2 / 2.0
        return float(self.rng.lognormal(mean=mu, sigma=sigma))


def rest_fabric(fabric: Fabric, duration_s: float) -> None:
    """Let every shaper idle for ``duration_s`` (buckets refill)."""
    for model in fabric.egress_models:
        remaining = duration_s
        while remaining > 1e-9:
            step = min(remaining, max(model.horizon(0.0), 1e-6))
            model.advance(min(step, remaining), 0.0)
            remaining -= step


class _RunState:
    """Mutable bookkeeping for one job execution."""

    def __init__(self, engine: SparkEngine, job: JobSpec, fabric: Fabric) -> None:
        self.engine = engine
        self.job = job
        self.fabric = fabric
        self.now = 0.0
        n_stages = len(job.stages)
        n_nodes = engine.cluster.n_nodes
        self.launched = [0] * n_stages
        self.done = [0] * n_stages
        self.stage_start = [math.inf] * n_stages
        self.stage_end = [math.inf] * n_stages
        self.tasks_run = np.zeros((n_stages, n_nodes), dtype=float)
        self.free_slots = [engine.cluster.node_spec.slots] * n_nodes
        self.compute_heap: list[tuple[float, int, _TaskGroup]] = []
        self._compute_counter = itertools.count()
        self._rr_node = 0
        # Telemetry buffers.
        self.sample_times: list[float] = []
        self.sample_rates: list[list[float]] = []
        self.sample_budgets: list[list[float]] | None = (
            [] if self._budgets_available() else None
        )
        self._last_sample_t = -math.inf

    # -- structural helpers ------------------------------------------------
    def _budgets_available(self) -> bool:
        return all(
            hasattr(m, "budget_gbit") for m in self.fabric.egress_models
        )

    def _stage_runnable(self, index: int) -> bool:
        stage = self.job.stages[index]
        if self.launched[index] >= stage.num_tasks:
            return False
        return all(
            self.done[p] >= self.job.stages[p].num_tasks for p in stage.parents
        )

    def _shuffle_shares(self, stage: StageSpec) -> np.ndarray:
        """Per-node fraction of the stage's shuffle input held locally."""
        n_nodes = self.engine.cluster.n_nodes
        counts = np.zeros(n_nodes)
        for parent in stage.parents:
            counts += self.tasks_run[parent]
        if counts.sum() == 0:
            counts = np.ones(n_nodes)
        counts = counts * np.asarray(self.engine.node_data_skew)
        return counts / counts.sum()

    # -- scheduling --------------------------------------------------------
    def _try_launch(self) -> None:
        n_nodes = self.engine.cluster.n_nodes
        for index, stage in enumerate(self.job.stages):
            while self._stage_runnable(index) and any(
                s > 0 for s in self.free_slots
            ):
                launched_any = False
                for offset in range(n_nodes):
                    node = (self._rr_node + offset) % n_nodes
                    slots = self.free_slots[node]
                    remaining = stage.num_tasks - self.launched[index]
                    if slots <= 0 or remaining <= 0:
                        continue
                    group_size = min(slots, remaining)
                    self._launch_group(index, stage, node, group_size)
                    self._rr_node = (node + 1) % n_nodes
                    launched_any = True
                    if self.launched[index] >= stage.num_tasks:
                        break
                if not launched_any:
                    break

    def _launch_group(
        self, index: int, stage: StageSpec, node: int, n_tasks: int
    ) -> None:
        if self.stage_start[index] == math.inf:
            self.stage_start[index] = self.now
        self.free_slots[node] -= n_tasks
        self.launched[index] += n_tasks
        group = _TaskGroup(index, node, n_tasks)
        fraction = n_tasks / stage.num_tasks
        disk_gbps = self.engine.cluster.node_spec.disk_gbps

        # Shuffle fetches: one channel per remote source node.
        if stage.shuffle_gbit > 0:
            shares = self._shuffle_shares(stage)
            group_volume = stage.shuffle_gbit * fraction
            for src, share in enumerate(shares):
                volume = group_volume * share
                if volume <= 1e-12:
                    continue
                if src == node:
                    group.extra_compute_s += volume / disk_gbps / n_tasks
                    continue
                self.fabric.add_flow(src, node, volume, tag=group)
                group.pending_flows += 1

        # Remote input reads (non-local HDFS blocks), spread uniformly
        # over the other nodes.
        remote_input = stage.input_gbit * (1.0 - stage.input_locality) * fraction
        local_input = stage.input_gbit * stage.input_locality * fraction
        group.extra_compute_s += local_input / disk_gbps / n_tasks
        if remote_input > 1e-12:
            n_nodes = self.engine.cluster.n_nodes
            others = [n for n in range(n_nodes) if n != node]
            per_src = remote_input / len(others)
            for src in others:
                self.fabric.add_flow(src, node, per_src, tag=group)
                group.pending_flows += 1

        if group.pending_flows == 0:
            self._start_computes(group)

    def _start_computes(self, group: _TaskGroup) -> None:
        stage = self.job.stages[group.stage_index]
        for _ in range(group.n_tasks):
            duration = (
                self.engine.sample_compute_time(stage) + group.extra_compute_s
            )
            heapq.heappush(
                self.compute_heap,
                (self.now + duration, next(self._compute_counter), group),
            )

    # -- completions ---------------------------------------------------------
    def _on_flow_complete(self, flow: Flow) -> None:
        group = flow.tag
        if not isinstance(group, _TaskGroup):
            return
        group.pending_flows -= 1
        if group.pending_flows == 0:
            self._start_computes(group)

    def _on_compute_complete(self, group: _TaskGroup) -> None:
        index = group.stage_index
        self.done[index] += 1
        self.tasks_run[index][group.node] += 1
        self.free_slots[group.node] += 1
        if self.done[index] >= self.job.stages[index].num_tasks:
            self.stage_end[index] = self.now

    # -- telemetry -------------------------------------------------------------
    def _record(self, force: bool = False) -> None:
        """Record the current rate assignment, valid from ``now`` onward.

        Called after :meth:`Fabric.compute_rates` and *before*
        :meth:`Fabric.advance`, so the sample describes the upcoming
        piecewise-constant segment rather than a stale assignment.
        """
        if (
            not force
            and self.now - self._last_sample_t
            < self.engine.sample_interval_s - 1e-12
        ):
            return
        self._last_sample_t = self.now
        self.sample_times.append(self.now)
        self.sample_rates.append(self.fabric.node_egress_rates())
        if self.sample_budgets is not None:
            self.sample_budgets.append(
                [m.budget_gbit for m in self.fabric.egress_models]
            )

    # -- main loop ---------------------------------------------------------------
    def execute(self) -> JobResult:
        self._try_launch()
        n_stages = len(self.job.stages)
        for _ in range(_MAX_STEPS):
            if all(
                self.done[i] >= self.job.stages[i].num_tasks
                for i in range(n_stages)
            ):
                break
            self.fabric.compute_rates()
            self._record()
            next_compute = (
                self.compute_heap[0][0] if self.compute_heap else math.inf
            )
            dt = min(self.fabric.horizon(), next_compute - self.now)
            if math.isinf(dt):
                raise RuntimeError(
                    f"deadlock at t={self.now}: no flows, no computes, "
                    f"stages done={self.done}"
                )
            dt = max(dt, 0.0)
            completed_flows = self.fabric.advance(dt)
            self.now += dt
            for flow in completed_flows:
                self._on_flow_complete(flow)
            while self.compute_heap and self.compute_heap[0][0] <= self.now + 1e-9:
                _, _, group = heapq.heappop(self.compute_heap)
                self._on_compute_complete(group)
            self._try_launch()
        else:
            raise RuntimeError("step budget exhausted; job did not converge")
        self.fabric.compute_rates()
        self._record(force=True)

        stage_windows = {
            stage.name: (self.stage_start[i], self.stage_end[i])
            for i, stage in enumerate(self.job.stages)
        }
        budgets = None
        if self.sample_budgets is not None:
            budgets = np.asarray(self.sample_budgets).T
        return JobResult(
            job_name=self.job.name,
            runtime_s=self.now,
            stage_windows=stage_windows,
            sample_times=np.asarray(self.sample_times),
            egress_rates=np.asarray(self.sample_rates).T,
            budgets=budgets,
            tasks_per_node=self.tasks_run.sum(axis=0),
        )
