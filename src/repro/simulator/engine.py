"""The Spark-like execution engine.

Executes a :class:`~repro.simulator.tasks.JobSpec` on a
:class:`~repro.simulator.cluster.Cluster` whose nodes send through
shaped egress links.  The engine reproduces the structure that makes
the paper's application-level results emerge:

* reduce stages shuffle-fetch from the nodes that ran their parents,
  so per-node token-bucket state shapes stage timing;
* tasks launch in waves onto executor slots; a wave's fetches from one
  source aggregate into a single *channel* flow (equivalent for
  equal-size, simultaneous fetches, and it keeps the fluid simulation
  fast);
* node budgets persist across jobs when the caller reuses a fabric —
  the carry-over that breaks iid repetitions in Figure 19;
* per-node egress rates and bucket budgets are recorded continuously,
  which is exactly what Figures 15 and 18 plot.

The scheduler is FIFO over stages (Spark's default within a job):
a stage becomes runnable when all its parents complete, and its tasks
are handed to free executor slots round-robin across nodes.

:meth:`SparkEngine.run_stream` generalizes the same machinery to a
*stream* of jobs arriving over time on one shared cluster/fabric —
the multi-tenant situation the scenarios subsystem sweeps.  Jobs
contend for executor slots under FIFO (arrival order drains first) or
fair (active jobs split free slots evenly) scheduling, and because the
fabric is shared, token-bucket depletion caused by one job carries
over into its successors — the Figure 19 mechanism generalized to
contended runs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.simulator.cluster import Cluster
from repro.simulator.fabric import Fabric, Flow
from repro.simulator.tasks import JobSpec, StageSpec
from repro.trace import TimeSeries

__all__ = ["SparkEngine", "JobResult", "StreamResult", "rest_fabric", "SCHEDULERS"]

#: Safety valve: a single job may not need more steps than this.
_MAX_STEPS = 5_000_000

#: Slot-scheduling policies understood by :meth:`SparkEngine.run_stream`.
SCHEDULERS: tuple[str, ...] = ("fifo", "fair")


class _TaskGroup:
    """A wave of same-stage tasks launched together on one node."""

    __slots__ = (
        "job_index",
        "stage_index",
        "node",
        "n_tasks",
        "pending_flows",
        "extra_compute_s",
    )

    def __init__(
        self, job_index: int, stage_index: int, node: int, n_tasks: int
    ) -> None:
        self.job_index = job_index
        self.stage_index = stage_index
        self.node = node
        self.n_tasks = n_tasks
        self.pending_flows = 0
        self.extra_compute_s = 0.0


@dataclass
class JobResult:
    """Everything one job run produced."""

    job_name: str
    runtime_s: float
    #: ``{stage_name: (start_s, end_s)}``
    stage_windows: dict[str, tuple[float, float]]
    #: Telemetry sample times.
    sample_times: np.ndarray
    #: ``egress_rates[node]`` aligned with :attr:`sample_times` (Gbps).
    egress_rates: np.ndarray
    #: ``budgets[node]`` aligned with :attr:`sample_times` (Gbit), or
    #: ``None`` when the shapers expose no budget.
    budgets: np.ndarray | None
    #: Tasks completed per node (over all stages).
    tasks_per_node: np.ndarray
    #: When the job entered the system (0 for standalone runs).
    submit_s: float = 0.0
    #: When the job's last stage completed (``submit_s + runtime_s``).
    finish_s: float = 0.0

    def node_bandwidth_series(self, node: int) -> TimeSeries:
        """Egress-rate time series for one node (Figure 15/18 panels)."""
        return TimeSeries(
            self.sample_times, self.egress_rates[node], label=f"node{node}-egress"
        )

    def node_budget_series(self, node: int) -> TimeSeries:
        """Budget time series for one node; raises when not recorded."""
        if self.budgets is None:
            raise ValueError("shapers exposed no budget; nothing recorded")
        return TimeSeries(
            self.sample_times, self.budgets[node], label=f"node{node}-budget"
        )

    def throttled_fraction(self, node: int, threshold_gbit: float = 1.0) -> float:
        """Fraction of samples a node's budget sat at/below ``threshold``."""
        if self.budgets is None:
            raise ValueError("shapers exposed no budget; nothing recorded")
        series = self.budgets[node]
        if series.size == 0:
            return 0.0
        return float(np.mean(series <= threshold_gbit))

    def straggler_nodes(self, threshold_gbit: float = 1.0) -> list[int]:
        """Nodes that depleted their budget while most others did not.

        Figure 18's situation: one node oscillating at the low QoS while
        the rest of the deployment stays fast.
        """
        if self.budgets is None:
            return []
        fractions = [
            self.throttled_fraction(n, threshold_gbit)
            for n in range(self.budgets.shape[0])
        ]
        median = float(np.median(fractions))
        return [
            n
            for n, frac in enumerate(fractions)
            if frac > 0.05 and frac > 4 * max(median, 0.005)
        ]


@dataclass
class StreamResult:
    """Everything one multi-job stream execution produced.

    Per-job details (stage windows, task placement, response times)
    live in :attr:`job_results`, ordered by submission; the telemetry
    arrays span the whole stream because egress shaping is a property
    of the shared cluster, not of any single job.
    """

    scheduler: str
    job_results: list[JobResult]
    makespan_s: float
    sample_times: np.ndarray
    egress_rates: np.ndarray
    budgets: np.ndarray | None
    #: Event steps the fluid simulation integrated (perf diagnostics:
    #: wall time / ``n_steps`` is the per-step cost, and event-horizon
    #: coalescing shows up as fewer steps for the same makespan).
    n_steps: int = 0

    def __len__(self) -> int:
        return len(self.job_results)

    def runtimes(self) -> np.ndarray:
        """Per-job response times (finish - submit), in submit order.

        Queueing behind earlier jobs counts: this is the latency a
        tenant observes, the quantity scenario campaigns aggregate.
        """
        return np.asarray([r.runtime_s for r in self.job_results])

    def queueing_delays(self) -> np.ndarray:
        """Seconds each job waited before its first task launched."""
        delays = []
        for result in self.job_results:
            first_start = min(w[0] for w in result.stage_windows.values())
            delays.append(first_start - result.submit_s)
        return np.asarray(delays)

    def rows(self) -> list[dict]:
        """Printable per-job rows."""
        return [
            {
                "job": r.job_name,
                "submit_s": round(r.submit_s, 1),
                "finish_s": round(r.finish_s, 1),
                "runtime_s": round(r.runtime_s, 1),
            }
            for r in self.job_results
        ]


class SparkEngine:
    """Runs job DAGs on a cluster with shaped per-node egress."""

    def __init__(
        self,
        cluster: Cluster,
        rng: np.random.Generator | None = None,
        #: Per-node multiplier on shuffle-source shares; index 0 > 1
        #: models the driver/HDFS-master imbalance that creates the
        #: Figure 18 straggler.
        node_data_skew: list[float] | None = None,
        #: Telemetry sampling resolution; steps shorter than this still
        #: record, longer steps are recorded once (piecewise constant).
        sample_interval_s: float = 1.0,
    ) -> None:
        self.cluster = cluster
        self.rng = rng or np.random.default_rng(0)
        if node_data_skew is None:
            node_data_skew = [1.0] * cluster.n_nodes
        if len(node_data_skew) != cluster.n_nodes:
            raise ValueError("one skew factor per node required")
        if any(s <= 0 for s in node_data_skew):
            raise ValueError("skew factors must be positive")
        self.node_data_skew = list(node_data_skew)
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval_s = float(sample_interval_s)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, job: JobSpec, fabric: Fabric | None = None) -> JobResult:
        """Execute ``job``; returns runtimes and telemetry.

        Passing an existing ``fabric`` preserves shaper state across
        runs (budget carry-over); omitting it builds a fresh one
        ("fresh VMs for every experiment", the F5.4 recommendation).
        """
        if fabric is None:
            fabric = self.cluster.build_fabric()
        state = _StreamState(self, [(0.0, job)], fabric, scheduler="fifo")
        return state.execute().job_results[0]

    def run_stream(
        self,
        arrivals: Sequence[tuple[float, JobSpec]],
        fabric: Fabric | None = None,
        scheduler: str = "fifo",
    ) -> StreamResult:
        """Execute a stream of jobs sharing this cluster's fabric.

        ``arrivals`` pairs each job with its submission time (seconds
        from stream start); jobs contend for executor slots under
        ``scheduler`` ("fifo" gives earlier arrivals absolute priority,
        "fair" splits free slots evenly across active jobs).  All jobs
        share one fabric, so token-bucket state one job depletes is the
        state the next job meets — the Figure 19 carry-over generalized
        to multi-tenant contention.  Passing an existing ``fabric``
        additionally carries shaper state in from earlier work.
        """
        if not arrivals:
            raise ValueError("a stream needs at least one job")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        for submit_s, _job in arrivals:
            if submit_s < 0:
                raise ValueError("submission times cannot be negative")
        if fabric is None:
            fabric = self.cluster.build_fabric()
        state = _StreamState(self, list(arrivals), fabric, scheduler=scheduler)
        return state.execute()

    def run_repetitions(
        self,
        job: JobSpec,
        repetitions: int,
        fresh_fabric: bool = True,
        rest_between_s: float = 0.0,
    ) -> list[JobResult]:
        """Run a job repeatedly under a chosen reset policy.

        ``fresh_fabric=False`` reuses one fabric across repetitions so
        shaper state (token budgets) carries over — the scenario that
        invalidates CI analysis in Figure 19.  ``rest_between_s`` lets
        buckets refill between runs, the paper's cheaper alternative to
        fresh VMs.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if rest_between_s < 0:
            raise ValueError("rest cannot be negative")
        results: list[JobResult] = []
        fabric = None if fresh_fabric else self.cluster.build_fabric()
        for _ in range(repetitions):
            results.append(self.run(job, fabric=fabric))
            if fabric is not None and rest_between_s > 0:
                rest_fabric(fabric, rest_between_s)
        return results

    # ------------------------------------------------------------------
    # helpers used by _RunState
    # ------------------------------------------------------------------
    def sample_compute_time(self, stage: StageSpec) -> float:
        """Per-task compute duration: lognormal around the stage mean."""
        if stage.compute_s == 0:
            return 0.0
        cov = stage.compute_cov
        if cov == 0:
            return stage.compute_s
        sigma = math.sqrt(math.log(1.0 + cov**2))
        mu = math.log(stage.compute_s) - sigma**2 / 2.0
        return float(self.rng.lognormal(mean=mu, sigma=sigma))


def rest_fabric(fabric: Fabric, duration_s: float) -> None:
    """Let every shaper idle for ``duration_s`` (buckets refill).

    Delegates to :meth:`~repro.netmodel.fleet.LinkModelFleet.rest`:
    token-bucket fleets refill in one closed-form batched step,
    resampling fleets batch each node's crossed-boundary redraws into
    one RNG call, and the scalar adapter falls back to per-model
    :meth:`~repro.netmodel.base.LinkModel.rest`.  Shaper ceilings may
    change while resting, so the fabric's rate assignment is
    invalidated.
    """
    fabric.fleet.rest(duration_s)
    fabric.invalidate_rates()


class _StreamState:
    """Mutable bookkeeping for one stream execution (1..n jobs)."""

    def __init__(
        self,
        engine: SparkEngine,
        arrivals: list[tuple[float, JobSpec]],
        fabric: Fabric,
        scheduler: str,
    ) -> None:
        self.engine = engine
        self.fabric = fabric
        self.scheduler = scheduler
        self.now = 0.0
        # Stable sort: ties keep caller submission order (FIFO tiebreak).
        order = sorted(range(len(arrivals)), key=lambda i: arrivals[i][0])
        self.submits = [float(arrivals[i][0]) for i in order]
        self.jobs = [arrivals[i][1] for i in order]
        n_jobs = len(self.jobs)
        n_nodes = engine.cluster.n_nodes
        self.launched = [[0] * len(job.stages) for job in self.jobs]
        self.done = [[0] * len(job.stages) for job in self.jobs]
        self.stage_start = [[math.inf] * len(job.stages) for job in self.jobs]
        self.stage_end = [[math.inf] * len(job.stages) for job in self.jobs]
        self.tasks_run = [
            np.zeros((len(job.stages), n_nodes), dtype=float) for job in self.jobs
        ]
        self.finished = [False] * n_jobs
        self._n_finished = 0
        self._skew_arr = np.asarray(engine.node_data_skew)
        self.finish_times = [math.inf] * n_jobs
        # Launch passes are pure no-ops unless a slot was freed, a
        # stage became runnable, or a job was admitted since the last
        # pass; the flag lets flow-only event steps skip scheduling.
        self._sched_dirty = True
        self._next_arrival = 0
        self._admitted: list[int] = []
        self.free_slots = [engine.cluster.node_spec.slots] * n_nodes
        self._free_total = sum(self.free_slots)
        self.compute_heap: list[tuple[float, int, _TaskGroup]] = []
        self._compute_counter = itertools.count()
        self._rr_node = 0
        # Incremental runnable-stage tracking: a stage is runnable while
        # every parent has completed and it still has tasks to launch.
        # Maintained at stage-completion and launch-exhaustion events so
        # launch passes never rescan O(jobs x stages) state.
        self._pending_parents = [
            [len(set(stage.parents)) for stage in job.stages] for job in self.jobs
        ]
        self._children: list[list[list[int]]] = []
        for job in self.jobs:
            children: list[list[int]] = [[] for _ in job.stages]
            for index, stage in enumerate(job.stages):
                for parent in set(stage.parents):
                    children[parent].append(index)
            self._children.append(children)
        self._runnable = [
            [i for i, n_pending in enumerate(pending) if n_pending == 0]
            for pending in self._pending_parents
        ]
        # O(1) progress counters (running-task and job-finished checks).
        self._launched_total = [0] * n_jobs
        self._done_total = [0] * n_jobs
        self._job_tasks = [
            sum(stage.num_tasks for stage in job.stages) for job in self.jobs
        ]
        # Telemetry: growable preallocated buffers, one row per sample.
        capacity = 1024
        self._n_samples = 0
        self._n_steps = 0
        self._t_buf = np.empty(capacity)
        self._rate_buf = np.empty((capacity, n_nodes))
        self._budget_buf: np.ndarray | None = (
            np.empty((capacity, n_nodes)) if self._budgets_available() else None
        )
        self._last_sample_t = -math.inf

    # -- structural helpers ------------------------------------------------
    def _budgets_available(self) -> bool:
        return self.fabric.fleet.budgets() is not None

    def _admit_arrivals(self) -> None:
        while (
            self._next_arrival < len(self.jobs)
            and self.submits[self._next_arrival] <= self.now + 1e-9
        ):
            self._admitted.append(self._next_arrival)
            self._next_arrival += 1
            self._sched_dirty = True

    def _active_jobs(self) -> list[int]:
        """Admitted, unfinished jobs in submission order."""
        return [j for j in self._admitted if not self.finished[j]]

    def _stage_runnable(self, j: int, index: int) -> bool:
        stage = self.jobs[j].stages[index]
        return (
            self._pending_parents[j][index] == 0
            and self.launched[j][index] < stage.num_tasks
        )

    def _job_has_runnable(self, j: int) -> bool:
        return bool(self._runnable[j])

    def _shuffle_shares(self, j: int, stage: StageSpec) -> np.ndarray:
        """Per-node fraction of the stage's shuffle input held locally."""
        n_nodes = self.engine.cluster.n_nodes
        counts = np.zeros(n_nodes)
        for parent in stage.parents:
            counts += self.tasks_run[j][parent]
        if counts.sum() == 0:
            counts = np.ones(n_nodes)
        counts = counts * self._skew_arr
        return counts / counts.sum()

    # -- scheduling --------------------------------------------------------
    def _try_launch(self) -> None:
        if self.scheduler == "fair":
            self._try_launch_fair()
            return
        for j in self._active_jobs():
            self._launch_for_job(j, math.inf)

    def _try_launch_fair(self) -> None:
        """Split the cluster's slots evenly across jobs with work.

        Fairness is accounted against slots a job already *holds*, not
        just slots free this instant: each pass computes the fair share
        (total slots over active jobs) and offers freed slots to jobs
        below their share first, most-starved first.  Without the
        deficit accounting, a job that grabbed the whole cluster before
        a second tenant arrived would reclaim every freed slot one at a
        time and fair would degenerate to FIFO.  Slots left over once
        every job is at its share (e.g. a tenant draining its last
        wave) spill greedily, again most-starved first.
        """
        total_slots = self.engine.cluster.total_slots
        launched_total = self._launched_total
        done_total = self._done_total
        finished = self.finished
        runnable = self._runnable
        while True:
            active = [
                j for j in self._admitted if not finished[j] and runnable[j]
            ]
            if not active or self._free_total <= 0:
                return
            share = max(1, total_slots // len(active))
            # Fewest running tasks first; submission order breaks ties.
            # Sorting (running, j) pairs avoids a Python-level key
            # callable per element — this pass runs every scheduling
            # round of every event step.
            order = sorted(
                [(launched_total[j] - done_total[j], j) for j in active]
            )
            launched = 0
            for running, j in order:
                deficit = share - running
                if deficit > 0:
                    launched += self._launch_for_job(j, deficit)
            if launched == 0:
                # Everyone is at/above the fair share; spill what's left.
                for _, j in order:
                    launched += self._launch_for_job(j, math.inf)
                    if launched:
                        break
            if launched == 0:
                return

    def _running_tasks(self, j: int) -> int:
        """Slots job ``j`` currently occupies (launched, not done)."""
        return self._launched_total[j] - self._done_total[j]

    def _launch_for_job(self, j: int, budget: float) -> int:
        """Launch up to ``budget`` tasks of job ``j``; returns the count."""
        n_nodes = self.engine.cluster.n_nodes
        total = 0
        stages = self.jobs[j].stages
        # Snapshot: launches only shrink the runnable set (a stage needs
        # a *completion* to become runnable, which can't happen here).
        for index in list(self._runnable[j]):
            stage = stages[index]
            while (
                budget > 0
                and self.launched[j][index] < stage.num_tasks
                and self._free_total > 0
            ):
                launched_any = False
                for offset in range(n_nodes):
                    node = (self._rr_node + offset) % n_nodes
                    slots = self.free_slots[node]
                    remaining = stage.num_tasks - self.launched[j][index]
                    if slots <= 0 or remaining <= 0:
                        continue
                    group_size = int(min(slots, remaining, budget))
                    self._launch_group(j, index, stage, node, group_size)
                    self._rr_node = (node + 1) % n_nodes
                    budget -= group_size
                    total += group_size
                    launched_any = True
                    if self.launched[j][index] >= stage.num_tasks or budget <= 0:
                        break
                if not launched_any:
                    break
        return total

    def _launch_group(
        self, j: int, index: int, stage: StageSpec, node: int, n_tasks: int
    ) -> None:
        if self.stage_start[j][index] == math.inf:
            self.stage_start[j][index] = self.now
        self.free_slots[node] -= n_tasks
        self._free_total -= n_tasks
        self.launched[j][index] += n_tasks
        self._launched_total[j] += n_tasks
        if self.launched[j][index] >= stage.num_tasks:
            self._runnable[j].remove(index)
        group = _TaskGroup(j, index, node, n_tasks)
        fraction = n_tasks / stage.num_tasks
        disk_gbps = self.engine.cluster.node_spec.disk_gbps

        # Shuffle fetches: one channel per remote source node.
        if stage.shuffle_gbit > 0:
            shares = self._shuffle_shares(j, stage)
            group_volume = stage.shuffle_gbit * fraction
            for src, share in enumerate(shares):
                volume = group_volume * share
                if volume <= 1e-12:
                    continue
                if src == node:
                    group.extra_compute_s += volume / disk_gbps / n_tasks
                    continue
                self.fabric.add_flow(src, node, volume, tag=group)
                group.pending_flows += 1

        # Remote input reads (non-local HDFS blocks), spread uniformly
        # over the other nodes.
        remote_input = stage.input_gbit * (1.0 - stage.input_locality) * fraction
        local_input = stage.input_gbit * stage.input_locality * fraction
        group.extra_compute_s += local_input / disk_gbps / n_tasks
        if remote_input > 1e-12:
            n_nodes = self.engine.cluster.n_nodes
            others = [n for n in range(n_nodes) if n != node]
            per_src = remote_input / len(others)
            for src in others:
                self.fabric.add_flow(src, node, per_src, tag=group)
                group.pending_flows += 1

        if group.pending_flows == 0:
            self._start_computes(group)

    def _start_computes(self, group: _TaskGroup) -> None:
        stage = self.jobs[group.job_index].stages[group.stage_index]
        for _ in range(group.n_tasks):
            duration = (
                self.engine.sample_compute_time(stage) + group.extra_compute_s
            )
            heapq.heappush(
                self.compute_heap,
                (self.now + duration, next(self._compute_counter), group),
            )

    # -- completions ---------------------------------------------------------
    def _on_flow_complete(self, flow: Flow) -> None:
        group = flow.tag
        if not isinstance(group, _TaskGroup):
            return
        group.pending_flows -= 1
        if group.pending_flows == 0:
            self._start_computes(group)

    def _on_compute_complete(self, group: _TaskGroup) -> None:
        j = group.job_index
        index = group.stage_index
        job = self.jobs[j]
        self.done[j][index] += 1
        self._done_total[j] += 1
        self.tasks_run[j][index][group.node] += 1
        self.free_slots[group.node] += 1
        self._free_total += 1
        self._sched_dirty = True
        if self.done[j][index] >= job.stages[index].num_tasks:
            self.stage_end[j][index] = self.now
            pending = self._pending_parents[j]
            for child in self._children[j][index]:
                pending[child] -= 1
                if (
                    pending[child] == 0
                    and self.launched[j][child] < job.stages[child].num_tasks
                ):
                    insort(self._runnable[j], child)
            if self._done_total[j] >= self._job_tasks[j]:
                self.finished[j] = True
                self._n_finished += 1
                self.finish_times[j] = self.now

    # -- telemetry -------------------------------------------------------------
    def _record(self, force: bool = False) -> None:
        """Record the current rate assignment, valid from ``now`` onward.

        Called after :meth:`Fabric.compute_rates` and *before*
        :meth:`Fabric.advance`, so the sample describes the upcoming
        piecewise-constant segment rather than a stale assignment.
        """
        if (
            not force
            and self.now - self._last_sample_t
            < self.engine.sample_interval_s - 1e-12
        ):
            return
        self._last_sample_t = self.now
        k = self._n_samples
        if k == self._t_buf.shape[0]:
            self._grow_telemetry()
        self._t_buf[k] = self.now
        self._rate_buf[k, :] = self.fabric._egress_raw()
        if self._budget_buf is not None:
            self._budget_buf[k, :] = self.fabric.fleet.budgets()
        self._n_samples = k + 1

    def _grow_telemetry(self) -> None:
        capacity = 2 * self._t_buf.shape[0]
        k = self._n_samples
        for name in ("_t_buf", "_rate_buf", "_budget_buf"):
            old = getattr(self, name)
            if old is None:
                continue
            new = np.empty((capacity,) + old.shape[1:])
            new[:k] = old[:k]
            setattr(self, name, new)

    # -- main loop ---------------------------------------------------------------
    def execute(self) -> StreamResult:
        self._admit_arrivals()
        self._try_launch()
        self._sched_dirty = False
        max_steps = _MAX_STEPS * len(self.jobs)
        fabric = self.fabric
        compute_heap = self.compute_heap
        submits = self.submits
        n_jobs = len(self.jobs)
        heappop = heapq.heappop
        for _ in range(max_steps):
            if self._n_finished == n_jobs:
                break
            self._n_steps += 1
            fabric.compute_rates()
            self._record()
            next_compute = compute_heap[0][0] if compute_heap else math.inf
            next_arrival = (
                submits[self._next_arrival]
                if self._next_arrival < n_jobs
                else math.inf
            )
            dt = min(
                fabric.horizon(),
                next_compute - self.now,
                next_arrival - self.now,
            )
            if math.isinf(dt):
                raise RuntimeError(
                    f"deadlock at t={self.now}: no flows, no computes, "
                    f"no arrivals, jobs done={self.finished}"
                )
            dt = max(dt, 0.0)
            completed_flows = fabric.advance(dt)
            self.now += dt
            for flow in completed_flows:
                self._on_flow_complete(flow)
            # Drain every compute due at (or epsilon-past) the new time
            # as one batch, then run a single launch pass for all of it.
            due_threshold = self.now + 1e-9
            while compute_heap and compute_heap[0][0] <= due_threshold:
                self._on_compute_complete(heappop(compute_heap)[2])
            self._admit_arrivals()
            if self._sched_dirty:
                self._sched_dirty = False
                self._try_launch()
        else:
            raise RuntimeError("step budget exhausted; stream did not converge")
        fabric.compute_rates()
        self._record(force=True)
        return self._build_result()

    # -- result assembly ---------------------------------------------------
    def _build_result(self) -> StreamResult:
        k = self._n_samples
        sample_times = self._t_buf[:k].copy()
        egress_rates = self._rate_buf[:k].copy().T
        budgets = None
        if self._budget_buf is not None:
            budgets = self._budget_buf[:k].copy().T
        single = len(self.jobs) == 1
        job_results = []
        for j, job in enumerate(self.jobs):
            submit = self.submits[j]
            finish = self.finish_times[j]
            if single:
                times, rates, buds = sample_times, egress_rates, budgets
            else:
                mask = (sample_times >= submit - 1e-9) & (
                    sample_times <= finish + 1e-9
                )
                times = sample_times[mask]
                rates = egress_rates[:, mask]
                buds = None if budgets is None else budgets[:, mask]
            stage_windows = {
                stage.name: (self.stage_start[j][i], self.stage_end[j][i])
                for i, stage in enumerate(job.stages)
            }
            job_results.append(
                JobResult(
                    job_name=job.name,
                    runtime_s=finish - submit,
                    stage_windows=stage_windows,
                    sample_times=times,
                    egress_rates=rates,
                    budgets=buds,
                    tasks_per_node=self.tasks_run[j].sum(axis=0),
                    submit_s=submit,
                    finish_s=finish,
                )
            )
        return StreamResult(
            scheduler=self.scheduler,
            job_results=job_results,
            makespan_s=self.now,
            sample_times=sample_times,
            egress_rates=egress_rates,
            budgets=budgets,
            n_steps=self._n_steps,
        )
