"""The Spark-like execution engine.

Executes a :class:`~repro.simulator.tasks.JobSpec` on a
:class:`~repro.simulator.cluster.Cluster` whose nodes send through
shaped egress links.  The engine reproduces the structure that makes
the paper's application-level results emerge:

* reduce stages shuffle-fetch from the nodes that ran their parents,
  so per-node token-bucket state shapes stage timing;
* tasks launch in waves onto executor slots; a wave's fetches from one
  source aggregate into a single *channel* flow (equivalent for
  equal-size, simultaneous fetches, and it keeps the fluid simulation
  fast);
* node budgets persist across jobs when the caller reuses a fabric —
  the carry-over that breaks iid repetitions in Figure 19;
* per-node egress rates and bucket budgets are recorded continuously,
  which is exactly what Figures 15 and 18 plot.

The scheduler is FIFO over stages (Spark's default within a job):
a stage becomes runnable when all its parents complete, and its tasks
are handed to free executor slots round-robin across nodes.

:meth:`SparkEngine.run_stream` generalizes the same machinery to a
*stream* of jobs arriving over time on one shared cluster/fabric —
the multi-tenant situation the scenarios subsystem sweeps.  Jobs
contend for executor slots under one of five schedulers:

* ``fifo`` — arrival order drains first (Spark's default);
* ``fair`` — active jobs split slots evenly, with deficit accounting
  so freed slots go to tenants below their share first and remainder
  slots spill round-robin across equally deficient peers;
* ``preempt`` — fair, plus preemption: when a starved tenant cannot
  reach its share because an over-share job holds every slot, the
  over-share job's most recently launched task groups are checkpointed
  back to their stage queue (flows withdrawn, slots freed; the tasks
  restart from scratch when relaunched);
* ``srpt`` — shortest remaining processing time: jobs ranked by
  outstanding expected task-seconds, the smallest drains first;
* ``edf`` — earliest deadline first, ordered by slack (deadline minus
  now minus the job's remaining work spread over the cluster); jobs
  without a deadline rank last.  Arrivals optionally carry a deadline
  as a third tuple element, and :class:`StreamResult` reports
  per-tenant slowdown and deadline-miss telemetry.

Because the fabric is shared, token-bucket depletion caused by one job
carries over into its successors — the Figure 19 mechanism generalized
to contended runs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.simulator.cluster import Cluster
from repro.simulator.core import MAX_STEPS, EventCore
from repro.simulator.fabric import Fabric, Flow
from repro.simulator.tasks import JobSpec, StageSpec
from repro.trace import TimeSeries

__all__ = ["SparkEngine", "JobResult", "StreamResult", "rest_fabric", "SCHEDULERS"]

#: Safety valve: a single job may not need more steps than this.
#: (Defined by the event core; re-exported here for the historical name.)
_MAX_STEPS = MAX_STEPS

#: Slot-scheduling policies understood by :meth:`SparkEngine.run_stream`.
SCHEDULERS: tuple[str, ...] = ("fifo", "fair", "preempt", "srpt", "edf")


class _TaskGroup:
    """A wave of same-stage tasks launched together on one node."""

    __slots__ = (
        "job_index",
        "stage_index",
        "node",
        "n_tasks",
        "n_done",
        "pending_flows",
        "extra_compute_s",
        "flows",
        "cancelled",
        "t_launch",
    )

    def __init__(
        self, job_index: int, stage_index: int, node: int, n_tasks: int
    ) -> None:
        self.job_index = job_index
        self.stage_index = stage_index
        self.node = node
        self.n_tasks = n_tasks
        self.n_done = 0
        self.pending_flows = 0
        self.extra_compute_s = 0.0
        #: Sim time the group launched; the recorder's task-latency base.
        self.t_launch = 0.0
        #: Live flow handles, kept so preemption can withdraw them.
        self.flows: list[Flow] = []
        #: Set when the group is preempted; queued compute completions
        #: of a cancelled group are discarded at the heap.
        self.cancelled = False


@dataclass
class JobResult:
    """Everything one job run produced."""

    job_name: str
    runtime_s: float
    #: ``{stage_name: (start_s, end_s)}``
    stage_windows: dict[str, tuple[float, float]]
    #: Telemetry sample times.
    sample_times: np.ndarray
    #: ``egress_rates[node]`` aligned with :attr:`sample_times` (Gbps).
    egress_rates: np.ndarray
    #: ``budgets[node]`` aligned with :attr:`sample_times` (Gbit), or
    #: ``None`` when the shapers expose no budget.
    budgets: np.ndarray | None
    #: Tasks completed per node (over all stages).
    tasks_per_node: np.ndarray
    #: When the job entered the system (0 for standalone runs).
    submit_s: float = 0.0
    #: When the job's last stage completed (``submit_s + runtime_s``).
    finish_s: float = 0.0
    #: Absolute completion deadline (``inf`` when none was set).
    deadline_s: float = math.inf
    #: Contention-free service-time proxy: the job's expected compute
    #: task-seconds spread over every slot in the cluster.  The
    #: denominator of :attr:`slowdown`.
    service_estimate_s: float = 0.0

    @property
    def slowdown(self) -> float:
        """Response time over the ideal service-time proxy (>= 0).

        The classic scheduling metric: 1.0 means the tenant saw the
        cluster as if alone and perfectly parallel; queueing, slot
        contention, and shaped-network transfer time all inflate it.
        """
        if self.service_estimate_s <= 0:
            return math.inf
        return self.runtime_s / self.service_estimate_s

    @property
    def deadline_missed(self) -> bool | None:
        """Whether the job finished past its deadline; None without one."""
        if math.isinf(self.deadline_s):
            return None
        return self.finish_s > self.deadline_s + 1e-9

    def node_bandwidth_series(self, node: int) -> TimeSeries:
        """Egress-rate time series for one node (Figure 15/18 panels)."""
        return TimeSeries(
            self.sample_times, self.egress_rates[node], label=f"node{node}-egress"
        )

    def node_budget_series(self, node: int) -> TimeSeries:
        """Budget time series for one node; raises when not recorded."""
        if self.budgets is None:
            raise ValueError("shapers exposed no budget; nothing recorded")
        return TimeSeries(
            self.sample_times, self.budgets[node], label=f"node{node}-budget"
        )

    def throttled_fraction(self, node: int, threshold_gbit: float = 1.0) -> float:
        """Fraction of samples a node's budget sat at/below ``threshold``."""
        if self.budgets is None:
            raise ValueError("shapers exposed no budget; nothing recorded")
        series = self.budgets[node]
        if series.size == 0:
            return 0.0
        return float(np.mean(series <= threshold_gbit))

    def straggler_nodes(self, threshold_gbit: float = 1.0) -> list[int]:
        """Nodes that depleted their budget while most others did not.

        Figure 18's situation: one node oscillating at the low QoS while
        the rest of the deployment stays fast.
        """
        if self.budgets is None:
            return []
        fractions = [
            self.throttled_fraction(n, threshold_gbit)
            for n in range(self.budgets.shape[0])
        ]
        median = float(np.median(fractions))
        return [
            n
            for n, frac in enumerate(fractions)
            if frac > 0.05 and frac > 4 * max(median, 0.005)
        ]


@dataclass
class StreamResult:
    """Everything one multi-job stream execution produced.

    Per-job details (stage windows, task placement, response times)
    live in :attr:`job_results`, ordered by submission; the telemetry
    arrays span the whole stream because egress shaping is a property
    of the shared cluster, not of any single job.
    """

    scheduler: str
    job_results: list[JobResult]
    makespan_s: float
    sample_times: np.ndarray
    egress_rates: np.ndarray
    budgets: np.ndarray | None
    #: Event steps the fluid simulation integrated (perf diagnostics:
    #: wall time / ``n_steps`` is the per-step cost, and event-horizon
    #: coalescing shows up as fewer steps for the same makespan).
    n_steps: int = 0

    def __len__(self) -> int:
        return len(self.job_results)

    def runtimes(self) -> np.ndarray:
        """Per-job response times (finish - submit), in submit order.

        Queueing behind earlier jobs counts: this is the latency a
        tenant observes, the quantity scenario campaigns aggregate.
        """
        return np.asarray([r.runtime_s for r in self.job_results])

    def queueing_delays(self) -> np.ndarray:
        """Seconds each job waited before its first task launched."""
        delays = []
        for result in self.job_results:
            first_start = min(w[0] for w in result.stage_windows.values())
            delays.append(first_start - result.submit_s)
        return np.asarray(delays)

    def slowdowns(self) -> np.ndarray:
        """Per-tenant slowdown (response over ideal service), submit order."""
        return np.asarray([r.slowdown for r in self.job_results])

    def deadline_misses(self) -> np.ndarray:
        """Boolean miss flags for the jobs that carried a deadline."""
        return np.asarray(
            [
                bool(r.deadline_missed)
                for r in self.job_results
                if r.deadline_missed is not None
            ],
            dtype=bool,
        )

    def deadline_miss_rate(self) -> float:
        """Fraction of deadlined jobs that finished late (0.0 if none)."""
        misses = self.deadline_misses()
        if misses.size == 0:
            return 0.0
        return float(np.mean(misses))

    def rows(self) -> list[dict]:
        """Printable per-job rows."""
        rows = []
        for r in self.job_results:
            row = {
                "job": r.job_name,
                "submit_s": round(r.submit_s, 1),
                "finish_s": round(r.finish_s, 1),
                "runtime_s": round(r.runtime_s, 1),
                "slowdown": round(r.slowdown, 2),
            }
            if r.deadline_missed is not None:
                row["deadline_s"] = round(r.deadline_s, 1)
                row["missed"] = r.deadline_missed
            rows.append(row)
        return rows


class SparkEngine:
    """Runs job DAGs on a cluster with shaped per-node egress."""

    def __init__(
        self,
        cluster: Cluster,
        rng: np.random.Generator | None = None,
        #: Per-node multiplier on shuffle-source shares; index 0 > 1
        #: models the driver/HDFS-master imbalance that creates the
        #: Figure 18 straggler.
        node_data_skew: list[float] | None = None,
        #: Telemetry sampling resolution; steps shorter than this still
        #: record, longer steps are recorded once (piecewise constant).
        sample_interval_s: float = 1.0,
    ) -> None:
        self.cluster = cluster
        self.rng = rng or np.random.default_rng(0)
        if node_data_skew is None:
            node_data_skew = [1.0] * cluster.n_nodes
        if len(node_data_skew) != cluster.n_nodes:
            raise ValueError("one skew factor per node required")
        if any(s <= 0 for s in node_data_skew):
            raise ValueError("skew factors must be positive")
        self.node_data_skew = list(node_data_skew)
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval_s = float(sample_interval_s)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        job: JobSpec,
        fabric: Fabric | None = None,
        recorder=None,
        scheduler: str = "fifo",
    ) -> JobResult:
        """Execute ``job``; returns runtimes and telemetry.

        Passing an existing ``fabric`` preserves shaper state across
        runs (budget carry-over); omitting it builds a fresh one
        ("fresh VMs for every experiment", the F5.4 recommendation).
        ``recorder`` attaches an :class:`~repro.obs.ObsRecorder`;
        ``scheduler`` picks the slot policy (see :data:`SCHEDULERS` —
        with a single job the policies mostly coincide, but preempt's
        group tracking and fair's share accounting are exercised).
        """
        self.validate_stream([(0.0, job)], scheduler)
        if fabric is None:
            fabric = self.cluster.build_fabric()
        state = _StreamState(
            self, [(0.0, job)], fabric, scheduler=scheduler, recorder=recorder
        )
        return state.execute().job_results[0]

    def run_stream(
        self,
        arrivals: Sequence[tuple],
        fabric: Fabric | None = None,
        scheduler: str = "fifo",
        recorder=None,
    ) -> StreamResult:
        """Execute a stream of jobs sharing this cluster's fabric.

        ``arrivals`` pairs each job with its submission time (seconds
        from stream start): ``(submit_s, job)``, optionally extended to
        ``(submit_s, job, deadline_s)`` where ``deadline_s`` is an
        absolute completion deadline (``None``/``inf`` for no
        deadline).  Jobs contend for executor slots under ``scheduler``
        (see :data:`SCHEDULERS`; "edf" orders by deadline slack, the
        others ignore deadlines but still report miss telemetry).  All
        jobs share one fabric, so token-bucket state one job depletes
        is the state the next job meets — the Figure 19 carry-over
        generalized to multi-tenant contention.  Passing an existing
        ``fabric`` additionally carries shaper state in from earlier
        work.

        ``recorder`` attaches an :class:`~repro.obs.ObsRecorder` that
        collects metrics, sim-time scrapes, streaming quantiles, and
        spans for this run.  Recorders only observe — results are
        bit-identical with and without one.
        """
        self.validate_stream(arrivals, scheduler)
        if fabric is None:
            fabric = self.cluster.build_fabric()
        state = _StreamState(
            self, list(arrivals), fabric, scheduler=scheduler, recorder=recorder
        )
        return state.execute()

    @staticmethod
    def validate_stream(arrivals: Sequence[tuple], scheduler: str) -> None:
        """Reject malformed streams before any state is built.

        Shared by :meth:`run_stream` and the batched multistream
        runner, so both paths fail identically on the same inputs.
        """
        if not arrivals:
            raise ValueError("a stream needs at least one job")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        for entry in arrivals:
            submit_s = entry[0]
            if submit_s < 0:
                raise ValueError("submission times cannot be negative")
            if len(entry) > 2 and entry[2] is not None:
                deadline = float(entry[2])
                if not math.isinf(deadline) and deadline < submit_s:
                    raise ValueError(
                        f"deadline {deadline} precedes submission {submit_s}"
                    )

    def run_repetitions(
        self,
        job: JobSpec,
        repetitions: int,
        fresh_fabric: bool = True,
        rest_between_s: float = 0.0,
        scheduler: str = "fifo",
        recorder=None,
    ) -> list[JobResult]:
        """Run a job repeatedly under a chosen reset policy.

        ``fresh_fabric=False`` reuses one fabric across repetitions so
        shaper state (token budgets) carries over — the scenario that
        invalidates CI analysis in Figure 19.  ``rest_between_s`` lets
        buckets refill between runs, the paper's cheaper alternative to
        fresh VMs.

        ``scheduler`` and ``recorder`` forward to :meth:`run` for each
        repetition.  A single recorder observes *all* repetitions
        cumulatively: every run rebinds it and restarts sim time at 0,
        so counters and spans accumulate across repetitions while
        sliding-window quantiles fold every repetition into the same
        windows — the right view for rep-over-rep variability, pass a
        fresh recorder per call for per-run isolation.  As everywhere,
        recorders only observe: results are bit-identical with and
        without one.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if rest_between_s < 0:
            raise ValueError("rest cannot be negative")
        results: list[JobResult] = []
        fabric = None if fresh_fabric else self.cluster.build_fabric()
        for _ in range(repetitions):
            results.append(
                self.run(job, fabric=fabric, recorder=recorder, scheduler=scheduler)
            )
            if fabric is not None and rest_between_s > 0:
                rest_fabric(fabric, rest_between_s)
        return results

    # ------------------------------------------------------------------
    # helpers used by _RunState
    # ------------------------------------------------------------------
    def sample_compute_time(self, stage: StageSpec) -> float:
        """Per-task compute duration: lognormal around the stage mean."""
        if stage.compute_s == 0:
            return 0.0
        cov = stage.compute_cov
        if cov == 0:
            return stage.compute_s
        sigma = math.sqrt(math.log(1.0 + cov**2))
        mu = math.log(stage.compute_s) - sigma**2 / 2.0
        return float(self.rng.lognormal(mean=mu, sigma=sigma))


def rest_fabric(fabric: Fabric, duration_s: float) -> None:
    """Let every shaper idle for ``duration_s`` (buckets refill).

    Delegates to :meth:`~repro.netmodel.fleet.LinkModelFleet.rest`:
    token-bucket fleets refill in one closed-form batched step,
    resampling fleets batch each node's crossed-boundary redraws into
    one RNG call, and the scalar adapter falls back to per-model
    :meth:`~repro.netmodel.base.LinkModel.rest`.  Shaper ceilings may
    change while resting, so the fabric's rate assignment is
    invalidated.
    """
    fabric.fleet.rest(duration_s)
    fabric.invalidate_rates()


class _StreamState(EventCore):
    """DAG-stream workload over the event core (1..n jobs).

    The generic event machinery — simulated time, the timer heap,
    telemetry buffers, the begin/prologue/epilogue/finish protocol —
    lives in :class:`~repro.simulator.core.EventCore`; this class
    implements the :class:`~repro.simulator.core.WorkloadSource` hooks
    for job streams: arrivals admit jobs, dispatch launches task waves
    under the configured scheduler, timers are task-compute
    completions, and flows are shuffle/input fetches.
    """

    def __init__(
        self,
        engine: SparkEngine,
        arrivals: list[tuple],
        fabric: Fabric,
        scheduler: str,
        recorder=None,
    ) -> None:
        super().__init__(engine, fabric, recorder=recorder)
        self.scheduler = scheduler
        # Stable sort: ties keep caller submission order (FIFO tiebreak).
        order = sorted(range(len(arrivals)), key=lambda i: arrivals[i][0])
        self.submits = [float(arrivals[i][0]) for i in order]
        self.jobs = [arrivals[i][1] for i in order]
        self.deadlines = [
            math.inf
            if len(arrivals[i]) < 3 or arrivals[i][2] is None
            else float(arrivals[i][2])
            for i in order
        ]
        n_jobs = len(self.jobs)
        n_nodes = engine.cluster.n_nodes
        self.launched = [[0] * len(job.stages) for job in self.jobs]
        self.done = [[0] * len(job.stages) for job in self.jobs]
        self.stage_start = [[math.inf] * len(job.stages) for job in self.jobs]
        self.stage_end = [[math.inf] * len(job.stages) for job in self.jobs]
        self.tasks_run = [
            np.zeros((len(job.stages), n_nodes), dtype=float) for job in self.jobs
        ]
        self.finished = [False] * n_jobs
        self._n_finished = 0
        self._skew_arr = np.asarray(engine.node_data_skew)
        self.finish_times = [math.inf] * n_jobs
        self._next_arrival = 0
        self._admitted: list[int] = []
        self.free_slots = [engine.cluster.node_spec.slots] * n_nodes
        self._free_total = sum(self.free_slots)
        self._rr_node = 0
        self.max_steps = _MAX_STEPS * n_jobs
        # Incremental runnable-stage tracking: a stage is runnable while
        # every parent has completed and it still has tasks to launch.
        # Maintained at stage-completion and launch-exhaustion events so
        # launch passes never rescan O(jobs x stages) state.
        self._pending_parents = [
            [len(set(stage.parents)) for stage in job.stages] for job in self.jobs
        ]
        self._children: list[list[list[int]]] = []
        for job in self.jobs:
            children: list[list[int]] = [[] for _ in job.stages]
            for index, stage in enumerate(job.stages):
                for parent in set(stage.parents):
                    children[parent].append(index)
            self._children.append(children)
        self._runnable = [
            [i for i, n_pending in enumerate(pending) if n_pending == 0]
            for pending in self._pending_parents
        ]
        # O(1) progress counters (running-task and job-finished checks).
        self._launched_total = [0] * n_jobs
        self._done_total = [0] * n_jobs
        self._job_tasks = [
            sum(stage.num_tasks for stage in job.stages) for job in self.jobs
        ]
        # Expected outstanding compute task-seconds per job: the SRPT
        # rank and the EDF slack numerator.  Decremented by the stage's
        # *mean* task time on each completion, so the estimate is a
        # deterministic function of progress, not of sampled durations.
        self._remaining_est = [
            sum(stage.compute_s * stage.num_tasks for stage in job.stages)
            for job in self.jobs
        ]
        total_slots = engine.cluster.total_slots
        # Contention-free service proxy: all task-seconds spread over
        # every slot (the slowdown denominator reported per tenant).
        self._service_est = [
            max(est / total_slots, 1e-9) for est in self._remaining_est
        ]
        # Launched-but-unfinished groups per job, in launch order; the
        # preemptive scheduler checkpoints from the tail (most recent
        # launch = least sunk work).  Only that scheduler pays for the
        # tracking — the per-flow handle retention and per-completion
        # list upkeep would otherwise tax every fifo/fair/srpt/edf
        # event step for state nothing reads.
        self._track_groups = scheduler == "preempt"
        # Preemption cancels queued compute timers; let the core purge
        # them at the heap head so they never bound the step size.
        self._purge_cancelled = self._track_groups
        self._active_groups: list[list[_TaskGroup]] = [[] for _ in self.jobs]
        if self._obs is not None:
            self._obs.bind_stream(self)
            self.fabric.set_recorder(self._obs)

    # -- structural helpers ------------------------------------------------
    def _next_arrival_time(self) -> float:
        return (
            self.submits[self._next_arrival]
            if self._next_arrival < len(self.jobs)
            else math.inf
        )

    def _admit_arrivals(self) -> None:
        while (
            self._next_arrival < len(self.jobs)
            and self.submits[self._next_arrival] <= self.now + 1e-9
        ):
            self._admitted.append(self._next_arrival)
            if self._obs is not None:
                self._obs.on_job_admitted(self, self._next_arrival)
            self._next_arrival += 1
            self._sched_dirty = True

    def _active_jobs(self) -> list[int]:
        """Admitted, unfinished jobs in submission order."""
        return [j for j in self._admitted if not self.finished[j]]

    def _stage_runnable(self, j: int, index: int) -> bool:
        stage = self.jobs[j].stages[index]
        return (
            self._pending_parents[j][index] == 0
            and self.launched[j][index] < stage.num_tasks
        )

    def _job_has_runnable(self, j: int) -> bool:
        return bool(self._runnable[j])

    def _shuffle_shares(self, j: int, stage: StageSpec) -> np.ndarray:
        """Per-node fraction of the stage's shuffle input held locally."""
        n_nodes = self.engine.cluster.n_nodes
        counts = np.zeros(n_nodes)
        for parent in stage.parents:
            counts += self.tasks_run[j][parent]
        if counts.sum() == 0:
            counts = np.ones(n_nodes)
        counts = counts * self._skew_arr
        return counts / counts.sum()

    # -- scheduling --------------------------------------------------------
    def _try_launch(self) -> None:
        scheduler = self.scheduler
        if scheduler == "fair":
            self._try_launch_fair()
        elif scheduler == "preempt":
            self._try_launch_preempt()
        elif scheduler in ("srpt", "edf"):
            self._try_launch_ranked()
        else:  # fifo
            for j in self._active_jobs():
                self._launch_for_job(j, math.inf)

    def _try_launch_fair(self) -> None:
        """Split the cluster's slots evenly across jobs with work.

        Fairness is accounted against slots a job already *holds*, not
        just slots free this instant: each pass computes the fair share
        (total slots over active jobs) and offers freed slots to jobs
        below their share first, most-starved first.  Without the
        deficit accounting, a job that grabbed the whole cluster before
        a second tenant arrived would reclaim every freed slot one at a
        time and fair would degenerate to FIFO.  Slots left over once
        every job is at its share (e.g. a tenant draining its last
        wave) spill greedily, again most-starved first.
        """
        total_slots = self.engine.cluster.total_slots
        launched_total = self._launched_total
        done_total = self._done_total
        finished = self.finished
        runnable = self._runnable
        while True:
            active = [
                j for j in self._admitted if not finished[j] and runnable[j]
            ]
            if not active or self._free_total <= 0:
                return
            share = max(1, total_slots // len(active))
            # Fewest running tasks first; submission order breaks ties.
            # Sorting (running, j) pairs avoids a Python-level key
            # callable per element — this pass runs every scheduling
            # round of every event step.
            order = sorted(
                [(launched_total[j] - done_total[j], j) for j in active]
            )
            launched = 0
            for running, j in order:
                deficit = share - running
                if deficit > 0:
                    launched += self._launch_for_job(j, deficit)
            if launched == 0:
                # Everyone is at/above the fair share; spill what's left
                # round-robin, one slot per job per pass, so equally
                # deficient peers split the remainder instead of the
                # first job in the sorted order taking every leftover
                # slot.  The enclosing loop re-sorts by running count,
                # so successive spill passes keep rotating fairly.
                for _, j in order:
                    launched += self._launch_for_job(j, 1)
                    if self._free_total <= 0:
                        break
            if launched == 0:
                return

    def _running_tasks(self, j: int) -> int:
        """Slots job ``j`` currently occupies (launched, not done)."""
        return self._launched_total[j] - self._done_total[j]

    def _try_launch_preempt(self) -> None:
        """Fair scheduling plus checkpoint-preemption of over-share jobs.

        After the ordinary fair pass, if a tenant with runnable work is
        still below its fair share and no slots are free (the situation
        a job that grabbed the whole cluster before the tenant arrived
        creates), the plan phase checkpoints task groups of the most
        over-share job — most recently launched first, so the least
        sunk work is lost — until the starved tenants' *unmet demand*
        (their share deficits, capped by what they can actually
        launch) is covered by freed slots, every victim is at its
        share, or no starved tenant remains.  Preempted tasks return
        to their stage's queue and restart from scratch when
        relaunched; a final fair pass then hands the freed slots to
        the starved tenants, most deficient first.
        """
        self._try_launch_fair()
        if self._free_total > 0:
            return
        total_slots = self.engine.cluster.total_slots
        preempted = False
        while True:
            active = self._active_jobs()
            if len(active) < 2:
                break
            # The share counts every active tenant, whether or not it
            # still has tasks to launch: a job occupying the cluster
            # with its final wave is exactly the victim preemption
            # exists for.
            share = max(1, total_slots // len(active))
            demand = 0
            for j in active:
                if not self._runnable[j]:
                    continue
                deficit = share - self._running_tasks(j)
                if deficit <= 0:
                    continue
                launchable = sum(
                    self.jobs[j].stages[i].num_tasks - self.launched[j][i]
                    for i in self._runnable[j]
                )
                demand += min(deficit, launchable)
            if demand <= self._free_total:
                # Already-freed slots cover everything the starved
                # tenants can use; preempting further would only
                # discard a victim's work to leave slots idle.
                break
            victims = [
                (self._running_tasks(j), j)
                for j in active
                if self._running_tasks(j) > share and self._active_groups[j]
            ]
            if not victims:
                break
            # Most over-share job loses work; ties resolve to the
            # latest submission (it has the least seniority).
            _, victim = max(victims)
            self._preempt_group(self._active_groups[victim][-1])
            preempted = True
        if preempted:
            self._try_launch_fair()

    def _preempt_group(self, group: _TaskGroup) -> None:
        """Checkpoint one launched group back to its stage queue."""
        j, index = group.job_index, group.stage_index
        group.cancelled = True
        if self._obs is not None:
            # Before the flow handles are withdrawn, so the recorder
            # can close the group's flow spans as cancelled.
            self._obs.on_group_preempt(self, group)
        for flow in group.flows:
            self.fabric.remove_flow(flow)  # no-op for completed flows
        group.flows.clear()
        group.pending_flows = 0
        remaining = group.n_tasks - group.n_done
        self.free_slots[group.node] += remaining
        self._free_total += remaining
        self.launched[j][index] -= remaining
        self._launched_total[j] -= remaining
        self._active_groups[j].remove(group)
        stage = self.jobs[j].stages[index]
        if (
            self._pending_parents[j][index] == 0
            and self.launched[j][index] < stage.num_tasks
            and index not in self._runnable[j]
        ):
            insort(self._runnable[j], index)
        self._sched_dirty = True

    def _try_launch_ranked(self) -> None:
        """Strict-priority launch for the srpt and edf schedulers.

        Jobs are ranked each pass — by outstanding expected
        task-seconds for srpt, by deadline slack for edf — and drain
        the free slots greedily in that order.  Job index breaks ties,
        so the order (and therefore the whole simulation) is
        deterministic.
        """
        active = [
            j
            for j in self._admitted
            if not self.finished[j] and self._runnable[j]
        ]
        if not active or self._free_total <= 0:
            return
        if self.scheduler == "srpt":
            order = sorted(active, key=lambda j: (self._remaining_est[j], j))
        else:
            order = sorted(active, key=lambda j: (self._slack(j), j))
        for j in order:
            if self._free_total <= 0:
                return
            self._launch_for_job(j, math.inf)

    def _slack(self, j: int) -> float:
        """EDF rank: time to deadline minus ideally-parallel remaining work.

        Jobs without a deadline report infinite slack and therefore
        yield to every deadlined job.
        """
        deadline = self.deadlines[j]
        if math.isinf(deadline):
            return math.inf
        remaining = self._remaining_est[j] / self.engine.cluster.total_slots
        return deadline - self.now - remaining

    def _launch_for_job(self, j: int, budget: float) -> int:
        """Launch up to ``budget`` tasks of job ``j``; returns the count."""
        n_nodes = self.engine.cluster.n_nodes
        total = 0
        stages = self.jobs[j].stages
        # Snapshot: launches only shrink the runnable set (a stage needs
        # a *completion* to become runnable, which can't happen here).
        for index in list(self._runnable[j]):
            stage = stages[index]
            while (
                budget > 0
                and self.launched[j][index] < stage.num_tasks
                and self._free_total > 0
            ):
                launched_any = False
                for offset in range(n_nodes):
                    node = (self._rr_node + offset) % n_nodes
                    slots = self.free_slots[node]
                    remaining = stage.num_tasks - self.launched[j][index]
                    if slots <= 0 or remaining <= 0:
                        continue
                    group_size = int(min(slots, remaining, budget))
                    self._launch_group(j, index, stage, node, group_size)
                    self._rr_node = (node + 1) % n_nodes
                    budget -= group_size
                    total += group_size
                    launched_any = True
                    if self.launched[j][index] >= stage.num_tasks or budget <= 0:
                        break
                if not launched_any:
                    break
        return total

    def _launch_group(
        self, j: int, index: int, stage: StageSpec, node: int, n_tasks: int
    ) -> None:
        obs = self._obs
        if self.stage_start[j][index] == math.inf:
            self.stage_start[j][index] = self.now
            if obs is not None:
                obs.on_stage_start(self, j, index)
        self.free_slots[node] -= n_tasks
        self._free_total -= n_tasks
        self.launched[j][index] += n_tasks
        self._launched_total[j] += n_tasks
        if self.launched[j][index] >= stage.num_tasks:
            self._runnable[j].remove(index)
        group = _TaskGroup(j, index, node, n_tasks)
        group.t_launch = self.now
        if self._track_groups:
            self._active_groups[j].append(group)
        fraction = n_tasks / stage.num_tasks
        disk_gbps = self.engine.cluster.node_spec.disk_gbps

        # Shuffle fetches: one channel per remote source node.
        if stage.shuffle_gbit > 0:
            shares = self._shuffle_shares(j, stage)
            group_volume = stage.shuffle_gbit * fraction
            for src, share in enumerate(shares):
                volume = group_volume * share
                if volume <= 1e-12:
                    continue
                if src == node:
                    group.extra_compute_s += volume / disk_gbps / n_tasks
                    continue
                flow = self.fabric.add_flow(src, node, volume, tag=group)
                if self._track_groups:
                    group.flows.append(flow)
                if obs is not None:
                    obs.on_flow_open(self, flow, group)
                group.pending_flows += 1

        # Remote input reads (non-local HDFS blocks), spread uniformly
        # over the other nodes.
        remote_input = stage.input_gbit * (1.0 - stage.input_locality) * fraction
        local_input = stage.input_gbit * stage.input_locality * fraction
        group.extra_compute_s += local_input / disk_gbps / n_tasks
        if remote_input > 1e-12:
            n_nodes = self.engine.cluster.n_nodes
            others = [n for n in range(n_nodes) if n != node]
            per_src = remote_input / len(others)
            for src in others:
                flow = self.fabric.add_flow(src, node, per_src, tag=group)
                if self._track_groups:
                    group.flows.append(flow)
                if obs is not None:
                    obs.on_flow_open(self, flow, group)
                group.pending_flows += 1

        if obs is not None:
            obs.on_group_launch(self, group)
        if group.pending_flows == 0:
            self._start_computes(group)

    def _start_computes(self, group: _TaskGroup) -> None:
        stage = self.jobs[group.job_index].stages[group.stage_index]
        for _ in range(group.n_tasks):
            duration = (
                self.engine.sample_compute_time(stage) + group.extra_compute_s
            )
            heapq.heappush(
                self.timer_heap,
                (self.now + duration, next(self._timer_counter), group),
            )

    # -- completions ---------------------------------------------------------
    def _on_flow_complete(self, flow: Flow) -> None:
        if self._obs is not None:
            self._obs.on_flow_close(self, flow)
        group = flow.tag
        if not isinstance(group, _TaskGroup):
            return
        group.pending_flows -= 1
        if group.pending_flows == 0:
            self._start_computes(group)

    def _on_timer(self, group: _TaskGroup) -> None:
        """A task-compute completion (the stream workload's only timer)."""
        obs = self._obs
        j = group.job_index
        index = group.stage_index
        job = self.jobs[j]
        self.done[j][index] += 1
        self._done_total[j] += 1
        group.n_done += 1
        if self._track_groups and group.n_done >= group.n_tasks:
            self._active_groups[j].remove(group)
        if obs is not None:
            obs.on_task_done(self, group)
        self._remaining_est[j] -= job.stages[index].compute_s
        self.tasks_run[j][index][group.node] += 1
        self.free_slots[group.node] += 1
        self._free_total += 1
        self._sched_dirty = True
        if self.done[j][index] >= job.stages[index].num_tasks:
            self.stage_end[j][index] = self.now
            if obs is not None:
                obs.on_stage_end(self, j, index)
            pending = self._pending_parents[j]
            for child in self._children[j][index]:
                pending[child] -= 1
                if (
                    pending[child] == 0
                    and self.launched[j][child] < job.stages[child].num_tasks
                ):
                    insort(self._runnable[j], child)
            if self._done_total[j] >= self._job_tasks[j]:
                self.finished[j] = True
                self._n_finished += 1
                self.finish_times[j] = self.now
                if obs is not None:
                    obs.on_job_finish(self, j)

    # -- main loop ---------------------------------------------------------------
    #
    # begin / step_prologue / step_epilogue / finish / execute live in
    # EventCore (repro.simulator.core), shared with the serving layer
    # and the batched multistream driver.  Only the workload hooks —
    # admission, dispatch, timer/flow completion, result assembly —
    # are implemented here.

    @property
    def all_done(self) -> bool:
        return self._n_finished == len(self.jobs)

    def deadlock_error(self) -> RuntimeError:
        return RuntimeError(
            f"deadlock at t={self.now}: no flows, no computes, "
            f"no arrivals, jobs done={self.finished}"
        )

    # -- result assembly ---------------------------------------------------
    def _build_result(self) -> StreamResult:
        k = self._n_samples
        sample_times = self._t_buf[:k].copy()
        egress_rates = self._rate_buf[:k].copy().T
        budgets = None
        if self._budget_buf is not None:
            budgets = self._budget_buf[:k].copy().T
        single = len(self.jobs) == 1
        job_results = []
        for j, job in enumerate(self.jobs):
            submit = self.submits[j]
            finish = self.finish_times[j]
            if single:
                times, rates, buds = sample_times, egress_rates, budgets
            else:
                mask = (sample_times >= submit - 1e-9) & (
                    sample_times <= finish + 1e-9
                )
                times = sample_times[mask]
                rates = egress_rates[:, mask]
                buds = None if budgets is None else budgets[:, mask]
            stage_windows = {
                stage.name: (self.stage_start[j][i], self.stage_end[j][i])
                for i, stage in enumerate(job.stages)
            }
            job_results.append(
                JobResult(
                    job_name=job.name,
                    runtime_s=finish - submit,
                    stage_windows=stage_windows,
                    sample_times=times,
                    egress_rates=rates,
                    budgets=buds,
                    tasks_per_node=self.tasks_run[j].sum(axis=0),
                    submit_s=submit,
                    finish_s=finish,
                    deadline_s=self.deadlines[j],
                    service_estimate_s=self._service_est[j],
                )
            )
        return StreamResult(
            scheduler=self.scheduler,
            job_results=job_results,
            makespan_s=self.now,
            sample_times=sample_times,
            egress_rates=egress_rates,
            budgets=budgets,
            n_steps=self._n_steps,
        )
