"""A block-placement storage substrate (HDFS-like).

Spark stages read their input from HDFS; task placement interacts with
block placement to determine how much input is read locally versus
fetched over the (shaped) network.  The engine consumes a simple
summary — the locality fraction — but the substrate is a real block
store: files are split into fixed-size blocks, replicated across
nodes, and read plans account for replica choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HdfsFile", "HdfsCluster"]


@dataclass
class HdfsFile:
    """One stored file: block size plus replica placements."""

    name: str
    size_gbit: float
    block_gbit: float
    #: ``placements[i]`` is the tuple of nodes holding replicas of
    #: block ``i``.
    placements: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def n_blocks(self) -> int:
        """Number of blocks the file occupies."""
        return len(self.placements)


class HdfsCluster:
    """Replicated block store across cluster nodes."""

    def __init__(
        self,
        n_nodes: int,
        replication: int = 3,
        block_gbit: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one datanode")
        if not 1 <= replication <= n_nodes:
            raise ValueError("replication must be in [1, n_nodes]")
        if block_gbit <= 0:
            raise ValueError("block size must be positive")
        self.n_nodes = int(n_nodes)
        self.replication = int(replication)
        self.block_gbit = float(block_gbit)
        self.files: dict[str, HdfsFile] = {}
        self._rng = rng or np.random.default_rng(0)

    def write(self, name: str, size_gbit: float) -> HdfsFile:
        """Store a file: blocks placed on random distinct replicas.

        Placement follows HDFS's default policy shape: a random primary
        plus distinct secondaries, independently per block, which
        spreads data approximately evenly.
        """
        if name in self.files:
            raise ValueError(f"file exists: {name!r}")
        if size_gbit <= 0:
            raise ValueError("file size must be positive")
        n_blocks = int(np.ceil(size_gbit / self.block_gbit))
        placements = []
        for _ in range(n_blocks):
            nodes = self._rng.choice(
                self.n_nodes, size=self.replication, replace=False
            )
            placements.append(tuple(int(n) for n in nodes))
        file = HdfsFile(
            name=name,
            size_gbit=size_gbit,
            block_gbit=self.block_gbit,
            placements=placements,
        )
        self.files[name] = file
        return file

    def delete(self, name: str) -> None:
        """Remove a file; raises KeyError when absent."""
        del self.files[name]

    def node_usage_gbit(self) -> list[float]:
        """Stored volume per node (replicas included)."""
        usage = [0.0] * self.n_nodes
        for file in self.files.values():
            per_block = min(file.block_gbit, file.size_gbit)
            for replicas in file.placements:
                for node in replicas:
                    usage[node] += per_block
        return usage

    def read_plan(
        self, name: str, reader_node: int
    ) -> tuple[float, dict[int, float]]:
        """Plan a full read of ``name`` from ``reader_node``.

        Returns ``(local_gbit, remote_gbit_by_source)``: blocks with a
        replica on the reader are read locally; others from the replica
        with the least assigned load so far (a greedy balancer, which
        is what HDFS short-circuit + datanode selection approximates).
        """
        file = self.files[name]
        local = 0.0
        remote: dict[int, float] = {}
        assigned_load: dict[int, float] = {}
        remaining = file.size_gbit
        for replicas in file.placements:
            volume = min(self.block_gbit, remaining)
            remaining -= volume
            if reader_node in replicas:
                local += volume
                continue
            source = min(replicas, key=lambda n: assigned_load.get(n, 0.0))
            remote[source] = remote.get(source, 0.0) + volume
            assigned_load[source] = assigned_load.get(source, 0.0) + volume
        return local, remote

    def locality_fraction(self, name: str, reader_nodes: list[int]) -> float:
        """Average local fraction when readers split the file evenly.

        This is the summary statistic workload builders hand to the
        engine: with 3-way replication on 12 nodes, ~25 % of blocks are
        node-local to any given reader; spreading tasks across all
        nodes (as Spark's locality scheduler does) pushes the effective
        fraction much higher.
        """
        if not reader_nodes:
            raise ValueError("need at least one reader")
        file = self.files[name]
        if file.n_blocks == 0:
            return 1.0
        local_blocks = 0
        for i, replicas in enumerate(file.placements):
            reader = reader_nodes[i % len(reader_nodes)]
            if reader in replicas:
                local_blocks += 1
            elif set(replicas) & set(reader_nodes):
                # Spark would schedule the task on a replica holder;
                # count as local when any reader node holds a replica.
                local_blocks += 1
        return local_blocks / file.n_blocks
