"""The workload-agnostic event-driven core of the fluid simulation.

Historically the event loop lived inside the engine's ``_StreamState``,
interleaved with DAG-job bookkeeping.  This module is that loop with
the workload factored out: :class:`EventCore` owns simulated time, the
timer heap, telemetry sampling, observability dispatch, and the
begin / step-prologue / step-epilogue / finish protocol the batched
multistream driver also speaks — while everything *workload-shaped*
(what arrives, what a timer completion means, what gets dispatched
onto the fabric) happens through the :class:`WorkloadSource` hooks a
subclass implements.

Two workloads ride the core today:

* ``repro.simulator.engine._StreamState`` — DAG job streams under the
  fifo/fair/preempt/srpt/edf schedulers.  The split is purely
  structural: every statement of the pre-split loop runs in the same
  order with the same operands, so golden traces, scheduler
  checksums, and ``repro bench --check`` results are bit-identical to
  the monolithic implementation.
* ``repro.serving.state.ServingState`` — open/closed-loop request
  serving over microservice call trees (per-hop fabric flows, think
  timers, SLO latency telemetry).

An event step is::

    events_in = state.step_prologue()        # rates, telemetry, bound
    dt = min(fabric.horizon(), events_in)    # piecewise-exact step
    completed = fabric.advance(dt)
    state.step_epilogue(dt, completed)       # timers, arrivals, dispatch

:meth:`EventCore.execute` drives that loop serially;
:func:`repro.simulator.multistream.run_cores` drives many cores in
lockstep through one concatenated shaper super-fleet.  Both produce
bit-identical results because the per-core arithmetic is unchanged —
only who calls the hooks differs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["EventCore", "WorkloadSource", "MAX_STEPS"]

#: Safety valve: steps one workload unit (job, request pool) may need.
MAX_STEPS = 5_000_000


@runtime_checkable
class WorkloadSource(Protocol):
    """The hook surface a workload implements over :class:`EventCore`.

    The core feeds three event kinds into the step loop — admissions,
    timer completions, and flow completions — and the workload decides
    what each means.  Hooks are named for their generic role; the DAG
    stream engine maps them to job admission / task-compute completion
    / shuffle-flow completion, the serving layer to request admission /
    service-compute (or think-time) completion / RPC-hop completion.
    """

    @property
    def all_done(self) -> bool:
        """True when no further event can produce work."""
        ...

    def _next_arrival_time(self) -> float:
        """Absolute time of the next external arrival (inf when none).

        Bounds the step size so admissions happen exactly on time;
        the default core implementation returns ``math.inf`` (purely
        timer/flow-driven workloads).
        """
        ...

    def _admit_arrivals(self) -> None:
        """Admit every external arrival due at (or epsilon-past) now."""
        ...

    def _try_launch(self) -> None:
        """Dispatch admitted-but-unlaunched work onto slots/fabric.

        Called whenever an event step set ``_sched_dirty`` (an
        admission, completion, or preemption changed what could run).
        """
        ...

    def _on_timer(self, payload: object) -> None:
        """Handle one due timer.  ``payload.cancelled`` timers are
        discarded by the core before this is called."""
        ...

    def _on_flow_complete(self, flow: object) -> None:
        """Handle one fabric flow that finished during the last step."""
        ...

    def _build_result(self) -> object:
        """Assemble the workload's result object (called by finish)."""
        ...


class EventCore:
    """Generic event-driven state: time, timers, telemetry, the loop.

    Subclasses implement the :class:`WorkloadSource` hooks.  ``engine``
    supplies the cluster (node count for telemetry), the RNG, and the
    telemetry sampling interval; ``fabric`` is the shared network the
    workload's flows traverse.  ``recorder`` attaches an
    :class:`~repro.obs.ObsRecorder`; it is normalized to ``None`` when
    absent or disabled so the hot path pays exactly one identity check
    per event, and it only reads state — results are bit-identical
    with and without one.
    """

    def __init__(self, engine, fabric, recorder=None) -> None:
        self.engine = engine
        self.fabric = fabric
        self.now = 0.0
        self._obs = (
            recorder
            if recorder is not None and getattr(recorder, "enabled", True)
            else None
        )
        # Dispatch passes are pure no-ops unless an event changed what
        # could run since the last pass; the flag lets flow-only event
        # steps skip scheduling.
        self._sched_dirty = True
        #: The timer heap: ``(due_time, seq, payload)`` triples.  The
        #: monotone sequence number makes equal-time pops stable, and
        #: payloads expose ``cancelled`` so withdrawn timers (e.g. a
        #: preempted task group's queued completions) are discarded
        #: lazily at the heap.
        self.timer_heap: list[tuple[float, int, object]] = []
        self._timer_counter = itertools.count()
        #: When True, the step prologue purges cancelled entries from
        #: the heap head so they never bound the step size.  Only
        #: workloads that actually cancel timers (the preemptive
        #: scheduler) pay for the purge scan.
        self._purge_cancelled = False
        #: Step budget for :meth:`execute` and the batched driver;
        #: subclasses scale it by their workload size.
        self.max_steps = MAX_STEPS
        # Telemetry: growable preallocated buffers, one row per sample.
        capacity = 1024
        n_nodes = engine.cluster.n_nodes
        self._n_samples = 0
        self._n_steps = 0
        self._t_buf = np.empty(capacity)
        self._rate_buf = np.empty((capacity, n_nodes))
        self._budget_buf: np.ndarray | None = (
            np.empty((capacity, n_nodes)) if self._budgets_available() else None
        )
        self._last_sample_t = -math.inf

    # -- workload hooks (overridden per WorkloadSource) --------------------
    @property
    def all_done(self) -> bool:
        raise NotImplementedError

    def _next_arrival_time(self) -> float:
        return math.inf

    def _admit_arrivals(self) -> None:
        pass

    def _try_launch(self) -> None:
        pass

    def _on_timer(self, payload) -> None:
        raise NotImplementedError

    def _on_flow_complete(self, flow) -> None:
        raise NotImplementedError

    def _build_result(self):
        raise NotImplementedError

    # -- timers ------------------------------------------------------------
    def schedule_timer(self, due_time: float, payload) -> None:
        """Queue ``payload`` to fire at ``due_time`` (absolute seconds)."""
        heapq.heappush(
            self.timer_heap, (due_time, next(self._timer_counter), payload)
        )

    # -- telemetry ---------------------------------------------------------
    def _budgets_available(self) -> bool:
        return self.fabric.fleet.budgets() is not None

    def _record(self, force: bool = False) -> None:
        """Record the current rate assignment, valid from ``now`` onward.

        Called after :meth:`Fabric.compute_rates` and *before*
        :meth:`Fabric.advance`, so the sample describes the upcoming
        piecewise-constant segment rather than a stale assignment.
        """
        if (
            not force
            and self.now - self._last_sample_t
            < self.engine.sample_interval_s - 1e-12
        ):
            return
        self._last_sample_t = self.now
        k = self._n_samples
        if k == self._t_buf.shape[0]:
            self._grow_telemetry()
        self._t_buf[k] = self.now
        self._rate_buf[k, :] = self.fabric._egress_raw()
        if self._budget_buf is not None:
            self._budget_buf[k, :] = self.fabric.fleet.budgets()
        self._n_samples = k + 1

    def _grow_telemetry(self) -> None:
        capacity = 2 * self._t_buf.shape[0]
        k = self._n_samples
        for name in ("_t_buf", "_rate_buf", "_budget_buf"):
            old = getattr(self, name)
            if old is None:
                continue
            new = np.empty((capacity,) + old.shape[1:])
            new[:k] = old[:k]
            setattr(self, name, new)

    # -- main loop ---------------------------------------------------------
    #
    # The event loop is split into begin / step_prologue / step_epilogue
    # / finish helpers so the serial loop below and the batched
    # multistream driver (repro.simulator.multistream) share one
    # definition of an event step.  Only the middle differs: the serial
    # loop asks its own fabric for horizon() and advance(), the batched
    # driver computes horizons and shaper advances for all cells in one
    # super-fleet call and hands each cell its own dt.  Helper order is
    # exactly the pre-split loop body, so serial traces are unchanged.

    def begin(self) -> None:
        """Admit and dispatch everything runnable at t=0."""
        self._admit_arrivals()
        self._try_launch()
        self._sched_dirty = False

    def step_prologue(self) -> float:
        """Open an event step: rates, telemetry, engine-event bound.

        Computes (or confirms) the rate assignment, samples telemetry,
        and returns the seconds until the next engine-side event —
        timer completion or external arrival — relative to ``now`` (inf
        when neither is pending).  The caller combines it with the
        fabric horizon to pick the step size.
        """
        self._n_steps += 1
        self.fabric.compute_rates()
        self._record()
        if self._obs is not None:
            self._obs.maybe_scrape(self)
        timer_heap = self.timer_heap
        if self._purge_cancelled:
            # Entries of cancelled payloads are discarded lazily;
            # purge them from the head so they never bound the
            # step size.
            heappop = heapq.heappop
            while timer_heap and timer_heap[0][2].cancelled:
                heappop(timer_heap)
        next_timer = timer_heap[0][0] if timer_heap else math.inf
        return min(
            next_timer - self.now, self._next_arrival_time() - self.now
        )

    def step_epilogue(self, dt: float, completed_flows: list) -> None:
        """Close an event step after the fabric advanced by ``dt``."""
        self.now += dt
        for flow in completed_flows:
            self._on_flow_complete(flow)
        # Drain every timer due at (or epsilon-past) the new time
        # as one batch, then run a single dispatch pass for all of it.
        timer_heap = self.timer_heap
        heappop = heapq.heappop
        due_threshold = self.now + 1e-9
        while timer_heap and timer_heap[0][0] <= due_threshold:
            payload = heappop(timer_heap)[2]
            if not payload.cancelled:
                self._on_timer(payload)
        self._admit_arrivals()
        if self._sched_dirty:
            self._sched_dirty = False
            self._try_launch()

    def deadlock_error(self) -> RuntimeError:
        return RuntimeError(
            f"deadlock at t={self.now}: no flows, no timers, no arrivals"
        )

    def finish(self):
        """Final sample, observability teardown, result assembly."""
        self.fabric.compute_rates()
        self._record(force=True)
        if self._obs is not None:
            self._obs.finalize(self)
            self.fabric.set_recorder(None)
        return self._build_result()

    def execute(self):
        self.begin()
        fabric = self.fabric
        obs = self._obs
        for _ in range(self.max_steps):
            if self.all_done:
                break
            events_in = self.step_prologue()
            dt = min(fabric.horizon(), events_in)
            if math.isinf(dt):
                raise self.deadlock_error()
            dt = max(dt, 0.0)
            if obs is not None:
                # Shaper transitions fire from inside advance(); stamp
                # them at the end of the step being integrated.
                obs.now = self.now + dt
            completed_flows = fabric.advance(dt)
            self.step_epilogue(dt, completed_flows)
        else:
            raise RuntimeError("step budget exhausted; stream did not converge")
        return self.finish()
