"""A minimal discrete-event kernel.

The engine's main loop is a fluid-flow integrator, but scheduled
one-shot events (job submission, delayed task launch, timed probes)
still need a queue.  :class:`EventQueue` is a deterministic heap: ties
on time break by insertion order, so runs are reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered callback queue with stable tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def schedule(self, time: float, callback: Callable[[], Any]) -> int:
        """Schedule ``callback`` at ``time``; returns a cancellable id."""
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        event_id = next(self._counter)
        heapq.heappush(self._heap, (time, event_id, callback))
        return event_id

    def cancel(self, event_id: int) -> None:
        """Cancel a scheduled event (no-op if already fired)."""
        self._cancelled.add(event_id)

    def next_time(self) -> float:
        """Time of the earliest pending event, or ``inf`` when empty."""
        self._drop_cancelled()
        if not self._heap:
            return math.inf
        return self._heap[0][0]

    def pop_due(self, now: float) -> list[Callable[[], Any]]:
        """Remove and return callbacks due at or before ``now``."""
        due: list[Callable[[], Any]] = []
        self._drop_cancelled()
        while self._heap and self._heap[0][0] <= now + 1e-12:
            _, event_id, callback = heapq.heappop(self._heap)
            if event_id not in self._cancelled:
                due.append(callback)
            else:
                self._cancelled.discard(event_id)
            self._drop_cancelled()
        return due

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            _, event_id, _ = heapq.heappop(self._heap)
            self._cancelled.discard(event_id)
