"""Batched multi-stream runner: many cells, one super-fleet, lockstep.

A campaign matrix is hundreds of *independent* small simulations, and
profiles of serial campaign execution show the per-event-step cost is
dominated not by arithmetic but by numpy ufunc dispatch on tiny
per-cell arrays — above all the shaper fleet's ``horizons`` and
``advance`` calls (a handful of vector ops over 4-16 links, paid per
cell per step).  This module amortizes that dispatch across cells: the
PR 3 struct-of-arrays trick applied one level up.

:func:`run_streams` builds each cell's engine state exactly as
:meth:`~repro.simulator.engine.SparkEngine.run_stream` would, then
stitches the cells' shaper fleets into one concatenated super-fleet
(:func:`~repro.netmodel.fleet.concat_fleets`) whose arrays the
per-cell fleets alias as slice views.  The driver then advances all
live cells in lockstep rounds:

1. per cell: the engine step prologue (rates, telemetry, next
   engine-side event) — pure per-cell Python, unchanged;
2. **one** ``horizons`` call on the super-fleet over every cell's
   egress rates, sliced back per cell for the (scalar-Python, bit-
   identical) horizon combine in
   :meth:`~repro.simulator.fabric.Fabric.horizon_with_shaper_bounds`;
3. **one** ``advance_many`` call with a per-link ``dt`` vector — each
   cell steps by *its own* event horizon; lockstep synchronizes
   Python-level rounds, never simulated clocks;
4. per cell: flow integration and the engine step epilogue.

Per-cell floating-point arithmetic, RNG draw order, and event order
are exactly the serial path's — every batched fleet operation is
elementwise in ``dt``, and the per-cell combines are selection-only —
so results are bit-identical to N ``run_stream`` calls (pinned by
tests/simulator/test_multistream.py across every scheduler).

Cells that finish early stay in the super-fleet as zero-``dt`` no-op
links until the last cell completes; a zero-``dt`` advance provably
leaves budgets, tiers, and clocks untouched regardless of the offered
rates.  Constraints: every cell's fleet must be the same concrete
class (group heterogeneous matrices first — the campaign batch
executor does), and recorders are unsupported (attach one by running
the cell serially).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.netmodel.fleet import concat_fleets
from repro.simulator.core import EventCore
from repro.simulator.engine import SparkEngine, StreamResult, _StreamState
from repro.simulator.fabric import Fabric

__all__ = ["StreamTask", "run_streams", "run_cores"]


@dataclass
class StreamTask:
    """One cell of a batched run: the ``run_stream`` argument tuple."""

    engine: SparkEngine
    arrivals: Sequence[tuple]
    scheduler: str = "fifo"
    #: Optional pre-built fabric (warm shaper state carry-in); built
    #: from the engine's cluster when None, as ``run_stream`` does.
    fabric: Fabric | None = field(default=None)


def run_streams(tasks: Sequence[StreamTask]) -> list[StreamResult]:
    """Run every task's stream, batched; results match serial order.

    Equivalent to ``[t.engine.run_stream(t.arrivals, fabric=t.fabric,
    scheduler=t.scheduler) for t in tasks]`` — bit-identically, per
    cell — but with all cells' shaper-fleet work batched through one
    concatenated super-fleet.

    Raises ValueError when the tasks' fleets are not all the same
    concrete class; callers with mixed matrices should group by fleet
    class (see ``repro.runtime.executors.BatchExecutor``).
    """
    tasks = list(tasks)
    if not tasks:
        return []
    states: list[_StreamState] = []
    for task in tasks:
        arrivals = list(task.arrivals)
        SparkEngine.validate_stream(arrivals, task.scheduler)
        fabric = task.fabric
        if fabric is None:
            fabric = task.engine.cluster.build_fabric()
        states.append(
            _StreamState(
                task.engine,
                arrivals,
                fabric,
                scheduler=task.scheduler,
                recorder=None,
            )
        )
    return run_cores(states)


def run_cores(states: "Sequence[EventCore]") -> list:
    """Advance pre-built event cores in lockstep; one result per core.

    The workload-agnostic batched driver: any
    :class:`~repro.simulator.core.EventCore` subclass — DAG stream
    states, serving states — rides the same super-fleet lockstep,
    because the driver only speaks the core's begin / step_prologue /
    step_epilogue / all_done / finish protocol plus the fabric's
    batched shaper interface.  Equivalent to
    ``[state.execute() for state in states]`` bit-identically per core
    (see the module docstring for why); per-core step budgets come
    from ``state.max_steps``.

    Constraints are :func:`run_streams`'s: every core's fleet must be
    the same concrete class, and recorders must be detached.
    """
    states = list(states)
    if not states:
        return []
    super_fleet = concat_fleets([state.fabric.fleet for state in states])
    n_cells = len(states)
    sizes = np.array([state.fabric.n_nodes for state in states], dtype=np.intp)
    offsets = np.zeros(n_cells + 1, dtype=np.intp)
    np.cumsum(sizes, out=offsets[1:])
    lo = offsets[:-1].tolist()
    hi = offsets[1:].tolist()
    n_links = int(offsets[-1])
    # Egress and dt staging for the batched fleet calls.  Each cell's
    # fabric maintains its egress cache directly in its slice of
    # ``all_egress`` (see ``Fabric._egress_raw``), so the prologue
    # never copies egress vectors around.  Finished cells keep dt 0 —
    # a zero-dt advance is a no-op for every fleet class whatever the
    # egress values, so they ride along (egress slice stale, never
    # read back) until the whole batch drains.
    all_egress = np.zeros(n_links, dtype=float)
    for state, cell_lo, cell_hi in zip(states, lo, hi):
        fabric = state.fabric
        fabric._egress_cache = None
        fabric._egress_out = all_egress[cell_lo:cell_hi]
    # Per-link dt expansion: one indexed gather per round instead of a
    # fresh np.repeat allocation.
    cell_of_link = np.repeat(np.arange(n_cells, dtype=np.intp), sizes)
    dt_links = np.empty(n_links, dtype=float)
    changed_buf = np.empty(n_cells, dtype=bool)
    dt_buf = np.zeros(n_cells, dtype=float)
    # Per-cell dt lives in a plain list (read and written every round
    # per cell); it is copied into ``dt_buf`` once per round for the
    # batched fleet call.
    dt_cells = [0.0] * n_cells
    events_in = [math.inf] * n_cells
    steps_left = [state.max_steps for state in states]
    for state in states:
        state.begin()
    active = [ci for ci in range(n_cells) if not states[ci].all_done]
    while active:
        for ci in active:
            state = states[ci]
            events_in[ci] = state.step_prologue()
            # Refills the cell's slice of all_egress in place (no-op
            # when the cached egress is still valid).
            state.fabric._egress_raw()
        shaper_all = super_fleet.horizons(all_egress).tolist()
        for ci in active:
            state = states[ci]
            dt = min(
                state.fabric.horizon_with_shaper_bounds(
                    shaper_all[lo[ci] : hi[ci]]
                ),
                events_in[ci],
            )
            if math.isinf(dt):
                raise state.deadlock_error()
            dt_cells[ci] = dt if dt > 0.0 else 0.0
        dt_buf[:] = dt_cells
        np.take(dt_buf, cell_of_link, out=dt_links)
        changed_links = super_fleet.advance_many(dt_links, all_egress)
        changed_cells = (
            None
            if changed_links is None
            else np.logical_or.reduceat(
                changed_links, offsets[:-1], out=changed_buf
            ).tolist()
        )
        still_active = []
        for ci in active:
            state = states[ci]
            dt = dt_cells[ci]
            limit_changed = (
                changed_cells[ci] if changed_cells is not None else False
            )
            completed_flows = state.fabric._advance_flows(dt, limit_changed)
            state.step_epilogue(dt, completed_flows)
            if state.all_done:
                # Park the cell: zero dt makes its links no-ops in
                # every subsequent batched round (whatever its stale
                # egress slice holds, a zero-dt advance changes no
                # fleet state and its horizons are never read).
                dt_cells[ci] = 0.0
                continue
            steps_left[ci] -= 1
            if steps_left[ci] <= 0:
                raise RuntimeError(
                    "step budget exhausted; stream did not converge"
                )
            still_active.append(ci)
        active = still_active
    for state in states:
        # Unhook the staging views so fabrics that outlive the batch
        # (warm-state carry-out) allocate their own egress buffers.
        state.fabric._egress_out = None
    return [state.finish() for state in states]
