"""Job descriptions: tasks, stages, and DAGs.

A :class:`JobSpec` is the static description of a Spark job: a DAG of
:class:`StageSpec` entries.  Map-like stages read (mostly local) input
and compute; reduce-like stages first shuffle-fetch their input from
the nodes that ran their parent stages, then compute.  The engine
turns these descriptions into flows and compute phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageSpec", "JobSpec"]


@dataclass(frozen=True)
class StageSpec:
    """One stage of a job DAG."""

    name: str
    num_tasks: int
    #: Mean per-task compute time in seconds.
    compute_s: float
    #: Lognormal coefficient of variation of per-task compute times.
    compute_cov: float = 0.10
    #: Total volume this stage shuffle-fetches from its parents' output
    #: (Gbit, summed over all tasks).  Zero for map stages.
    shuffle_gbit: float = 0.0
    #: Total input read from storage (Gbit); the non-local fraction is
    #: fetched over the network.
    input_gbit: float = 0.0
    #: Fraction of ``input_gbit`` that is node-local (HDFS locality).
    input_locality: float = 1.0
    #: Indices of parent stages within the job (must precede this one).
    parents: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("a stage needs at least one task")
        if self.compute_s < 0:
            raise ValueError("compute time cannot be negative")
        if self.compute_cov < 0:
            raise ValueError("compute CoV cannot be negative")
        if self.shuffle_gbit < 0 or self.input_gbit < 0:
            raise ValueError("data volumes cannot be negative")
        if not 0.0 <= self.input_locality <= 1.0:
            raise ValueError("locality must be a fraction")

    @property
    def network_gbit(self) -> float:
        """Data this stage moves over the network (shuffle + remote reads)."""
        return self.shuffle_gbit + self.input_gbit * (1.0 - self.input_locality)


@dataclass(frozen=True)
class JobSpec:
    """A DAG of stages; stage indices are topologically ordered."""

    name: str
    stages: tuple[StageSpec, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a job needs at least one stage")
        for i, stage in enumerate(self.stages):
            for parent in stage.parents:
                if not 0 <= parent < i:
                    raise ValueError(
                        f"stage {i} ({stage.name!r}) has invalid parent {parent}; "
                        "stages must be topologically ordered"
                    )

    @property
    def total_network_gbit(self) -> float:
        """Total network volume across all stages."""
        return sum(stage.network_gbit for stage in self.stages)

    @property
    def total_compute_s(self) -> float:
        """Total task-seconds of compute across all stages."""
        return sum(stage.compute_s * stage.num_tasks for stage in self.stages)

    def network_intensity(self, cluster_bandwidth_gbps: float = 10.0) -> float:
        """Rough network-boundedness: transfer time over compute time.

        Used to order workloads the way Figure 16 does (TS and WC are
        the network-hungry ones, K-Means barely touches the fabric).
        """
        if self.total_compute_s == 0:
            return float("inf")
        transfer_s = self.total_network_gbit / cluster_bandwidth_gbps
        return transfer_s / self.total_compute_s
