"""A discrete-event, fluid-flow simulator of a Spark-like cluster.

Section 4 runs HiBench and TPC-DS on a 12-node Spark cluster whose
network is shaped by the emulated EC2 token bucket.  The application-
level phenomena the paper reports — budget-dependent slowdowns
(Figures 15-17), shaper-induced stragglers (Figure 18), and non-iid
repetitions (Figure 19) — all arise from the *interaction* between the
stage/shuffle structure of the jobs and the per-node shapers.  This
package models exactly that interaction:

* :mod:`repro.simulator.events` — a minimal event-queue kernel;
* :mod:`repro.simulator.fabric` — fluid flows with max-min fair
  sharing, bounded by per-node egress shapers (any
  :class:`~repro.netmodel.base.LinkModel`) and ingress capacities;
* :mod:`repro.simulator.cluster` — node and cluster descriptions;
* :mod:`repro.simulator.hdfs` — a block-placement storage substrate
  used to derive input locality;
* :mod:`repro.simulator.tasks` — tasks, stages, and job DAGs;
* :mod:`repro.simulator.engine` — the DAG scheduler / execution engine
  producing runtimes and per-node utilization/budget telemetry.
"""

from repro.simulator.cluster import Cluster, NodeSpec
from repro.simulator.engine import (
    SCHEDULERS,
    JobResult,
    SparkEngine,
    StreamResult,
)
from repro.simulator.events import EventQueue
from repro.simulator.fabric import Fabric, Flow
from repro.simulator.hdfs import HdfsCluster, HdfsFile
from repro.simulator.tasks import JobSpec, StageSpec

__all__ = [
    "EventQueue",
    "Fabric",
    "Flow",
    "Cluster",
    "NodeSpec",
    "HdfsCluster",
    "HdfsFile",
    "JobSpec",
    "StageSpec",
    "SparkEngine",
    "JobResult",
    "StreamResult",
    "SCHEDULERS",
]
