"""A discrete-event, fluid-flow simulator of a Spark-like cluster.

Section 4 runs HiBench and TPC-DS on a 12-node Spark cluster whose
network is shaped by the emulated EC2 token bucket.  The application-
level phenomena the paper reports — budget-dependent slowdowns
(Figures 15-17), shaper-induced stragglers (Figure 18), and non-iid
repetitions (Figure 19) — all arise from the *interaction* between the
stage/shuffle structure of the jobs and the per-node shapers.  This
package models exactly that interaction:

* :mod:`repro.simulator.events` — a minimal event-queue kernel;
* :mod:`repro.simulator.core` — the workload-agnostic event-driven
  core (:class:`EventCore` + the :class:`WorkloadSource` hook
  protocol) shared by the DAG stream engine and ``repro.serving``;
* :mod:`repro.simulator.fabric` — fluid flows with max-min fair
  sharing, bounded by per-node egress shapers (any
  :class:`~repro.netmodel.base.LinkModel`) and ingress capacities;
* :mod:`repro.simulator.cluster` — node and cluster descriptions;
* :mod:`repro.simulator.hdfs` — a block-placement storage substrate
  used to derive input locality;
* :mod:`repro.simulator.tasks` — tasks, stages, and job DAGs;
* :mod:`repro.simulator.engine` — the DAG scheduler / execution engine
  producing runtimes and per-node utilization/budget telemetry.

**Hot-path design (array-based fabric).**  Campaign throughput is
gated by the event loop's per-step cost, so the innermost state is
struct-of-arrays: the fabric keeps flow ``src``/``dst``/``remaining``/
``rate`` in flat numpy arrays (insertion-ordered; :class:`Flow`
objects are handles into them), water-fills via ``np.bincount``
incidence counts with a vectorized fair-share pass per saturated
resource, and fuses ``horizon``/``advance`` into single array
expressions.  Below ~64 flows the water-filling/horizon scans cut over
to the scalar reference algorithm (numpy dispatch overhead beats
vectorization on tiny operands; both paths are bit-identical, which a
hypothesis test enforces).  Per event step the cost is

* one lazy water-filling — skipped entirely unless a flow arrived or
  completed, a shaper ceiling moved, or a caller invalidated rates;
  otherwise O(bottlenecks x flows) in vectorized ops;
* one cached per-node egress aggregation (``bincount``), shared by
  telemetry, ``horizon``, and ``advance`` instead of recomputed
  thrice;
* one ``advance``/``horizon``/``limit`` call per shaper model (these
  stay scalar objects so heterogeneous fleets keep working);
* O(1) scheduler bookkeeping: runnable stages are maintained
  incrementally at stage-completion/launch-exhaustion events, and
  launch passes are skipped on steps where no slot was freed, no
  stage became runnable, and no job arrived.

Telemetry appends into growable preallocated numpy buffers.  The
refactor is *bit-exact* against the reference implementation — the
golden-trace test (``tests/simulator/test_golden_trace.py``) pins
pre-refactor outputs, and determinism tests guarantee same seed ⇒
identical timings.  Benchmarks: ``python -m repro bench`` (or
``python benchmarks/bench_engine_hotpath.py``) times a 16-node/200-job
stream plus a 10k-flow water-filling microbench and records the
trajectory in ``BENCH_engine.json``; read it with
``python -m repro bench --table-only``.
"""

from repro.simulator.cluster import Cluster, NodeSpec
from repro.simulator.core import EventCore, WorkloadSource
from repro.simulator.engine import (
    SCHEDULERS,
    JobResult,
    SparkEngine,
    StreamResult,
)
from repro.simulator.events import EventQueue
from repro.simulator.fabric import Fabric, Flow
from repro.simulator.hdfs import HdfsCluster, HdfsFile
from repro.simulator.tasks import JobSpec, StageSpec

__all__ = [
    "EventQueue",
    "EventCore",
    "WorkloadSource",
    "Fabric",
    "Flow",
    "Cluster",
    "NodeSpec",
    "HdfsCluster",
    "HdfsFile",
    "JobSpec",
    "StageSpec",
    "SparkEngine",
    "JobResult",
    "StreamResult",
    "SCHEDULERS",
]
