"""Cluster topology: nodes, executor slots, and shaped NICs.

The paper's Section 4 testbed: 12 nodes, 16 cores, 64 GB memory,
256 GB SSD, FDR InfiniBand — with the emulated EC2 token-bucket policy
imposed per node.  :class:`Cluster` carries that description plus a
factory for per-node egress shapers, and builds the
:class:`~repro.simulator.fabric.Fabric` a run executes on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.netmodel.base import ConstantRateModel, LinkModel
from repro.simulator.fabric import Fabric

__all__ = ["NodeSpec", "Cluster"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one worker node."""

    cores: int = 16
    memory_gb: float = 64.0
    disk_gbps: float = 4.0
    #: Ingress capacity in Gbps (the receive side of the NIC).
    ingress_gbps: float = 10.0
    #: Executor slots available for tasks; Spark defaults to one task
    #: per core but the paper's configs (and our wave-aggregation)
    #: use a smaller executor size.
    slots: int = 4

    def __post_init__(self) -> None:
        if self.cores < 1 or self.slots < 1:
            raise ValueError("cores and slots must be >= 1")
        if self.disk_gbps <= 0 or self.ingress_gbps <= 0:
            raise ValueError("disk and ingress rates must be positive")


class Cluster:
    """A set of nodes plus a factory for their egress shapers."""

    def __init__(
        self,
        n_nodes: int = 12,
        node_spec: NodeSpec | None = None,
        link_model_factory: Callable[[int], LinkModel] | None = None,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("a cluster needs at least 2 nodes")
        self.n_nodes = int(n_nodes)
        self.node_spec = node_spec or NodeSpec()
        if link_model_factory is None:
            link_model_factory = lambda node: ConstantRateModel(10.0)  # noqa: E731
        self._factory = link_model_factory

    def build_fabric(self) -> Fabric:
        """Instantiate fresh egress shapers and wire up the fabric."""
        models = [self._factory(node) for node in range(self.n_nodes)]
        caps = [self.node_spec.ingress_gbps] * self.n_nodes
        return Fabric(egress_models=models, ingress_caps_gbps=caps)

    @property
    def total_slots(self) -> int:
        """Executor slots across the whole cluster."""
        return self.n_nodes * self.node_spec.slots

    @classmethod
    def paper_testbed(
        cls, link_model_factory: Callable[[int], LinkModel] | None = None
    ) -> "Cluster":
        """The 12-node cluster of Table 4."""
        return cls(
            n_nodes=12,
            node_spec=NodeSpec(
                cores=16, memory_gb=64.0, disk_gbps=4.0, ingress_gbps=10.0, slots=4
            ),
            link_model_factory=link_model_factory,
        )

    @classmethod
    def emulation_testbed(
        cls,
        n_nodes: int,
        link_model_factory: Callable[[int], LinkModel],
        slots: int = 4,
    ) -> "Cluster":
        """The 16-machine private Spark cluster of Section 2.1."""
        return cls(
            n_nodes=n_nodes,
            node_spec=NodeSpec(slots=slots),
            link_model_factory=link_model_factory,
        )
