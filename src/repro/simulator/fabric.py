"""The cluster network fabric: fluid flows with max-min fair sharing.

Every node has an egress shaper (any
:class:`~repro.netmodel.base.LinkModel` — a token bucket for the
emulated-EC2 experiments) and an ingress capacity.  Active flows share
those resources max-min fairly, which is what TCP congestion control
approximates for long-lived shuffle transfers on a non-blocking core
(the paper's 12-node cluster has an FDR InfiniBand fabric, so node
access links are the only bottlenecks).

Rates are piecewise-constant: :meth:`Fabric.compute_rates` performs the
water-filling, :meth:`Fabric.horizon` bounds how long the current rate
assignment stays valid (flow completions and shaper transitions), and
:meth:`Fabric.advance` integrates one step, returning completed flows.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.netmodel.base import LinkModel

__all__ = ["Flow", "Fabric"]


class Flow:
    """One fluid transfer between two nodes."""

    __slots__ = ("flow_id", "src", "dst", "remaining_gbit", "rate_gbps", "tag")

    def __init__(
        self, flow_id: int, src: int, dst: int, volume_gbit: float, tag: object = None
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.remaining_gbit = volume_gbit
        self.rate_gbps = 0.0
        self.tag = tag

    def completion_time(self) -> float:
        """Seconds until completion at the current rate."""
        if self.remaining_gbit <= 0:
            return 0.0
        if self.rate_gbps <= 0:
            return math.inf
        return self.remaining_gbit / self.rate_gbps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.src}->{self.dst}, {self.remaining_gbit:.1f} Gbit "
            f"@ {self.rate_gbps:.2f} Gbps)"
        )


class Fabric:
    """Max-min fair fluid network between cluster nodes."""

    def __init__(
        self,
        egress_models: Sequence[LinkModel],
        ingress_caps_gbps: Sequence[float],
    ) -> None:
        if len(egress_models) != len(ingress_caps_gbps):
            raise ValueError("one ingress cap per egress model required")
        if any(cap <= 0 for cap in ingress_caps_gbps):
            raise ValueError("ingress caps must be positive")
        self.egress_models = list(egress_models)
        self.ingress_caps = [float(c) for c in ingress_caps_gbps]
        self.flows: dict[int, Flow] = {}
        self._next_id = 0
        self._rates_valid = False

    @property
    def n_nodes(self) -> int:
        """Number of nodes attached to the fabric."""
        return len(self.egress_models)

    def add_flow(self, src: int, dst: int, volume_gbit: float, tag: object = None) -> Flow:
        """Register a new transfer; rates are recomputed lazily."""
        if not 0 <= src < self.n_nodes or not 0 <= dst < self.n_nodes:
            raise ValueError(f"flow endpoints out of range: {src}->{dst}")
        if src == dst:
            raise ValueError("loopback transfers never touch the fabric")
        if volume_gbit <= 0:
            raise ValueError("flow volume must be positive")
        flow = Flow(self._next_id, src, dst, volume_gbit, tag=tag)
        self._next_id += 1
        self.flows[flow.flow_id] = flow
        self._rates_valid = False
        return flow

    def remove_flow(self, flow: Flow) -> None:
        """Withdraw a flow (for cancelled tasks)."""
        self.flows.pop(flow.flow_id, None)
        self._rates_valid = False

    def compute_rates(self) -> None:
        """Water-filling max-min fair allocation under current limits.

        Resources are node egress limits (from the shapers' current
        state) and node ingress caps.  Classic progressive filling:
        repeatedly saturate the tightest resource and freeze its flows.
        """
        flows = list(self.flows.values())
        for flow in flows:
            flow.rate_gbps = 0.0
        if not flows:
            self._rates_valid = True
            return

        # Remaining capacity per resource: ("out", node) and ("in", node).
        remaining: dict[tuple[str, int], float] = {}
        members: dict[tuple[str, int], set[int]] = {}
        for flow in flows:
            for key in (("out", flow.src), ("in", flow.dst)):
                members.setdefault(key, set()).add(flow.flow_id)
        for key in members:
            kind, node = key
            if kind == "out":
                remaining[key] = self.egress_models[node].limit()
            else:
                remaining[key] = self.ingress_caps[node]

        unfixed = {flow.flow_id for flow in flows}
        flow_by_id = {flow.flow_id: flow for flow in flows}
        while unfixed:
            # Fair share each resource could give its unfixed flows.
            best_key = None
            best_share = math.inf
            for key, ids in members.items():
                active = ids & unfixed
                if not active:
                    continue
                share = remaining[key] / len(active)
                if share < best_share:
                    best_share = share
                    best_key = key
            if best_key is None:
                break
            # Freeze the bottleneck's flows at the fair share.
            saturated = list(members[best_key] & unfixed)
            for flow_id in saturated:
                flow = flow_by_id[flow_id]
                flow.rate_gbps = max(best_share, 0.0)
                unfixed.discard(flow_id)
                for key in (("out", flow.src), ("in", flow.dst)):
                    remaining[key] = max(remaining[key] - flow.rate_gbps, 0.0)
        self._rates_valid = True

    def node_egress_rates(self) -> list[float]:
        """Aggregate send rate per node under the current assignment."""
        rates = [0.0] * self.n_nodes
        for flow in self.flows.values():
            rates[flow.src] += flow.rate_gbps
        return rates

    def horizon(self) -> float:
        """Seconds the current rate assignment is guaranteed valid."""
        if not self._rates_valid:
            self.compute_rates()
        bound = math.inf
        for flow in self.flows.values():
            bound = min(bound, flow.completion_time())
        egress = self.node_egress_rates()
        for node, model in enumerate(self.egress_models):
            bound = min(bound, model.horizon(egress[node]))
        return bound

    def advance(self, dt: float) -> list[Flow]:
        """Integrate ``dt`` seconds; returns flows that completed.

        Callers must not advance past :meth:`horizon`.  Shaper models
        advance with their node's aggregate egress rate so token
        buckets drain exactly as much as the flows send.
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if not self._rates_valid:
            self.compute_rates()
        egress = self.node_egress_rates()
        for node, model in enumerate(self.egress_models):
            model.advance(dt, egress[node])
        completed: list[Flow] = []
        for flow in list(self.flows.values()):
            flow.remaining_gbit -= flow.rate_gbps * dt
            if flow.remaining_gbit <= 1e-9:
                completed.append(flow)
                del self.flows[flow.flow_id]
        if completed:
            self._rates_valid = False
        return completed

    def invalidate_rates(self) -> None:
        """Force a rate recomputation before the next horizon/advance."""
        self._rates_valid = False
